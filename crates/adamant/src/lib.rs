//! # ADAMANT
//!
//! A query executor with plug-in interfaces for easy co-processor
//! integration — a from-scratch Rust reproduction of the ICDE 2023 paper
//! (Gurumurthy et al.), with the GPU hardware replaced by calibrated
//! simulated devices (see `DESIGN.md`).
//!
//! ## Architecture (paper §III)
//!
//! * [`device`] — the device layer: the ten pluggable interface functions a
//!   driver implements ([`device::Device`]), bounded memory pools, the
//!   simulated CUDA/OpenCL/OpenMP driver profiles;
//! * [`task`] — the task layer: primitive definitions (Table I), I/O
//!   semantics, kernel/data containers and the `(primitive, SDK)` registry;
//! * [`core`] — the runtime layer: primitive graphs, pipeline splitting,
//!   the data-transfer hub and the execution models (operator-at-a-time,
//!   chunked, pipelined, 4-phase);
//! * [`plan`] — a logical layer lowering relational operations to primitive
//!   graphs;
//! * [`sched`] — the multi-query scheduler: admission control against the
//!   device pools, per-tenant fair queuing, device-time sharing on the
//!   simulated timeline;
//! * [`storage`] — the columnar substrate;
//! * [`tpch`] — TPC-H generator, query plans and references;
//! * [`baseline`] — the HeavyDB-style whole-table-resident comparison.
//!
//! ## Quickstart
//!
//! ```
//! use adamant::prelude::*;
//!
//! // 1. Plug devices (any `Device` impl works; these are the paper's).
//! let mut engine = Adamant::builder()
//!     .chunk_rows(1 << 10)
//!     .device(DeviceProfile::cuda_rtx2080ti())
//!     .build()
//!     .unwrap();
//! let gpu = engine.device_ids()[0];
//!
//! // 2. Express a query (filter + sum) against bound columns.
//! let mut pb = PlanBuilder::new(gpu);
//! let mut t = pb.scan("sales", &["amount"]);
//! t.filter(&mut pb, Predicate::cmp("amount", CmpOp::Gt, 100)).unwrap();
//! let amount = t.materialized(&mut pb, "amount").unwrap();
//! let total = pb.agg_block(amount, AggFunc::Sum, "total");
//! pb.output("total", total);
//! let graph = pb.build().unwrap();
//!
//! let mut inputs = QueryInputs::new();
//! inputs.bind("amount", vec![50, 150, 250]);
//!
//! // 3. Execute under any model.
//! let (out, stats) = engine
//!     .run(&graph, &inputs, ExecutionModel::FourPhasePipelined)
//!     .unwrap();
//! assert_eq!(out.i64_column("total")[0], 400);
//! assert!(stats.total_ns > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use adamant_baseline as baseline;
pub use adamant_core as core;
pub use adamant_device as device;
pub use adamant_plan as plan;
pub use adamant_sched as sched;
pub use adamant_sql as sql;
pub use adamant_storage as storage;
pub use adamant_task as task;
pub use adamant_tpch as tpch;

use adamant_core::checkpoint::CheckpointConfig;
use adamant_core::error::Result;
use adamant_core::executor::{CancelToken, Executor, ExecutorConfig, QueryInputs, RetryPolicy};
use adamant_core::graph::PrimitiveGraph;
use adamant_core::models::ExecutionModel;
use adamant_core::residency::ResidencyConfig;
use adamant_core::result::QueryOutput;
use adamant_core::stats::ExecutionStats;
use adamant_device::device::{Device, DeviceId};
use adamant_device::fault::FaultPlan;
use adamant_device::health::{DeviceHealthRegistry, HealthPolicy};
use adamant_device::profiles::DeviceProfile;
use adamant_device::sdk::SdkKind;
use adamant_sched::{PreemptPolicy, QueryScheduler, QuerySpec, SchedReport};
use adamant_task::registry::TaskRegistry;

pub mod session;
pub use session::{Session, SessionError, SessionRetryPolicy, SqlResultSet, SqlValue};

/// The top-level engine: devices + tasks + executor, ready to run plans.
pub struct Adamant {
    executor: Executor,
    device_ids: Vec<DeviceId>,
    preempt: PreemptPolicy,
}

impl Adamant {
    /// Starts building an engine.
    pub fn builder() -> AdamantBuilder {
        AdamantBuilder::default()
    }

    /// Ids of the plugged devices, in plug order.
    pub fn device_ids(&self) -> &[DeviceId] {
        &self.device_ids
    }

    /// Plugs an additional device after construction.
    pub fn plug_device(&mut self, device: Box<dyn Device>) -> Result<DeviceId> {
        let id = self.executor.add_device(device)?;
        self.device_ids.push(id);
        Ok(id)
    }

    /// Plugs a device from a profile.
    pub fn plug_profile(&mut self, profile: &DeviceProfile) -> Result<DeviceId> {
        let id = self.executor.add_profile(profile)?;
        self.device_ids.push(id);
        Ok(id)
    }

    /// Hot-adds a device between runs. Unlike [`Adamant::plug_device`], the
    /// newcomer enters through the health registry in `HalfOpen` and earns
    /// traffic via the probe ramp (one probe pipeline per query until a
    /// success closes its breaker); placement and the cost model pick it up
    /// on the next run without a rebuild. The add is counted in the next
    /// run's `ExecutionStats::hot_adds`.
    pub fn attach_device(&mut self, device: Box<dyn Device>) -> Result<DeviceId> {
        let id = self.executor.attach_device(device)?;
        self.device_ids.push(id);
        Ok(id)
    }

    /// Hot-adds a device from a profile (see [`Adamant::attach_device`]).
    pub fn attach_profile(&mut self, profile: &DeviceProfile) -> Result<DeviceId> {
        let id = self.executor.attach_profile(profile)?;
        self.device_ids.push(id);
        Ok(id)
    }

    /// Administratively unplugs a healthy device between runs, returning
    /// it: residency pins evicted cleanly, health records dropped, the id
    /// retired (never reused). Mid-query deaths need no call here — the
    /// engine unplugs a dead device on the first `Gone` it observes.
    pub fn detach_device(&mut self, id: DeviceId) -> Option<Box<dyn Device>> {
        let dev = self.executor.detach_device(id);
        if dev.is_some() {
            self.device_ids.retain(|&d| d != id);
        }
        dev
    }

    /// Executes a primitive graph.
    pub fn run(
        &mut self,
        graph: &PrimitiveGraph,
        inputs: &QueryInputs,
        model: ExecutionModel,
    ) -> Result<(QueryOutput, ExecutionStats)> {
        self.executor.run(graph, inputs, model)
    }

    /// Like [`Adamant::run`] under a cancellation token: cancelling from
    /// another thread unwinds the run between chunks (buffers released) and
    /// returns [`adamant_core::ExecError::Cancelled`].
    pub fn run_with_cancel(
        &mut self,
        graph: &PrimitiveGraph,
        inputs: &QueryInputs,
        model: ExecutionModel,
        cancel: &CancelToken,
    ) -> Result<(QueryOutput, ExecutionStats)> {
        self.executor.run_with_cancel(graph, inputs, model, cancel)
    }

    /// Opens a multi-query scheduling session over this engine: register
    /// tenants, [`QueryScheduler::submit`] queries, then
    /// [`QueryScheduler::run_all`] to interleave them on the shared
    /// simulated timeline under admission control and weighted fair
    /// queuing (and, when enabled on the builder, deadline-driven
    /// preemption). The session borrows the engine exclusively; drop it to
    /// run single queries again.
    pub fn session(&mut self) -> QueryScheduler<'_> {
        let preempt = self.preempt;
        let mut session = QueryScheduler::new(&mut self.executor);
        session.preemption(preempt);
        session
    }

    /// The preemption policy sessions start with (see
    /// [`AdamantBuilder::preempt_slack_ns`]).
    pub fn preempt_policy(&self) -> PreemptPolicy {
        self.preempt
    }

    /// Replaces the preemption policy for future sessions.
    pub fn set_preempt_policy(&mut self, policy: PreemptPolicy) {
        self.preempt = policy;
    }

    /// Convenience for one-tenant concurrency: submits `(tenant, spec)`
    /// pairs and drains them in a single session.
    pub fn submit_all(&mut self, queries: Vec<(String, QuerySpec)>) -> SchedReport {
        let mut session = self.session();
        for (tenant, spec) in queries {
            session.submit(&tenant, spec);
        }
        session.run_all()
    }

    /// The cross-query device health registry (breaker states, failure
    /// memory), read-only.
    pub fn health(&self) -> &DeviceHealthRegistry {
        self.executor.health()
    }

    /// Statistics of the most recent run, kept even when the run failed.
    pub fn last_run_stats(&self) -> Option<&ExecutionStats> {
        self.executor.last_run_stats()
    }

    /// Installs a fault plan on one device (by plug order), for chaos
    /// testing the recovery machinery.
    pub fn set_fault_plan(&mut self, index: usize, plan: FaultPlan) -> Result<()> {
        let id = *self.device_ids.get(index).ok_or_else(|| {
            adamant_core::ExecError::Internal(format!("no device at plug index {index}"))
        })?;
        self.executor.set_fault_plan(id, plan)
    }

    /// Replaces the recovery policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.executor.set_retry_policy(retry);
    }

    /// The underlying executor (cost-model tweaks, chunk-size changes).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.executor
    }

    /// The underlying executor, read-only.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }
}

/// Builder for [`Adamant`].
#[derive(Default)]
pub struct AdamantBuilder {
    profiles: Vec<DeviceProfile>,
    devices: Vec<Box<dyn Device>>,
    chunk_rows: Option<usize>,
    retry: Option<RetryPolicy>,
    checkpoints: Option<CheckpointConfig>,
    deadline_ns: Option<f64>,
    watchdog_multiplier: Option<Option<f64>>,
    health: Option<HealthPolicy>,
    fault_plans: Vec<(usize, FaultPlan)>,
    tasks: Option<TaskRegistry>,
    preempt: Option<PreemptPolicy>,
    residency: Option<ResidencyConfig>,
    fusion: Option<bool>,
}

impl AdamantBuilder {
    /// Adds a device from a profile.
    pub fn device(mut self, profile: DeviceProfile) -> Self {
        self.profiles.push(profile);
        self
    }

    /// Adds a custom device implementation.
    pub fn custom_device(mut self, device: Box<dyn Device>) -> Self {
        self.devices.push(device);
        self
    }

    /// Sets the chunk size in rows for the chunked models.
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = Some(rows);
        self
    }

    /// Enables partial-progress checkpoints: consistent snapshots at
    /// pipeline-breaker and chunk-interval boundaries, so heavyweight
    /// recovery (a device death, exhausted retries) resumes from the last
    /// validated boundary instead of restarting from row 0.
    pub fn checkpoints(mut self, config: CheckpointConfig) -> Self {
        self.checkpoints = Some(config);
        self
    }

    /// Sets the recovery policy (OOM chunk backoff, device fallback).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets a per-query deadline on the simulated timeline, in modeled
    /// nanoseconds. Runs exceeding it unwind cleanly and return
    /// [`adamant_core::ExecError::DeadlineExceeded`].
    pub fn deadline_ns(mut self, budget_ns: f64) -> Self {
        self.deadline_ns = Some(budget_ns);
        self
    }

    /// Sets the straggler-watchdog budget multiplier: a streamed chunk whose
    /// modeled duration exceeds this multiple of its fault-free cost-model
    /// expectation trips the watchdog and races a hedged duplicate on the
    /// best alternate device. Defaults to `3.0`; see
    /// [`AdamantBuilder::no_hedging`] to disable.
    pub fn watchdog_multiplier(mut self, multiplier: f64) -> Self {
        self.watchdog_multiplier = Some(Some(multiplier));
        self
    }

    /// Disables the straggler watchdog and hedged chunk execution entirely
    /// (useful for A/B-comparing makespans with and without hedging).
    pub fn no_hedging(mut self) -> Self {
        self.watchdog_multiplier = Some(None);
        self
    }

    /// Enables scheduler-level preemption for `Adamant::session()` with
    /// `slack_ns` of urgency headroom: a deadline query whose slack
    /// (`deadline − now − remaining work`) shrinks to this value suspends
    /// lower-urgency running queries until its own slices drain. `0.0`
    /// preempts only at the last feasible moment; larger values preempt
    /// earlier. Disabled by default (pure weighted-fair interleaving).
    pub fn preempt_slack_ns(mut self, slack_ns: f64) -> Self {
        self.preempt = Some(PreemptPolicy::with_slack_ns(slack_ns));
        self
    }

    /// Full control over the preemption policy (enable flag, urgency slack,
    /// starvation-horizon multiplier).
    pub fn preemption(mut self, policy: PreemptPolicy) -> Self {
        self.preempt = Some(policy);
        self
    }

    /// Sets the device health policy (circuit-breaker thresholds, cool-down
    /// length). Defaults to [`HealthPolicy::default`].
    pub fn health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Installs a fault plan on the device at plug index `index` (profiles
    /// first, then custom devices, in declaration order).
    pub fn fault_plan(mut self, index: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((index, plan));
        self
    }

    /// Supplies a custom task registry (defaults to every built-in kernel
    /// for the CUDA/OpenCL/OpenMP/Host SDKs).
    pub fn tasks(mut self, tasks: TaskRegistry) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Enables or disables the fusion pass (DESIGN.md §16): eligible
    /// producer→consumer primitive chains are merged into single fused
    /// kernels, eliding the intermediate buffers between them. On by
    /// default; results are reference-exact either way. Disable to A/B the
    /// saving, or when fault plans / task-registry overrides target the
    /// individual kernels by name (a fused chain executes as `fused` /
    /// `fused_agg` instead).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = Some(enabled);
        self
    }

    /// Enables the cross-query residency cache: input columns stay pinned
    /// device-side between runs (up to the configured per-device budget),
    /// served without re-transfer on later queries and evicted
    /// LRU-by-modeled-transfer-cost under memory or admission pressure.
    /// Disabled by default.
    pub fn residency_cache(mut self, config: ResidencyConfig) -> Self {
        self.residency = Some(config);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Result<Adamant> {
        let tasks = self.tasks.unwrap_or_else(|| {
            TaskRegistry::with_defaults(&[
                SdkKind::Cuda,
                SdkKind::OpenCl,
                SdkKind::OpenMp,
                SdkKind::Host,
            ])
        });
        let mut config = ExecutorConfig::default();
        if let Some(rows) = self.chunk_rows {
            config.chunk_rows = rows;
        }
        if let Some(retry) = self.retry {
            config.retry = retry;
        }
        if let Some(checkpoints) = self.checkpoints {
            config.checkpoints = checkpoints;
        }
        config.deadline_ns = self.deadline_ns;
        if let Some(watchdog) = self.watchdog_multiplier {
            config.watchdog_multiplier = watchdog.map(|m| m.max(1.0));
        }
        if let Some(fusion) = self.fusion {
            config.fusion = fusion;
        }
        let mut engine = Adamant {
            executor: Executor::new(tasks, config),
            device_ids: Vec::new(),
            preempt: self.preempt.unwrap_or_default(),
        };
        if let Some(policy) = self.health {
            engine.executor.set_health_policy(policy);
        }
        for p in &self.profiles {
            engine.plug_profile(p)?;
        }
        for d in self.devices {
            engine.plug_device(d)?;
        }
        for (index, plan) in self.fault_plans {
            engine.set_fault_plan(index, plan)?;
        }
        if let Some(residency) = self.residency {
            engine.executor.set_residency_cache(residency);
        }
        Ok(engine)
    }
}

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::session::{Session, SessionError, SessionRetryPolicy, SqlResultSet, SqlValue};
    pub use crate::{Adamant, AdamantBuilder};
    pub use adamant_baseline::{BaselineExecutor, BaselineRun};
    pub use adamant_core::checkpoint::{CheckpointConfig, QueryCheckpoint};
    pub use adamant_core::executor::{
        CancelToken, Executor, ExecutorConfig, QueryInputs, RetryPolicy,
    };
    pub use adamant_core::graph::{DataRef, GraphBuilder, NodeParams, PrimitiveGraph};
    pub use adamant_core::models::ExecutionModel;
    pub use adamant_core::residency::{ResidencyCache, ResidencyConfig, ResidencyCounters};
    pub use adamant_core::result::{OutputData, QueryOutput};
    pub use adamant_core::stats::ExecutionStats;
    pub use adamant_core::ExecError;
    pub use adamant_device::buffer::{Buffer, BufferData, BufferId};
    pub use adamant_device::cost::{CostClass, CostModel};
    pub use adamant_device::device::{Device, DeviceId, DeviceInfo, DeviceKind};
    pub use adamant_device::fault::{FaultCounters, FaultPlan};
    pub use adamant_device::health::{
        BreakerState, DeviceHealthRegistry, HealthPolicy, HealthSnapshot,
    };
    pub use adamant_device::kernel::{ExecuteSpec, KernelSource, KernelStats};
    pub use adamant_device::profiles::DeviceProfile;
    pub use adamant_device::sdk::{SdkKind, SdkRepr};
    pub use adamant_plan::prelude::{
        Expr, GroupResult, PlacementPolicy, PlanBuilder, Predicate, Stream,
    };
    pub use adamant_sched::{
        PreemptPolicy, QueryOutcome, QueryScheduler, QuerySpec, QueryTicket, SchedReport,
        SchedulerStats, ShedReason, TenantStats,
    };
    pub use adamant_sql::{SqlError, SqlErrorKind};
    pub use adamant_storage::prelude::{Bitmap, Catalog, Column, PositionList, Table};
    pub use adamant_task::params::{AggFunc, BitmapOp, CmpOp, MapOp};
    pub use adamant_task::primitive::PrimitiveKind;
    pub use adamant_task::registry::TaskRegistry;
    pub use adamant_tpch::gen::TpchGenerator;
    pub use adamant_tpch::queries::TpchQuery;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn builder_constructs_engine() {
        let mut engine = Adamant::builder()
            .chunk_rows(512)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .build()
            .unwrap();
        assert_eq!(engine.device_ids().len(), 2);
        assert_eq!(engine.executor().config().chunk_rows, 512);
        let extra = engine
            .plug_profile(&DeviceProfile::openmp_cpu_i7())
            .unwrap();
        assert_eq!(engine.device_ids().len(), 3);
        assert_eq!(extra, engine.device_ids()[2]);
    }

    #[test]
    fn end_to_end_tpch_through_facade() {
        let catalog = TpchGenerator::new(0.001, 5).generate();
        let mut engine = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        let (out, _) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        assert_eq!(
            adamant_tpch::queries::q6::decode(&out),
            adamant_tpch::reference::q6(&catalog).unwrap()
        );
    }
}
