//! The SQL serving layer: text in, typed rows out.
//!
//! A [`Session`] ties the SQL front door (`adamant-sql`) to a catalog and
//! an engine. Each [`Session::sql`] call compiles the text to a primitive
//! graph, binds the pruned input columns from the catalog, estimates the
//! admission footprint, and submits the query through the multi-query
//! scheduler — so SQL queries pass the same admission control, fair
//! queuing and (when enabled) preemption as hand-built submissions — then
//! decodes the outputs into typed [`SqlValue`] rows using the compiled
//! column decoders (dictionary strings, dates, scaled integers).

use crate::Adamant;
use adamant_core::executor::QueryInputs;
use adamant_core::models::ExecutionModel;
use adamant_core::result::QueryOutput;
use adamant_core::stats::ExecutionStats;
use adamant_core::ExecError;
use adamant_sched::{estimate_footprint_bytes, QueryOutcome, QuerySpec, ShedReason};
use adamant_sql::{ColumnDecode, CompiledQuery, SqlError};
use adamant_storage::datatype::format_date;
use adamant_storage::prelude::Catalog;

/// One decoded cell of a SQL result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlValue {
    /// An integer (or scaled-integer) value.
    Int(i64),
    /// A dictionary-decoded string.
    Str(String),
    /// A date, formatted `yyyy-mm-dd`.
    Date(String),
}

impl std::fmt::Display for SqlValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlValue::Int(v) => write!(f, "{v}"),
            SqlValue::Str(s) | SqlValue::Date(s) => f.write_str(s),
        }
    }
}

/// The decoded result of one SQL query, plus its scheduling telemetry.
#[derive(Clone, Debug)]
pub struct SqlResultSet {
    /// Output column names, in select-list order.
    pub columns: Vec<String>,
    /// Decoded rows (LIMIT already applied).
    pub rows: Vec<Vec<SqlValue>>,
    /// Executor statistics for the run.
    pub stats: ExecutionStats,
    /// Admission footprint the scheduler reserved, in bytes.
    pub footprint_bytes: u64,
    /// Modeled ns the query waited for admission.
    pub wait_ns: f64,
    /// Virtual time on the shared timeline when the query finished.
    pub finish_ns: f64,
    /// True when a deadline was set and the finish overran it.
    pub missed_deadline: bool,
}

/// Why a session query produced no rows.
#[derive(Debug)]
pub enum SessionError {
    /// The text failed to parse, bind, rewrite or lower.
    Sql(SqlError),
    /// Admitted but failed during execution.
    Exec(ExecError),
    /// Shed by the scheduler (deadline, cancellation, capacity loss).
    Shed(ShedReason),
    /// Rejected at admission: the footprint exceeds every device.
    Rejected(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Sql(e) => write!(f, "sql error: {e}"),
            SessionError::Exec(e) => write!(f, "execution error: {e}"),
            SessionError::Shed(r) => write!(f, "query shed: {r}"),
            SessionError::Rejected(r) => write!(f, "query rejected: {r}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SqlError> for SessionError {
    fn from(e: SqlError) -> Self {
        SessionError::Sql(e)
    }
}

/// Opt-in bounded re-submission for queries shed by a capacity loss.
///
/// When a device death mid-run sheds a query with
/// [`ShedReason::CapacityLost`], the scheduler has already reconciled
/// membership against the shrunken registry by the time the outcome
/// surfaces — a re-submission is admitted against the survivors' real
/// capacity. Only capacity-loss sheds are retried; a cancelled or
/// deadline-expired query reflects an explicit decision and is never
/// re-submitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionRetryPolicy {
    /// How many times a `CapacityLost` shed is re-submitted (bounded; the
    /// default policy re-submits once).
    pub max_resubmits: usize,
}

impl Default for SessionRetryPolicy {
    fn default() -> Self {
        SessionRetryPolicy { max_resubmits: 1 }
    }
}

/// A SQL serving session over one engine and one catalog.
///
/// Holds per-session defaults — tenant identity and weight, execution
/// model, optional deadline — applied to every query it serves. The
/// session borrows the engine exclusively; queries on the same session
/// run sequentially on the shared simulated timeline.
pub struct Session<'a> {
    engine: &'a mut Adamant,
    catalog: &'a Catalog,
    tenant: String,
    weight: f64,
    model: ExecutionModel,
    deadline_ns: Option<f64>,
    retry: Option<SessionRetryPolicy>,
}

impl<'a> Session<'a> {
    /// Opens a session with default settings: tenant `"default"` at weight
    /// 1.0, chunked execution, no deadline.
    pub fn new(engine: &'a mut Adamant, catalog: &'a Catalog) -> Self {
        Session {
            engine,
            catalog,
            tenant: "default".to_string(),
            weight: 1.0,
            model: ExecutionModel::Chunked,
            deadline_ns: None,
            retry: None,
        }
    }

    /// Sets the tenant this session submits as, and its fair-share weight.
    pub fn tenant(mut self, name: impl Into<String>, weight: f64) -> Self {
        self.tenant = name.into();
        self.weight = weight;
        self
    }

    /// Sets the execution model queries run under.
    pub fn model(mut self, model: ExecutionModel) -> Self {
        self.model = model;
        self
    }

    /// Sets a default deadline (modeled ns from submission) for every
    /// query this session serves.
    pub fn deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Opts into bounded re-submission of capacity-loss sheds (see
    /// [`SessionRetryPolicy`]).
    pub fn retry(mut self, policy: SessionRetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Compiles and serves one SQL query through the scheduler.
    pub fn sql(&mut self, text: &str) -> Result<SqlResultSet, SessionError> {
        let device =
            self.engine.device_ids().first().copied().ok_or_else(|| {
                SessionError::Exec(ExecError::Internal("no devices plugged".into()))
            })?;
        let compiled = adamant_sql::compile(text, self.catalog, device)?;

        // Bounded re-submission loop: only a capacity-loss shed — the
        // scheduler reconciled membership after a device death and gave up
        // on this query — is ever retried, and only when the session opted
        // in. Each resubmission rebuilds the spec and is admitted against
        // the survivors' reconciled capacity.
        let mut resubmits_left = self.retry.map_or(0, |p| p.max_resubmits);
        loop {
            let mut inputs = QueryInputs::new();
            for (table, col) in &compiled.input_columns {
                let t = self.catalog.table(table).map_err(exec_err)?;
                let c = t.column(col).map_err(exec_err)?;
                inputs
                    .bind_column(col.as_str(), c)
                    .map_err(SessionError::Exec)?;
            }

            let chunk_rows = self.engine.executor().config().chunk_rows;
            let footprint = estimate_footprint_bytes(&compiled.graph, &inputs, chunk_rows);
            let mut spec = QuerySpec::new(compiled.graph.clone(), inputs, self.model)
                .with_footprint(footprint);
            if let Some(d) = self.deadline_ns {
                spec = spec.with_deadline_ns(d);
            }

            let mut sched = self.engine.session();
            sched.tenant(&self.tenant, self.weight);
            let ticket = sched.submit(&self.tenant, spec);
            let mut report = sched.run_all();
            return match report.take_outcome(ticket) {
                Some(QueryOutcome::Completed {
                    output,
                    stats,
                    wait_ns,
                    finish_ns,
                    missed_deadline,
                }) => {
                    let (columns, rows) = self.decode(&compiled, &output)?;
                    Ok(SqlResultSet {
                        columns,
                        rows,
                        stats: *stats,
                        footprint_bytes: footprint,
                        wait_ns,
                        finish_ns,
                        missed_deadline,
                    })
                }
                Some(QueryOutcome::Failed { error }) => Err(SessionError::Exec(error)),
                Some(QueryOutcome::Shed { reason }) => {
                    if matches!(reason, ShedReason::CapacityLost) && resubmits_left > 0 {
                        resubmits_left -= 1;
                        continue;
                    }
                    Err(SessionError::Shed(reason))
                }
                Some(QueryOutcome::Rejected { reason }) => Err(SessionError::Rejected(reason)),
                None => Err(SessionError::Exec(ExecError::Internal(
                    "scheduler returned no outcome for the submitted ticket".into(),
                ))),
            };
        }
    }

    /// Decodes executor outputs into typed rows per the compiled decoders.
    fn decode(
        &self,
        compiled: &CompiledQuery,
        output: &QueryOutput,
    ) -> Result<(Vec<String>, Vec<Vec<SqlValue>>), SessionError> {
        let columns: Vec<String> = compiled.outputs.iter().map(|o| o.name.clone()).collect();
        let mut cols: Vec<&[i64]> = Vec::with_capacity(compiled.outputs.len());
        for o in &compiled.outputs {
            let data = output
                .get(&o.name)
                .and_then(|d| d.as_i64())
                .ok_or_else(|| {
                    SessionError::Exec(ExecError::Internal(format!(
                        "output `{}` missing or not integer data",
                        o.name
                    )))
                })?;
            cols.push(data);
        }

        let n_rows = if compiled.scalar {
            // Each output is an accumulator buffer `[state, rows]`.
            1
        } else {
            let n = cols.iter().map(|c| c.len()).min().unwrap_or(0);
            compiled.limit.map_or(n, |l| n.min(l))
        };

        let mut rows = Vec::with_capacity(n_rows);
        for r in 0..n_rows {
            let mut row = Vec::with_capacity(cols.len());
            for (c, o) in cols.iter().zip(&compiled.outputs) {
                let raw = c[if compiled.scalar { 0 } else { r }];
                row.push(self.decode_value(raw, &o.decode)?);
            }
            rows.push(row);
        }
        Ok((columns, rows))
    }

    fn decode_value(&self, raw: i64, decode: &ColumnDecode) -> Result<SqlValue, SessionError> {
        match decode {
            ColumnDecode::Int => Ok(SqlValue::Int(raw)),
            ColumnDecode::Date => Ok(SqlValue::Date(format_date(raw as i32))),
            ColumnDecode::Dict { table, column } => {
                let t = self.catalog.table(table).map_err(exec_err)?;
                let c = t.column(column).map_err(exec_err)?;
                let dict = c.dictionary().ok_or_else(|| {
                    SessionError::Exec(ExecError::Internal(format!(
                        "column `{table}.{column}` lost its dictionary"
                    )))
                })?;
                let s = dict.get(raw as usize).ok_or_else(|| {
                    SessionError::Exec(ExecError::Internal(format!(
                        "code {raw} out of range for dictionary `{table}.{column}`"
                    )))
                })?;
                Ok(SqlValue::Str(s.clone()))
            }
        }
    }
}

fn exec_err(e: adamant_storage::error::StorageError) -> SessionError {
    SessionError::Exec(ExecError::from(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::profiles::DeviceProfile;
    use adamant_storage::column::Column;
    use adamant_storage::table::Table;

    fn setup() -> (Adamant, Catalog) {
        let engine = Adamant::builder()
            .chunk_rows(256)
            .device(DeviceProfile::cuda_rtx2080ti())
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(
            Table::new(
                "sales",
                vec![
                    Column::from_i64("amount", vec![50, 150, 250, 350]),
                    Column::from_strings("region", &["east", "west", "east", "west"]),
                    Column::from_dates(
                        "day",
                        vec![
                            ("1995-01-01", 1995, 1, 1),
                            ("1995-01-02", 1995, 1, 2),
                            ("1995-01-01", 1995, 1, 1),
                            ("1995-01-03", 1995, 1, 3),
                        ]
                        .into_iter()
                        .map(|(_, y, m, d)| adamant_storage::datatype::date_to_days(y, m, d))
                        .collect(),
                    ),
                ],
            )
            .unwrap(),
        );
        (engine, catalog)
    }

    #[test]
    fn scalar_query_returns_one_typed_row() {
        let (mut engine, catalog) = setup();
        let mut session = Session::new(&mut engine, &catalog).tenant("analytics", 2.0);
        let rs = session
            .sql("SELECT SUM(amount) AS total, COUNT(*) AS n FROM sales WHERE amount > 100")
            .unwrap();
        assert_eq!(rs.columns, vec!["total", "n"]);
        assert_eq!(rs.rows, vec![vec![SqlValue::Int(750), SqlValue::Int(3)]]);
        assert!(rs.footprint_bytes > 0);
        assert!(rs.stats.total_ns > 0.0);
    }

    #[test]
    fn grouped_query_decodes_dict_and_date() {
        let (mut engine, catalog) = setup();
        let mut session = Session::new(&mut engine, &catalog);
        let rs = session
            .sql(
                "SELECT region, day, SUM(amount) AS total FROM sales \
                 GROUP BY region, day ORDER BY total DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["region", "day", "total"]);
        assert_eq!(
            rs.rows,
            vec![
                vec![
                    SqlValue::Str("west".into()),
                    SqlValue::Date("1995-01-03".into()),
                    SqlValue::Int(350),
                ],
                vec![
                    SqlValue::Str("east".into()),
                    SqlValue::Date("1995-01-01".into()),
                    SqlValue::Int(300),
                ],
            ]
        );
    }

    #[test]
    fn sql_errors_surface_typed() {
        let (mut engine, catalog) = setup();
        let mut session = Session::new(&mut engine, &catalog);
        let err = session.sql("SELECT nope FROM sales").unwrap_err();
        match err {
            SessionError::Sql(e) => {
                assert_eq!(e.kind, adamant_sql::SqlErrorKind::Bind)
            }
            other => panic!("expected sql error, got {other}"),
        }
    }

    #[test]
    fn deadline_defaults_apply_per_session() {
        let (mut engine, catalog) = setup();
        // An impossibly tight deadline sheds the query at admission.
        let mut session = Session::new(&mut engine, &catalog).deadline_ns(1e-9);
        let err = session
            .sql("SELECT SUM(amount) AS total FROM sales")
            .unwrap_err();
        match err {
            SessionError::Shed(_) => {}
            other => panic!("expected shed, got {other}"),
        }
    }
}
