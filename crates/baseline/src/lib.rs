//! # adamant-baseline
//!
//! A HeavyDB-style baseline executor (the paper's Fig. 11 comparison).
//!
//! HeavyDB (formerly MapD/OmniSci) keeps *whole tables* resident in GPU
//! memory and executes operator-at-a-time over them. The paper compares
//! ADAMANT against it in two modes:
//!
//! * **cold start** ("HeavyDB w transfer") — the referenced tables are
//!   transferred to the device in full before execution;
//! * **in-place** ("HeavyDB w/o transfer") — tables already resident, pure
//!   execution.
//!
//! Two behaviours matter for the reproduction and are modeled exactly:
//!
//! 1. HeavyDB moves the *complete table* (every column), while ADAMANT
//!    streams only the columns a query needs — this drives the cold-start
//!    gap ("associated with the delay for transferring a complete table to
//!    the device memory, whereas we only transfer chunks of the column
//!    necessary");
//! 2. whole-table residency plus intermediate state must fit in device
//!    memory — at large scale factors Q3's hash table no longer fits and
//!    the query *fails* ("Q3 cannot be executed for the given scale
//!    factors, as the hash table size exceeds the maximum capacity"),
//!    which surfaces here as a real
//!    [`OutOfMemory`](adamant_device::error::DeviceError::OutOfMemory) error.
//!
//! This baseline is not HeavyDB's code-generating engine; it reproduces the
//! *execution strategy* the comparison is about (substitution documented in
//! DESIGN.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use adamant_core::error::{ExecError, Result};
use adamant_core::executor::{Executor, ExecutorConfig};
use adamant_core::models::ExecutionModel;
use adamant_core::result::QueryOutput;
use adamant_core::stats::ExecutionStats;
use adamant_device::profiles::DeviceProfile;
use adamant_device::sdk::SdkKind;
use adamant_storage::prelude::Catalog;
use adamant_task::registry::TaskRegistry;
use adamant_tpch::queries::TpchQuery;

/// Slowdown of the baseline's general-purpose (JIT-compiled) kernels
/// relative to ADAMANT's hardware-conscious primitives.
///
/// Calibrated to the paper's Fig. 11 observation that HeavyDB's in-place
/// execution is "comparable with our chunked execution" even though
/// chunked pays per-chunk PCIe transfers and in-place pays none — i.e. the
/// baseline's pure compute is substantially slower than ADAMANT's kernels.
pub const BASELINE_COMPUTE_FACTOR: f64 = 12.0;

/// Result of one baseline run.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// Modeled cold-start time (full table transfer + execution).
    pub cold_ns: f64,
    /// Modeled in-place time (execution only, tables already resident).
    pub hot_ns: f64,
    /// Bytes of the whole referenced tables (what cold start transfers).
    pub table_bytes: u64,
    /// Execution statistics of the compute phase.
    pub stats: ExecutionStats,
    /// Query output (exact).
    pub output: QueryOutput,
}

/// The whole-table-resident baseline executor.
#[derive(Clone, Debug)]
pub struct BaselineExecutor {
    profile: DeviceProfile,
}

impl BaselineExecutor {
    /// Creates a baseline over a (GPU) device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        BaselineExecutor { profile }
    }

    /// The unique tables a query references.
    pub fn tables_for(query: TpchQuery) -> Vec<&'static str> {
        let mut tables: Vec<&'static str> = query.input_columns().iter().map(|(t, _)| *t).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// Bytes of the referenced tables, *all* columns (whole-table
    /// residency).
    pub fn resident_bytes(&self, catalog: &Catalog, query: TpchQuery) -> Result<u64> {
        let mut total = 0u64;
        for t in Self::tables_for(query) {
            total += catalog.table(t).map_err(ExecError::from)?.byte_len() as u64;
        }
        Ok(total)
    }

    /// Runs a query in the baseline strategy.
    ///
    /// Fails with [`adamant_device::error::DeviceError::OutOfMemory`]
    /// (wrapped in [`ExecError::Device`]) when the resident tables plus the
    /// query's working set exceed device memory — the Q3 behaviour.
    pub fn run(&self, catalog: &Catalog, query: TpchQuery) -> Result<BaselineRun> {
        let table_bytes = self.resident_bytes(catalog, query)?;
        let capacity = self.profile.memory_capacity;
        if table_bytes > capacity {
            return Err(ExecError::Device(
                adamant_device::error::DeviceError::OutOfMemory {
                    requested: table_bytes,
                    available: capacity,
                    capacity,
                },
            ));
        }
        // The working set executes in whatever memory the resident tables
        // leave free.
        let exec_profile = self
            .profile
            .clone()
            .with_memory(capacity - table_bytes, self.profile.pinned_capacity);
        let tasks = TaskRegistry::with_defaults(&[
            SdkKind::Cuda,
            SdkKind::OpenCl,
            SdkKind::OpenMp,
            SdkKind::Host,
        ]);
        // The baseline models the naive whole-table-resident strategy; it
        // must not inherit the runtime's fusion pass, or the comparison
        // would credit the baseline with ADAMANT's optimization.
        let mut exec = Executor::new(
            tasks,
            ExecutorConfig {
                fusion: false,
                ..ExecutorConfig::default()
            },
        );
        let dev = exec.add_profile(&exec_profile)?;
        let graph = query.plan(dev, catalog)?;
        let inputs = query.bind(catalog)?;
        let (output, stats) = exec.run(&graph, &inputs, ExecutionModel::OperatorAtATime)?;

        // Hot: pure execution — the engine's column placements stand in
        // for reads of the already-resident tables, so subtract the bus
        // time; scale by the baseline's kernel slowdown. (Query JIT time is
        // excluded, as in the paper's warm measurements.)
        let hot_ns =
            (stats.total_ns - stats.transfer_ns).max(stats.compute_ns) * BASELINE_COMPUTE_FACTOR;
        // Cold: full referenced tables over the bus (pageable), then hot.
        let cold_ns = self.profile.cost.h2d_ns(table_bytes, false) + hot_ns;
        Ok(BaselineRun {
            cold_ns,
            hot_ns,
            table_bytes,
            stats,
            output,
        })
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }
}

/// Convenience re-exports.
pub mod prelude {
    pub use crate::{BaselineExecutor, BaselineRun};
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_tpch::gen::TpchGenerator;
    use adamant_tpch::queries::q6;
    use adamant_tpch::reference;

    fn catalog() -> Catalog {
        TpchGenerator::new(0.002, 99).generate()
    }

    #[test]
    fn q6_baseline_correct_and_cold_slower() {
        let cat = catalog();
        let b = BaselineExecutor::new(DeviceProfile::cuda_rtx2080ti());
        let run = b.run(&cat, TpchQuery::Q6).unwrap();
        assert_eq!(q6::decode(&run.output), reference::q6(&cat).unwrap());
        assert!(run.cold_ns > run.hot_ns);
        assert!(run.table_bytes > 0);
    }

    #[test]
    fn q4_baseline_runs() {
        let cat = catalog();
        let b = BaselineExecutor::new(DeviceProfile::cuda_rtx2080ti());
        let run = b.run(&cat, TpchQuery::Q4).unwrap();
        let rows = adamant_tpch::queries::q4::decode(&cat, &run.output).unwrap();
        assert_eq!(rows, reference::q4(&cat).unwrap());
    }

    #[test]
    fn whole_tables_cost_more_than_needed_columns() {
        // The cold-start premise: HeavyDB moves whole tables, ADAMANT only
        // the query's columns.
        let cat = catalog();
        let b = BaselineExecutor::new(DeviceProfile::cuda_rtx2080ti());
        let whole = b.resident_bytes(&cat, TpchQuery::Q6).unwrap();
        let needed = TpchQuery::Q6.input_bytes(&cat).unwrap();
        assert!(whole > 2 * needed, "whole {whole} vs needed {needed}");
    }

    #[test]
    fn q3_ooms_on_small_device() {
        let cat = catalog();
        // Device too small for even the resident tables.
        let tiny = DeviceProfile::cuda_rtx2080ti().with_memory(100_000, 50_000);
        let b = BaselineExecutor::new(tiny);
        let err = b.run(&cat, TpchQuery::Q3).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Device(adamant_device::error::DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn q3_ooms_from_working_set() {
        let cat = catalog();
        // Tables fit, but the hash tables / intermediates do not.
        let table_bytes = BaselineExecutor::new(DeviceProfile::cuda_rtx2080ti())
            .resident_bytes(&cat, TpchQuery::Q3)
            .unwrap();
        let profile = DeviceProfile::cuda_rtx2080ti().with_memory(table_bytes + 4096, 1 << 20);
        let b = BaselineExecutor::new(profile);
        let err = b.run(&cat, TpchQuery::Q3).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Device(adamant_device::error::DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn tables_for_queries() {
        assert_eq!(
            BaselineExecutor::tables_for(TpchQuery::Q6),
            vec!["lineitem"]
        );
        assert_eq!(
            BaselineExecutor::tables_for(TpchQuery::Q3),
            vec!["customer", "lineitem", "orders"]
        );
        assert_eq!(
            BaselineExecutor::tables_for(TpchQuery::Q4),
            vec!["lineitem", "orders"]
        );
    }
}
