//! A small FNV-1a hasher.
//!
//! The kernel hot paths (hash build/probe/aggregate) need a fast,
//! deterministic integer hash; the std `SipHash` default is unnecessarily
//! slow there, and the usual `rustc-hash` crate is not on the allowed
//! dependency list, so we ship a ~40-line FNV-1a implementation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` with the FNV hasher.
pub type FnvHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;
/// `HashSet` with the FNV hasher.
pub type FnvHashSet<K> = HashSet<K, BuildHasherDefault<FnvHasher>>;

/// Hashes a single `i64` key directly (used by the open-addressing tables in
/// the device kernels, which never go through `Hasher`).
#[inline]
pub fn fnv1a_i64(v: i64) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in &v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a_i64(42), fnv1a_i64(42));
        assert_ne!(fnv1a_i64(42), fnv1a_i64(43));
    }

    #[test]
    fn map_works() {
        let mut m: FnvHashMap<i64, i64> = FnvHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn set_works() {
        let mut s: FnvHashSet<i64> = FnvHashSet::default();
        s.insert(1);
        s.insert(1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn spreads_small_keys() {
        // Not a rigorous avalanche test, just a sanity check that sequential
        // keys do not collide in the low bits used by power-of-two tables.
        let mut low_bits: FnvHashSet<u64> = FnvHashSet::default();
        for i in 0..256i64 {
            low_bits.insert(fnv1a_i64(i) & 0x3ff);
        }
        assert!(low_bits.len() > 200, "got {} distinct", low_bits.len());
    }
}
