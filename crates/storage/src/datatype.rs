//! Logical data types and scalar values.

use std::fmt;

/// Logical type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (the paper's evaluation uses 32-bit ints).
    Int32,
    /// 64-bit signed integer (keys, fixed-point decimals in cents).
    Int64,
    /// 64-bit float.
    Float64,
    /// Date stored as days since 1970-01-01 in an `i32`.
    Date,
    /// Dictionary-encoded string: `u32` codes into a per-column dictionary.
    DictStr,
}

impl DataType {
    /// Width of one value in bytes (dictionary columns count the code).
    pub fn byte_width(self) -> usize {
        match self {
            DataType::Int32 | DataType::Date | DataType::DictStr => 4,
            DataType::Int64 | DataType::Float64 => 8,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Date => "date",
            DataType::DictStr => "dictstr",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value, used for filter constants and query results.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Date as days since epoch.
    Date(i32),
    /// String value.
    Str(String),
}

impl Value {
    /// Coerces to `i64` for device kernels (dates widen; floats are rejected).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(*v as i64),
            Value::I64(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::F64(_) | Value::Str(_) => None,
        }
    }

    /// Coerces to `f64` where numerically meaningful.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I32(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::Date(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I32(_) => DataType::Int32,
            Value::I64(_) => DataType::Int64,
            Value::F64(_) => DataType::Float64,
            Value::Date(_) => DataType::Date,
            Value::Str(_) => DataType::DictStr,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "{}", format_date(*v)),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Converts a calendar date to days since 1970-01-01.
///
/// Valid for years 1970..=2199 (covers TPC-H's 1992–1998 range).
pub fn date_to_days(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1970..2200).contains(&year));
    debug_assert!((1..=12).contains(&month));
    let mut days: i64 = 0;
    for y in 1970..year {
        days += if is_leap(y) { 366 } else { 365 };
    }
    let month_days = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    for m in 1..month {
        days += month_days[(m - 1) as usize] as i64;
        if m == 2 && is_leap(year) {
            days += 1;
        }
    }
    days += day as i64 - 1;
    days as i32
}

/// Formats days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(mut days: i32) -> String {
    let mut year = 1970;
    loop {
        let ydays = if is_leap(year) { 366 } else { 365 };
        if days < ydays {
            break;
        }
        days -= ydays;
        year += 1;
    }
    let month_days = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut month = 1;
    for (i, &md) in month_days.iter().enumerate() {
        let md = md + if i == 1 && is_leap(year) { 1 } else { 0 };
        if days < md {
            break;
        }
        days -= md;
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", days + 1)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Int32.byte_width(), 4);
        assert_eq!(DataType::Int64.byte_width(), 8);
        assert_eq!(DataType::Float64.byte_width(), 8);
        assert_eq!(DataType::Date.byte_width(), 4);
        assert_eq!(DataType::DictStr.byte_width(), 4);
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::I32(7).as_i64(), Some(7));
        assert_eq!(Value::Date(100).as_i64(), Some(100));
        assert_eq!(Value::F64(1.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
    }

    #[test]
    fn date_epoch() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(date_to_days(1970, 2, 1), 31);
        assert_eq!(date_to_days(1971, 1, 1), 365);
    }

    #[test]
    fn date_known_values() {
        // 1995-03-15 (TPC-H Q3's canonical date) = 9204 days after epoch.
        let d = date_to_days(1995, 3, 15);
        assert_eq!(format_date(d), "1995-03-15");
        // Leap year handling: 1996-02-29 exists.
        let d = date_to_days(1996, 2, 29);
        assert_eq!(format_date(d), "1996-02-29");
        let d = date_to_days(1996, 3, 1);
        assert_eq!(format_date(d), "1996-03-01");
    }

    #[test]
    fn date_roundtrip_range() {
        for days in (0..12000).step_by(97) {
            let s = format_date(days);
            let year: i32 = s[0..4].parse().unwrap();
            let month: u32 = s[5..7].parse().unwrap();
            let day: u32 = s[8..10].parse().unwrap();
            assert_eq!(date_to_days(year, month, day), days, "date {s}");
        }
    }
}
