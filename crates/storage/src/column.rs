//! Typed columns.

use crate::bitmap::Bitmap;
use crate::datatype::{DataType, Value};
use crate::error::StorageError;
use crate::position::PositionList;

/// The physical payload of a column.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers.
    Int32(Vec<i32>),
    /// 64-bit integers (also fixed-point decimals in cents).
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Dates as days since epoch.
    Date(Vec<i32>),
    /// Dictionary-encoded strings.
    DictStr {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The dictionary, indexed by code.
        dict: Vec<String>,
    },
}

impl ColumnData {
    /// Logical type of the payload.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::DictStr { .. } => DataType::DictStr,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::DictStr { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the row data (dictionary strings count codes only).
    pub fn byte_len(&self) -> usize {
        self.len() * self.data_type().byte_width()
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Creates a column from a name and payload.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Convenience constructor for `Int32` columns.
    pub fn from_i32(name: impl Into<String>, values: Vec<i32>) -> Self {
        Column::new(name, ColumnData::Int32(values))
    }

    /// Convenience constructor for `Int64` columns.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::new(name, ColumnData::Int64(values))
    }

    /// Convenience constructor for `Float64` columns.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::new(name, ColumnData::Float64(values))
    }

    /// Convenience constructor for `Date` columns.
    pub fn from_dates(name: impl Into<String>, values: Vec<i32>) -> Self {
        Column::new(name, ColumnData::Date(values))
    }

    /// Builds a dictionary-encoded string column from raw strings.
    pub fn from_strings<S: AsRef<str>>(name: impl Into<String>, values: &[S]) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_ref();
            if let Some(&c) = lookup.get(s) {
                codes.push(c);
            } else {
                let c = dict.len() as u32;
                dict.push(s.to_string());
                lookup.insert(s.to_string(), c);
                codes.push(c);
            }
        }
        Column::new(name, ColumnData::DictStr { codes, dict })
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Mutable payload.
    pub fn data_mut(&mut self) -> &mut ColumnData {
        &mut self.data
    }

    /// Consumes the column, returning its payload.
    pub fn into_data(self) -> ColumnData {
        self.data
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied by row data.
    pub fn byte_len(&self) -> usize {
        self.data.byte_len()
    }

    /// Row `i` as a scalar [`Value`].
    pub fn value(&self, i: usize) -> Result<Value, StorageError> {
        if i >= self.len() {
            return Err(StorageError::OutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(match &self.data {
            ColumnData::Int32(v) => Value::I32(v[i]),
            ColumnData::Int64(v) => Value::I64(v[i]),
            ColumnData::Float64(v) => Value::F64(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::DictStr { codes, dict } => {
                let code = codes[i];
                let s = dict
                    .get(code as usize)
                    .ok_or(StorageError::BadDictCode(code))?;
                Value::Str(s.clone())
            }
        })
    }

    /// The rows of the column widened to `i64` (device kernels run on i64).
    ///
    /// Floats are rejected with a `TypeMismatch`; dictionary columns expose
    /// their codes.
    pub fn to_i64_vec(&self) -> Result<Vec<i64>, StorageError> {
        Ok(match &self.data {
            ColumnData::Int32(v) => v.iter().map(|&x| x as i64).collect(),
            ColumnData::Int64(v) => v.clone(),
            ColumnData::Date(v) => v.iter().map(|&x| x as i64).collect(),
            ColumnData::DictStr { codes, .. } => codes.iter().map(|&c| c as i64).collect(),
            ColumnData::Float64(_) => {
                return Err(StorageError::TypeMismatch {
                    expected: "integer-like",
                    actual: "float64",
                })
            }
        })
    }

    /// The string dictionary, if this is a dictionary column.
    pub fn dictionary(&self) -> Option<&[String]> {
        match &self.data {
            ColumnData::DictStr { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Looks up the dictionary code for `s`, if present.
    pub fn dict_code(&self, s: &str) -> Option<u32> {
        self.dictionary()?
            .iter()
            .position(|d| d == s)
            .map(|p| p as u32)
    }

    /// Extracts the rows selected by `bm` into a new column (early
    /// materialization on the host; the device path is `MATERIALIZE`).
    pub fn filter_by_bitmap(&self, bm: &Bitmap) -> Result<Column, StorageError> {
        if bm.len() != self.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.len(),
                actual: bm.len(),
            });
        }
        self.take(&PositionList::from_bitmap(bm))
    }

    /// Extracts the rows at `positions` into a new column.
    pub fn take(&self, positions: &PositionList) -> Result<Column, StorageError> {
        let check = |p: u32| -> Result<usize, StorageError> {
            let p = p as usize;
            if p >= self.len() {
                Err(StorageError::OutOfBounds {
                    index: p,
                    len: self.len(),
                })
            } else {
                Ok(p)
            }
        };
        let data = match &self.data {
            ColumnData::Int32(v) => ColumnData::Int32(
                positions
                    .as_slice()
                    .iter()
                    .map(|&p| check(p).map(|p| v[p]))
                    .collect::<Result<_, _>>()?,
            ),
            ColumnData::Int64(v) => ColumnData::Int64(
                positions
                    .as_slice()
                    .iter()
                    .map(|&p| check(p).map(|p| v[p]))
                    .collect::<Result<_, _>>()?,
            ),
            ColumnData::Float64(v) => ColumnData::Float64(
                positions
                    .as_slice()
                    .iter()
                    .map(|&p| check(p).map(|p| v[p]))
                    .collect::<Result<_, _>>()?,
            ),
            ColumnData::Date(v) => ColumnData::Date(
                positions
                    .as_slice()
                    .iter()
                    .map(|&p| check(p).map(|p| v[p]))
                    .collect::<Result<_, _>>()?,
            ),
            ColumnData::DictStr { codes, dict } => ColumnData::DictStr {
                codes: positions
                    .as_slice()
                    .iter()
                    .map(|&p| check(p).map(|p| codes[p]))
                    .collect::<Result<_, _>>()?,
                dict: dict.clone(),
            },
        };
        Ok(Column::new(self.name.clone(), data))
    }

    /// A contiguous sub-column of rows `offset..offset+count` (clamped).
    pub fn slice(&self, offset: usize, count: usize) -> Column {
        let end = (offset + count).min(self.len());
        let offset = offset.min(end);
        let data = match &self.data {
            ColumnData::Int32(v) => ColumnData::Int32(v[offset..end].to_vec()),
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[offset..end].to_vec()),
            ColumnData::DictStr { codes, dict } => ColumnData::DictStr {
                codes: codes[offset..end].to_vec(),
                dict: dict.clone(),
            },
        };
        Column::new(self.name.clone(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::from_i32("a", vec![1, 2, 3]);
        assert_eq!(c.name(), "a");
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int32);
        assert_eq!(c.byte_len(), 12);
        assert_eq!(c.value(1).unwrap(), Value::I32(2));
        assert!(c.value(3).is_err());
    }

    #[test]
    fn dict_encoding() {
        let c = Column::from_strings("seg", &["BUILDING", "AUTO", "BUILDING"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dictionary().unwrap().len(), 2);
        assert_eq!(c.dict_code("BUILDING"), Some(0));
        assert_eq!(c.dict_code("AUTO"), Some(1));
        assert_eq!(c.dict_code("MACHINERY"), None);
        assert_eq!(c.value(2).unwrap(), Value::Str("BUILDING".into()));
    }

    #[test]
    fn to_i64_widening() {
        assert_eq!(
            Column::from_i32("a", vec![-1, 2]).to_i64_vec().unwrap(),
            vec![-1, 2]
        );
        assert_eq!(
            Column::from_dates("d", vec![10]).to_i64_vec().unwrap(),
            vec![10]
        );
        assert!(Column::from_f64("f", vec![1.0]).to_i64_vec().is_err());
    }

    #[test]
    fn filter_and_take() {
        let c = Column::from_i64("a", vec![10, 20, 30, 40]);
        let bm = Bitmap::from_bools(&[true, false, true, false]);
        let out = c.filter_by_bitmap(&bm).unwrap();
        assert_eq!(out.data(), &ColumnData::Int64(vec![10, 30]));

        let taken = c.take(&PositionList::from_vec(vec![3, 0, 3])).unwrap();
        assert_eq!(taken.data(), &ColumnData::Int64(vec![40, 10, 40]));

        assert!(c.take(&PositionList::from_vec(vec![9])).is_err());
        let wrong = Bitmap::new_zeroed(3);
        assert!(c.filter_by_bitmap(&wrong).is_err());
    }

    #[test]
    fn slice_clamps() {
        let c = Column::from_i32("a", vec![1, 2, 3, 4, 5]);
        let s = c.slice(3, 10);
        assert_eq!(s.data(), &ColumnData::Int32(vec![4, 5]));
        let empty = c.slice(9, 2);
        assert!(empty.is_empty());
    }
}
