//! Bit-packed selection bitmaps.
//!
//! `FILTER_BITMAP` produces one bit per input row; `MATERIALIZE` consumes the
//! bitmap to extract qualifying values. The paper highlights that bit
//! extraction is comparatively expensive on SIMT devices (Fig. 9b) because
//! multiple lanes share one word — the packed representation here is the same
//! one word / 64 rows layout.

use std::fmt;

/// A bit-packed bitmap over `len` rows, one bit per row.
///
/// Bits are stored little-endian within `u64` words: row `i` lives in word
/// `i / 64`, bit `i % 64`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` rows.
    pub fn new_zeroed(len: usize) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bitmap covering `len` rows.
    pub fn new_ones(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Builds a bitmap from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Bitmap::new_zeroed(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// Reconstructs a bitmap from raw words (e.g. after a device transfer).
    ///
    /// Any bits beyond `len` in the final word are cleared.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        let mut bm = Bitmap { words, len };
        bm.words.resize(len.div_ceil(64), 0);
        bm.mask_tail();
        bm
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Underlying packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words (used by device kernels).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Sets row `i` (marks it selected).
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears row `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of rows selected (`0.0..=1.0`); `0.0` for an empty bitmap.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// In-place conjunction with `other` (same length required).
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place disjunction with `other` (same length required).
    pub fn or_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in OR");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place negation (valid bits only).
    pub fn not_inplace(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterator over the indices of selected rows, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bm: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// A sub-bitmap covering rows `offset..offset + count` (clamped to len).
    ///
    /// Used when slicing filter results chunk-wise.
    pub fn slice(&self, offset: usize, count: usize) -> Bitmap {
        let end = (offset + count).min(self.len);
        let mut out = Bitmap::new_zeroed(end.saturating_sub(offset));
        for i in offset..end {
            if self.get(i) {
                out.set(i - offset);
            }
        }
        out
    }

    /// Appends another bitmap's rows after this one's.
    pub fn extend_from(&mut self, other: &Bitmap) {
        let base = self.len;
        self.len += other.len;
        self.words.resize(self.len.div_ceil(64), 0);
        for i in other.iter_ones() {
            self.set(base + i);
        }
    }

    /// Size of the packed representation in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count_ones())
    }
}

/// Iterator over selected row indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    bm: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.bm.len {
                    return Some(idx);
                } else {
                    return None;
                }
            }
            self.word_idx += 1;
            if self.word_idx >= self.bm.words.len() {
                return None;
            }
            self.current = self.bm.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_ones() {
        let z = Bitmap::new_zeroed(130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 130);
        let o = Bitmap::new_ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new_zeroed(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1) && !bm.get(65));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b, "row {i}");
        }
    }

    #[test]
    fn and_or_not() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        let mut x = a.clone();
        x.and_inplace(&b);
        assert_eq!(x, Bitmap::from_bools(&[true, false, false, false]));
        let mut y = a.clone();
        y.or_inplace(&b);
        assert_eq!(y, Bitmap::from_bools(&[true, true, true, false]));
        let mut z = a.clone();
        z.not_inplace();
        assert_eq!(z, Bitmap::from_bools(&[false, false, true, true]));
    }

    #[test]
    fn not_masks_tail_bits() {
        let mut bm = Bitmap::new_zeroed(5);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 5);
    }

    #[test]
    fn iter_ones_matches_get() {
        let bools: Vec<bool> = (0..300).map(|i| (i * 7) % 11 < 4).collect();
        let bm = Bitmap::from_bools(&bools);
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> = bools
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn slice_and_extend() {
        let bools: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        let s = bm.slice(10, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.count_ones(), 10);

        let mut acc = Bitmap::new_zeroed(0);
        acc.extend_from(&bm.slice(0, 50));
        acc.extend_from(&bm.slice(50, 50));
        assert_eq!(acc, bm);
    }

    #[test]
    fn from_words_clears_extra_bits() {
        let bm = Bitmap::from_words(vec![u64::MAX], 3);
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn selectivity() {
        let bm = Bitmap::from_bools(&[true, false, true, false]);
        assert!((bm.selectivity() - 0.5).abs() < 1e-12);
        assert_eq!(Bitmap::new_zeroed(0).selectivity(), 0.0);
    }
}
