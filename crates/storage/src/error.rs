//! Error type for the storage substrate.

use std::fmt;

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column was requested that does not exist in the table.
    ColumnNotFound {
        /// Table the lookup ran against.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// A table was requested that does not exist in the catalog.
    TableNotFound(String),
    /// The operation required a specific column type.
    TypeMismatch {
        /// What the caller expected.
        expected: &'static str,
        /// What the column actually holds.
        actual: &'static str,
    },
    /// Columns of a table (or inputs of an operation) disagree in length.
    LengthMismatch {
        /// First length observed.
        expected: usize,
        /// Conflicting length observed.
        actual: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Requested index.
        index: usize,
        /// Container length.
        len: usize,
    },
    /// A dictionary code did not resolve to a dictionary entry.
    BadDictCode(u32),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound { table, column } => {
                write!(f, "column `{column}` not found in table `{table}`")
            }
            StorageError::TableNotFound(t) => write!(f, "table `{t}` not found in catalog"),
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StorageError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            StorageError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            StorageError::BadDictCode(c) => write!(f, "dictionary code {c} has no entry"),
        }
    }
}

impl std::error::Error for StorageError {}
