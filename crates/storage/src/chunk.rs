//! Chunk views over tables.
//!
//! The chunked execution models (paper §IV-B) stream fixed-size chunks of the
//! scanned input through a pipeline. [`ChunkView`] describes one such chunk;
//! [`Chunker`] iterates the chunks of a table deterministically.

use crate::table::Table;

/// A half-open row range `[offset, offset + len)` of a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkView {
    /// Index of this chunk (0-based).
    pub index: usize,
    /// First row covered.
    pub offset: usize,
    /// Number of rows covered (the final chunk may be short).
    pub len: usize,
}

impl ChunkView {
    /// One-past-the-end row.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// Iterator over the chunks of `row_count` rows with a given chunk size.
#[derive(Clone, Debug)]
pub struct Chunker {
    row_count: usize,
    chunk_rows: usize,
    next_offset: usize,
    next_index: usize,
}

impl Chunker {
    /// Creates a chunker; `chunk_rows` must be nonzero.
    pub fn new(row_count: usize, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunk size must be nonzero");
        Chunker {
            row_count,
            chunk_rows,
            next_offset: 0,
            next_index: 0,
        }
    }

    /// Chunker over a table's rows.
    pub fn over(table: &Table, chunk_rows: usize) -> Self {
        Chunker::new(table.row_count(), chunk_rows)
    }

    /// Total number of chunks that will be produced.
    pub fn chunk_count(&self) -> usize {
        self.row_count.div_ceil(self.chunk_rows)
    }
}

impl Iterator for Chunker {
    type Item = ChunkView;

    fn next(&mut self) -> Option<ChunkView> {
        if self.next_offset >= self.row_count {
            return None;
        }
        let len = self.chunk_rows.min(self.row_count - self.next_offset);
        let view = ChunkView {
            index: self.next_index,
            offset: self.next_offset,
            len,
        };
        self.next_offset += len;
        self.next_index += 1;
        Some(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn exact_division() {
        let chunks: Vec<_> = Chunker::new(100, 25).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(
            chunks[0],
            ChunkView {
                index: 0,
                offset: 0,
                len: 25
            }
        );
        assert_eq!(
            chunks[3],
            ChunkView {
                index: 3,
                offset: 75,
                len: 25
            }
        );
        assert_eq!(chunks[3].end(), 100);
    }

    #[test]
    fn ragged_tail() {
        let chunks: Vec<_> = Chunker::new(10, 4).collect();
        assert_eq!(
            chunks.iter().map(|c| c.len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(Chunker::new(10, 4).chunk_count(), 3);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Chunker::new(0, 8).count(), 0);
        assert_eq!(Chunker::new(0, 8).chunk_count(), 0);
    }

    #[test]
    fn over_table() {
        let t = Table::new("t", vec![Column::from_i32("x", (0..7).collect())]).unwrap();
        let chunks: Vec<_> = Chunker::over(&t, 3).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len, 1);
    }

    #[test]
    #[should_panic(expected = "chunk size must be nonzero")]
    fn zero_chunk_panics() {
        let _ = Chunker::new(10, 0);
    }
}
