//! Tables and schemas.

use crate::column::Column;
use crate::datatype::DataType;
use crate::error::StorageError;

/// One field of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// Size and type summary of one column, as reported by
/// [`Table::describe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnInfo {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Bytes of row data (dictionary columns count codes only).
    pub bytes: usize,
    /// Number of distinct dictionary entries, for dictionary columns.
    pub dict_size: Option<usize>,
}

/// Schema and size summary of one table, as reported by
/// [`Table::describe`] and `Catalog::describe`. This is what a SQL binder
/// needs to resolve and type column references without touching row data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Total bytes of row data.
    pub bytes: usize,
    /// Per-column name/type/size, in column order.
    pub columns: Vec<ColumnInfo>,
}

/// A named table: a schema plus equal-length columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    row_count: usize,
}

impl Table {
    /// Creates a table from columns; all columns must agree in length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, StorageError> {
        let row_count = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in &columns {
            if c.len() != row_count {
                return Err(StorageError::LengthMismatch {
                    expected: row_count,
                    actual: c.len(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            columns,
            row_count,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The schema derived from the columns.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.data_type()))
                .collect(),
        )
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column, StorageError> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| StorageError::ColumnNotFound {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Total bytes of row data across all columns.
    pub fn byte_len(&self) -> usize {
        self.columns.iter().map(|c| c.byte_len()).sum()
    }

    /// Schema introspection: name, row count and per-column type/size
    /// summary (no row data is copied).
    pub fn describe(&self) -> TableInfo {
        TableInfo {
            name: self.name.clone(),
            rows: self.row_count,
            bytes: self.byte_len(),
            columns: self
                .columns
                .iter()
                .map(|c| ColumnInfo {
                    name: c.name().to_string(),
                    data_type: c.data_type(),
                    bytes: c.byte_len(),
                    dict_size: c.dictionary().map(|d| d.len()),
                })
                .collect(),
        }
    }

    /// Bytes of row data for a subset of columns (a query's input footprint;
    /// the quantity plotted in the paper's Fig. 7-left).
    pub fn footprint_of(&self, column_names: &[&str]) -> Result<usize, StorageError> {
        let mut total = 0;
        for name in column_names {
            total += self.column(name)?.byte_len();
        }
        Ok(total)
    }

    /// Appends a column (must match the row count; first column sets it).
    pub fn push_column(&mut self, column: Column) -> Result<(), StorageError> {
        if self.columns.is_empty() {
            self.row_count = column.len();
        } else if column.len() != self.row_count {
            return Err(StorageError::LengthMismatch {
                expected: self.row_count,
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn sample() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("k", vec![1, 2, 3]),
                Column::from_i32("v", vec![10, 20, 30]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        let bad = Table::new(
            "t",
            vec![
                Column::from_i64("a", vec![1]),
                Column::from_i64("b", vec![1, 2]),
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn lookup_and_schema() {
        let t = sample();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column("v").unwrap().data_type(), DataType::Int32);
        assert!(t.column("zzz").is_err());
        let s = t.schema();
        assert_eq!(s.index_of("k"), Some(0));
        assert_eq!(s.index_of("v"), Some(1));
        assert_eq!(s.index_of("w"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn footprints() {
        let t = sample();
        assert_eq!(t.byte_len(), 3 * 8 + 3 * 4);
        assert_eq!(t.footprint_of(&["v"]).unwrap(), 12);
        assert!(t.footprint_of(&["nope"]).is_err());
    }

    #[test]
    fn describe_reports_schema_and_sizes() {
        let mut t = sample();
        t.push_column(Column::from_strings("s", &["x", "y", "x"]))
            .unwrap();
        let info = t.describe();
        assert_eq!(info.name, "t");
        assert_eq!(info.rows, 3);
        assert_eq!(info.bytes, t.byte_len());
        assert_eq!(info.columns.len(), 3);
        assert_eq!(info.columns[0].name, "k");
        assert_eq!(info.columns[0].data_type, DataType::Int64);
        assert_eq!(info.columns[0].bytes, 24);
        assert_eq!(info.columns[0].dict_size, None);
        assert_eq!(info.columns[2].data_type, DataType::DictStr);
        assert_eq!(info.columns[2].dict_size, Some(2));
    }

    #[test]
    fn push_column() {
        let mut t = sample();
        t.push_column(Column::from_f64("f", vec![0.5, 1.5, 2.5]))
            .unwrap();
        assert_eq!(t.columns().len(), 3);
        assert!(t.push_column(Column::from_i32("bad", vec![1])).is_err());
        match t.column("f").unwrap().data() {
            ColumnData::Float64(v) => assert_eq!(v.len(), 3),
            _ => panic!("wrong type"),
        }
    }
}
