//! # adamant-storage
//!
//! Columnar storage substrate for the ADAMANT query executor.
//!
//! This crate provides the host-side data representation used throughout the
//! system: typed [`Column`]s, [`Table`]s grouped in a [`Catalog`], bit-packed
//! [`Bitmap`]s and [`PositionList`]s (the two intermediate result formats the
//! paper's `FILTER_*` primitives produce), and chunk views used by the chunked
//! execution models.
//!
//! The paper (ADAMANT, ICDE 2023) assumes a columnar engine feeding the
//! executor; this crate is that substrate, built from scratch.
//!
//! ```
//! use adamant_storage::prelude::*;
//!
//! let col = Column::from_i64("qty", vec![5, 12, 30, 7]);
//! let bm = Bitmap::from_bools(&[false, true, true, false]);
//! assert_eq!(bm.count_ones(), 2);
//! assert_eq!(col.len(), 4);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod catalog;
pub mod chunk;
pub mod column;
pub mod datatype;
pub mod error;
pub mod fnv;
pub mod position;
pub mod rng;
pub mod table;

pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use chunk::ChunkView;
pub use column::{Column, ColumnData};
pub use datatype::{DataType, Value};
pub use error::StorageError;
pub use position::PositionList;
pub use rng::Rng;
pub use table::{ColumnInfo, Field, Schema, Table, TableInfo};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::bitmap::Bitmap;
    pub use crate::catalog::Catalog;
    pub use crate::chunk::ChunkView;
    pub use crate::column::{Column, ColumnData};
    pub use crate::datatype::{DataType, Value};
    pub use crate::error::StorageError;
    pub use crate::fnv::{FnvHashMap, FnvHashSet};
    pub use crate::position::PositionList;
    pub use crate::rng::Rng;
    pub use crate::table::{ColumnInfo, Field, Schema, Table, TableInfo};
}
