//! A named collection of tables.

use crate::error::StorageError;
use crate::table::Table;
use std::collections::BTreeMap;

/// The catalog maps table names to tables.
///
/// Iteration order is deterministic (sorted by name) so experiments and
/// examples print stable output.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Removes a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total bytes of row data across all tables.
    pub fn byte_len(&self) -> usize {
        self.tables.values().map(|t| t.byte_len()).sum()
    }

    /// Schema introspection for every table, sorted by table name — the
    /// catalog view a SQL binder (or a `DESCRIBE`-style shell command)
    /// consumes.
    pub fn describe(&self) -> Vec<crate::table::TableInfo> {
        self.tables.values().map(|t| t.describe()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn register_lookup_drop() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(Table::new("b", vec![Column::from_i32("x", vec![1])]).unwrap());
        cat.register(Table::new("a", vec![Column::from_i32("y", vec![1, 2])]).unwrap());
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table_names(), vec!["a", "b"]);
        assert_eq!(cat.table("a").unwrap().row_count(), 2);
        assert!(cat.table("c").is_err());
        assert_eq!(cat.byte_len(), 4 + 8);
        assert!(cat.drop_table("a").is_some());
        assert!(cat.drop_table("a").is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn describe_lists_tables_sorted() {
        let mut cat = Catalog::new();
        cat.register(Table::new("b", vec![Column::from_i32("x", vec![1])]).unwrap());
        cat.register(Table::new("a", vec![Column::from_i64("y", vec![1, 2])]).unwrap());
        let infos = cat.describe();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "a");
        assert_eq!(infos[0].rows, 2);
        assert_eq!(infos[0].columns[0].name, "y");
        assert_eq!(infos[1].name, "b");
        assert_eq!(infos[1].bytes, 4);
    }

    #[test]
    fn register_replaces() {
        let mut cat = Catalog::new();
        cat.register(Table::new("t", vec![Column::from_i32("x", vec![1])]).unwrap());
        cat.register(Table::new("t", vec![Column::from_i32("x", vec![1, 2, 3])]).unwrap());
        assert_eq!(cat.table("t").unwrap().row_count(), 3);
    }
}
