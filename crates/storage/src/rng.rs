//! Deterministic pseudo-random number generation.
//!
//! The test suite, the TPC-H data generator, and the benches all need
//! reproducible randomness, and the engine must not depend on external
//! crates for it (co-processor build environments are frequently
//! network-isolated). This module provides a small, well-understood
//! SplitMix64 generator: a 64-bit state advanced by a Weyl sequence and
//! finalized with a variance-maximizing mixer. It passes BigCrush for the
//! output sizes used here and — critically — produces identical streams on
//! every platform for a given seed.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 pseudo-random number generator.
///
/// Cheap to construct, `Copy`-free by design (drawing mutates the state),
/// and fully deterministic: the same seed always yields the same stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Draws the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniformly distributed value from a range.
    ///
    /// Accepts both half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges
    /// over the integer types the engine uses.
    ///
    /// # Panics
    /// Panics if the range is empty, mirroring the contract of the standard
    /// sampling APIs this replaces.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Draws a boolean that is `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 bits of mantissa — the standard conversion to a unit float.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw in `[0, bound)` without modulo bias (Lemire's method
    /// simplified to the rejection form — negligible rejection rate for the
    /// bounds used in this workspace).
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.bounded(span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.bounded(span + 1) as i64) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                ((self.start as u64) + rng.bounded(span)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as u64) + rng.bounded(span + 1)) as $t
            }
        }
    )*};
}

impl_sample_signed!(i32, i64);
impl_sample_unsigned!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(0u64..10);
            assert!(x < 10);
            let y = rng.gen_range(i32::MIN..=i32::MAX);
            let _ = y; // full-domain draw must not panic
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = Rng::new(3);
        assert_eq!(rng.gen_range(9i64..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::new(0);
        let _ = rng.gen_range(5i64..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::new(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = Rng::new(99);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
