//! Position lists — the second intermediate format of `FILTER_POSITION`.

use crate::bitmap::Bitmap;

/// A list of selected row positions (ascending unless produced by a join).
///
/// `FILTER_POSITION` emits a position list instead of a bitmap when late
/// materialization with random access is preferred; `HASH_PROBE` emits a pair
/// of position lists (left/right join sides).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PositionList {
    positions: Vec<u32>,
}

impl PositionList {
    /// Creates an empty list.
    pub fn new() -> Self {
        PositionList::default()
    }

    /// Creates an empty list with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        PositionList {
            positions: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing vector of positions.
    pub fn from_vec(positions: Vec<u32>) -> Self {
        PositionList { positions }
    }

    /// Converts a bitmap into the equivalent ascending position list.
    pub fn from_bitmap(bm: &Bitmap) -> Self {
        let mut positions = Vec::with_capacity(bm.count_ones());
        positions.extend(bm.iter_ones().map(|i| i as u32));
        PositionList { positions }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no positions are selected.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Appends one position.
    #[inline]
    pub fn push(&mut self, pos: u32) {
        self.positions.push(pos);
    }

    /// The positions as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.positions
    }

    /// Mutable access (device kernels fill lists in place).
    pub fn as_mut_vec(&mut self) -> &mut Vec<u32> {
        &mut self.positions
    }

    /// Consumes the list, returning the raw vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.positions
    }

    /// Converts into a bitmap over `len` rows.
    ///
    /// Panics (debug) if any position is `>= len`.
    pub fn to_bitmap(&self, len: usize) -> Bitmap {
        let mut bm = Bitmap::new_zeroed(len);
        for &p in &self.positions {
            bm.set(p as usize);
        }
        bm
    }

    /// Appends all positions of `other`, shifted by `offset`.
    ///
    /// Used when accumulating per-chunk filter results into a global list.
    pub fn extend_shifted(&mut self, other: &PositionList, offset: u32) {
        self.positions
            .extend(other.positions.iter().map(|p| p + offset));
    }

    /// Size of the representation in bytes.
    pub fn byte_len(&self) -> usize {
        self.positions.len() * 4
    }
}

impl FromIterator<u32> for PositionList {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        PositionList {
            positions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip() {
        let bm = Bitmap::from_bools(&[true, false, false, true, true]);
        let pl = PositionList::from_bitmap(&bm);
        assert_eq!(pl.as_slice(), &[0, 3, 4]);
        assert_eq!(pl.to_bitmap(5), bm);
    }

    #[test]
    fn extend_shifted() {
        let mut acc = PositionList::from_vec(vec![1, 2]);
        let chunk = PositionList::from_vec(vec![0, 3]);
        acc.extend_shifted(&chunk, 10);
        assert_eq!(acc.as_slice(), &[1, 2, 10, 13]);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut pl: PositionList = [5u32, 9].into_iter().collect();
        pl.push(11);
        assert_eq!(pl.len(), 3);
        assert_eq!(pl.byte_len(), 12);
    }
}
