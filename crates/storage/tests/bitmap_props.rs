//! Randomized tests: bit-packed structures against `Vec<bool>` oracles.
//!
//! Driven by the workspace's deterministic [`Rng`] — every case is seeded,
//! so a failure reproduces exactly without a stored regression corpus.

use adamant_storage::bitmap::Bitmap;
use adamant_storage::position::PositionList;
use adamant_storage::rng::Rng;

const CASES: u64 = 128;

fn random_bools(rng: &mut Rng, max_len: usize) -> Vec<bool> {
    let n = rng.gen_range(0usize..=max_len);
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

#[test]
fn bitmap_matches_bool_vec() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xB17_0000 + case);
        let bools = random_bools(&mut rng, 500);
        let bm = Bitmap::from_bools(&bools);
        assert_eq!(bm.len(), bools.len());
        assert_eq!(bm.count_ones(), bools.iter().filter(|&&b| b).count());
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b);
        }
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> = bools
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(ones, expected);
    }
}

#[test]
fn bitmap_boolean_algebra() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA16_0000 + case);
        let a = random_bools(&mut rng, 300);
        let b_seed = random_bools(&mut rng, 300);
        // Same-length operand derived from the seeds.
        let n = a.len();
        let b: Vec<bool> = (0..n)
            .map(|i| b_seed.get(i).copied().unwrap_or(i % 3 == 0))
            .collect();
        let ba = Bitmap::from_bools(&a);
        let bb = Bitmap::from_bools(&b);

        let mut and = ba.clone();
        and.and_inplace(&bb);
        let mut or = ba.clone();
        or.or_inplace(&bb);
        let mut not = ba.clone();
        not.not_inplace();

        for i in 0..n {
            assert_eq!(and.get(i), a[i] && b[i]);
            assert_eq!(or.get(i), a[i] || b[i]);
            assert_eq!(not.get(i), !a[i]);
        }
        // De Morgan: !(a & b) == !a | !b
        let mut lhs = ba.clone();
        lhs.and_inplace(&bb);
        lhs.not_inplace();
        let mut nb = bb.clone();
        nb.not_inplace();
        let mut rhs = not.clone();
        rhs.or_inplace(&nb);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn bitmap_slice_extend_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x511CE + case * 31);
        let bools = random_bools(&mut rng, 400);
        let cut = rng.gen_range(0usize..=400).min(bools.len());
        let bm = Bitmap::from_bools(&bools);
        let mut rebuilt = Bitmap::new_zeroed(0);
        rebuilt.extend_from(&bm.slice(0, cut));
        rebuilt.extend_from(&bm.slice(cut, bools.len() - cut));
        assert_eq!(rebuilt, bm);
    }
}

#[test]
fn positions_bitmap_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9051_7105 + case);
        let bools = random_bools(&mut rng, 400);
        let bm = Bitmap::from_bools(&bools);
        let pl = PositionList::from_bitmap(&bm);
        assert_eq!(pl.len(), bm.count_ones());
        assert_eq!(pl.to_bitmap(bools.len()), bm);
        // Positions strictly ascending.
        assert!(pl.as_slice().windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn words_roundtrip_preserves_set_bits() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x60D5 + case * 7);
        let n_words = rng.gen_range(0usize..8);
        let words: Vec<u64> = (0..n_words).map(|_| rng.next_u64()).collect();
        let extra = rng.gen_range(0usize..63);
        let len = words.len() * 64 - if words.is_empty() { 0 } else { extra };
        let bm = Bitmap::from_words(words.clone(), len);
        // No bit beyond len survives.
        assert!(bm.iter_ones().all(|i| i < len));
        // Bits within len match the source words.
        for i in 0..len {
            assert_eq!(bm.get(i), (words[i / 64] >> (i % 64)) & 1 == 1);
        }
    }
}
