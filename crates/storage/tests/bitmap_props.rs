//! Property tests: bit-packed structures against `Vec<bool>` oracles.

use adamant_storage::bitmap::Bitmap;
use adamant_storage::position::PositionList;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_matches_bool_vec(bools in prop::collection::vec(any::<bool>(), 0..500)) {
        let bm = Bitmap::from_bools(&bools);
        prop_assert_eq!(bm.len(), bools.len());
        prop_assert_eq!(bm.count_ones(), bools.iter().filter(|&&b| b).count());
        for (i, &b) in bools.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> =
            bools.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        prop_assert_eq!(ones, expected);
    }

    #[test]
    fn bitmap_boolean_algebra(
        a in prop::collection::vec(any::<bool>(), 0..300),
        b_seed in prop::collection::vec(any::<bool>(), 0..300),
    ) {
        // Same-length operand derived from the seeds.
        let n = a.len();
        let b: Vec<bool> = (0..n).map(|i| b_seed.get(i).copied().unwrap_or(i % 3 == 0)).collect();
        let ba = Bitmap::from_bools(&a);
        let bb = Bitmap::from_bools(&b);

        let mut and = ba.clone();
        and.and_inplace(&bb);
        let mut or = ba.clone();
        or.or_inplace(&bb);
        let mut not = ba.clone();
        not.not_inplace();

        for i in 0..n {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
            prop_assert_eq!(not.get(i), !a[i]);
        }
        // De Morgan: !(a & b) == !a | !b
        let mut lhs = ba.clone();
        lhs.and_inplace(&bb);
        lhs.not_inplace();
        let mut nb = bb.clone();
        nb.not_inplace();
        let mut rhs = not.clone();
        rhs.or_inplace(&nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bitmap_slice_extend_roundtrip(
        bools in prop::collection::vec(any::<bool>(), 0..400),
        cut in 0usize..400,
    ) {
        let bm = Bitmap::from_bools(&bools);
        let cut = cut.min(bools.len());
        let mut rebuilt = Bitmap::new_zeroed(0);
        rebuilt.extend_from(&bm.slice(0, cut));
        rebuilt.extend_from(&bm.slice(cut, bools.len() - cut));
        prop_assert_eq!(rebuilt, bm);
    }

    #[test]
    fn positions_bitmap_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..400)) {
        let bm = Bitmap::from_bools(&bools);
        let pl = PositionList::from_bitmap(&bm);
        prop_assert_eq!(pl.len(), bm.count_ones());
        prop_assert_eq!(pl.to_bitmap(bools.len()), bm);
        // Positions strictly ascending.
        prop_assert!(pl.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn words_roundtrip_preserves_set_bits(
        words in prop::collection::vec(any::<u64>(), 0..8),
        extra in 0usize..63,
    ) {
        let len = words.len() * 64 - if words.is_empty() { 0 } else { extra };
        let bm = Bitmap::from_words(words.clone(), len);
        // No bit beyond len survives.
        prop_assert!(bm.iter_ones().all(|i| i < len));
        // Bits within len match the source words.
        for i in 0..len {
            prop_assert_eq!(bm.get(i), (words[i / 64] >> (i % 64)) & 1 == 1);
        }
    }
}
