//! Adversarial inputs: every malformed, hostile or unsupported query must
//! come back as a typed [`SqlError`] — the front door never panics.

use adamant_device::device::DeviceId;
use adamant_sql::{compile, SqlErrorKind};
use adamant_storage::catalog::Catalog;
use adamant_storage::column::Column;
use adamant_storage::table::Table;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        Table::new(
            "t",
            vec![
                Column::from_i64("k", vec![1, 2, 3]),
                Column::from_i64("v", vec![10, 20, 30]),
                Column::from_strings("s", &["a", "b", "a"]),
                Column::from_f64("f", vec![0.5, 1.5, 2.5]),
            ],
        )
        .unwrap(),
    );
    c.register(
        Table::new(
            "u",
            vec![
                Column::from_i64("uk", vec![1, 3]),
                Column::from_i64("uv", vec![7, 9]),
            ],
        )
        .unwrap(),
    );
    c
}

/// `(input, expected error stage)` table. Each case must produce exactly
/// the typed error — reaching a panic or an `Ok` fails the test.
fn cases() -> Vec<(&'static str, SqlErrorKind)> {
    use SqlErrorKind::*;
    vec![
        // Garbage and truncation.
        ("", Parse),
        ("   \t\n ", Parse),
        ("garbage", Parse),
        ("SELECT", Parse),
        ("SELECT v", Parse),
        ("SELECT v FROM", Parse),
        ("SELECT v FROM t WHERE", Parse),
        ("SELECT v FROM t GROUP", Parse),
        ("SELECT v FROM t ORDER BY", Parse),
        ("SELECT v FROM t LIMIT", Parse),
        ("SELECT v FROM t JOIN", Parse),
        ("SELECT v FROM t JOIN u ON", Parse),
        ("SELECT v, FROM t", Parse),
        ("SELECT FROM t", Parse),
        ("INSERT INTO t VALUES (1)", Parse),
        ("DROP TABLE t; SELECT v FROM t", Parse),
        ("SELECT v FROM t; SELECT v FROM t", Parse),
        // Lexical junk.
        ("SELECT v FROM t WHERE s = 'unterminated", Lex),
        ("SELECT v @ 1 FROM t", Lex),
        ("SELECT v FROM t WHERE k = 99999999999999999999999", Lex),
        ("SELECT 1.5 FROM t", Lex),
        // Bad dates.
        ("SELECT v FROM t WHERE k < DATE '1995-13-01'", Parse),
        ("SELECT v FROM t WHERE k < DATE '1995-02-30'", Parse),
        ("SELECT v FROM t WHERE k < DATE 'not-a-date'", Parse),
        ("SELECT v FROM t WHERE k < DATE", Parse),
        // Unknown identifiers.
        ("SELECT nope FROM t", Bind),
        ("SELECT v FROM nonexistent", Bind),
        ("SELECT u.v FROM t", Bind),
        ("SELECT v FROM t WHERE ghost = 1", Bind),
        (
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY ghost",
            Bind,
        ),
        ("SELECT v FROM t GROUP BY ghost", Bind),
        // Type errors.
        ("SELECT f FROM t", Unsupported),
        ("SELECT s + 1 FROM t", Unsupported),
        ("SELECT v FROM t WHERE s < 'b'", Unsupported),
        ("SELECT v FROM t WHERE k = 'text'", Bind),
        ("SELECT SUM(SUM(v)) AS x FROM t", Unsupported),
        // Unsupported shapes.
        ("SELECT AVG(v) AS a FROM t", Unsupported),
        ("SELECT v FROM t JOIN t ON k = k", Unsupported),
        ("SELECT v FROM t JOIN u ON s = uk", Unsupported),
        ("SELECT v FROM t ORDER BY v", Unsupported),
        ("SELECT 1 + 2 AS c FROM t", Unsupported),
        (
            "SELECT v FROM t WHERE EXISTS (SELECT uk FROM u WHERE uk = k) \
             AND EXISTS (SELECT uk FROM u WHERE uk = v)",
            Unsupported,
        ),
    ]
}

#[test]
fn every_adversarial_input_errors_typed() {
    let cat = catalog();
    for (sql, want) in cases() {
        match compile(sql, &cat, DeviceId(0)) {
            Err(e) => assert_eq!(
                e.kind, want,
                "input {sql:?}: expected {want:?}, got {:?} ({})",
                e.kind, e.message
            ),
            Ok(_) => panic!("input {sql:?}: expected {want:?}, compiled fine"),
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_blow_the_stack() {
    let cat = catalog();
    // 4000 nested parens: must error (depth limit or parse error), not
    // overflow the stack.
    let mut sql = String::from("SELECT ");
    for _ in 0..4000 {
        sql.push('(');
    }
    sql.push('v');
    for _ in 0..4000 {
        sql.push(')');
    }
    sql.push_str(" FROM t");
    assert!(compile(&sql, &cat, DeviceId(0)).is_err());

    // Long AND chains and IN lists must not recurse unboundedly either.
    let mut sql = String::from("SELECT v FROM t WHERE k = 0");
    for i in 0..20_000 {
        sql.push_str(&format!(" AND k = {i}"));
    }
    let _ = compile(&sql, &cat, DeviceId(0));
}

#[test]
fn error_spans_point_into_the_source() {
    let cat = catalog();
    let sql = "SELECT v FROM t WHERE ghost = 1";
    let e = compile(sql, &cat, DeviceId(0)).unwrap_err();
    assert!(e.span.start < sql.len());
    assert!(e.span.start <= e.span.end && e.span.end <= sql.len());
    assert_eq!(&sql[e.span.start..e.span.end], "ghost");
}
