//! Typed SQL errors with byte-offset spans.
//!
//! Every stage of the front door — lexer, parser, binder, rewriter,
//! lowering — reports failures through [`SqlError`]. Adversarial input must
//! surface here as a typed error, never as a panic: the serving layer turns
//! these into client-facing messages with a caret position.

/// A half-open byte range `[start, end)` into the original SQL text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the offending fragment.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `at` (end-of-input errors).
    pub fn at(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Covers both spans.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Which stage rejected the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Tokenization failed (bad character, unterminated string, overflow).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// Names or types do not resolve against the catalog.
    Bind,
    /// Valid SQL, but outside the subset this engine lowers.
    Unsupported,
    /// The logical plan could not be lowered to a primitive graph.
    Lower,
}

impl std::fmt::Display for SqlErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SqlErrorKind::Lex => "lex error",
            SqlErrorKind::Parse => "parse error",
            SqlErrorKind::Bind => "bind error",
            SqlErrorKind::Unsupported => "unsupported",
            SqlErrorKind::Lower => "lowering error",
        })
    }
}

/// A typed SQL front-door error: stage, message, and source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// The stage that rejected the query.
    pub kind: SqlErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Where in the SQL text the problem is.
    pub span: Span,
}

impl SqlError {
    /// Creates an error.
    pub fn new(kind: SqlErrorKind, message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            kind,
            message: message.into(),
            span,
        }
    }

    /// Lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Lex, message, span)
    }

    /// Parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Parse, message, span)
    }

    /// Binder error.
    pub fn bind(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Bind, message, span)
    }

    /// Outside the supported subset.
    pub fn unsupported(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Unsupported, message, span)
    }

    /// Lowering error.
    pub fn lower(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(SqlErrorKind::Lower, message, span)
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at byte {}..{}: {}",
            self.kind, self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SqlError {}

/// Result alias for the front door.
pub type SqlResult<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_stage_and_span() {
        let e = SqlError::parse("expected FROM", Span::new(7, 11));
        let s = e.to_string();
        assert!(s.contains("parse error"), "{s}");
        assert!(s.contains("7..11"), "{s}");
        assert!(s.contains("expected FROM"), "{s}");
    }

    #[test]
    fn span_union() {
        let a = Span::new(3, 5);
        let b = Span::new(9, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }
}
