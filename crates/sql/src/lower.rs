//! Physical lowering: [`BoundQuery`] → [`PrimitiveGraph`].
//!
//! The lowering reuses the same [`PlanBuilder`]/[`Stream`] machinery as the
//! hand-built TPC-H plans, so SQL queries inherit every downstream layer
//! unchanged — placement, chunked scheduling, fault recovery, residency
//! caching and device membership all operate on the produced graph exactly
//! as they do on hand-written ones.
//!
//! Join order is a greedy left fold with a build-side choice per join: the
//! smaller side (by bind-time row count) builds the hash table, the larger
//! side streams through `HASH_PROBE`. This reproduces the paper's TPC-H
//! decompositions (e.g. Q3: customer → orders → lineitem with the first
//! two building). Aggregation keys over several GROUP BY columns are
//! packed into one integer key using the binder's per-column value ranges;
//! group output is always sorted (ORDER BY keys first, then the group key
//! ascending as a tie-break) so results are deterministic across device
//! models and chunk sizes.

use crate::error::{SqlError, SqlResult};
use crate::logical::{BoundQuery, BoundSelect, ColumnDecode, OutputSource};
use adamant_core::error::ExecError;
use adamant_core::graph::{DataRef, PrimitiveGraph};
use adamant_device::device::DeviceId;
use adamant_plan::expr::{Expr, Predicate};
use adamant_plan::stream::{PlanBuilder, Stream};
use adamant_task::hashtable::EMPTY_KEY;
use std::collections::BTreeSet;

/// One declared output column of a compiled query.
#[derive(Clone, Debug)]
pub struct OutputColumn {
    /// Output (and graph output) name.
    pub name: String,
    /// How the delivered values decode.
    pub decode: ColumnDecode,
}

/// A SQL query lowered to an executable primitive graph.
#[derive(Debug)]
pub struct CompiledQuery {
    /// The primitive graph, ready for the executor/scheduler.
    pub graph: PrimitiveGraph,
    /// `(table, column)` scan inputs the graph binds, in binding order.
    pub input_columns: Vec<(String, String)>,
    /// Output columns in select-list order.
    pub outputs: Vec<OutputColumn>,
    /// LIMIT row count, applied host-side after decode.
    pub limit: Option<usize>,
    /// True for whole-input aggregates: each output is an accumulator
    /// buffer `[state, rows]` and the result is a single row.
    pub scalar: bool,
}

/// Lowers a rewritten bound query to a primitive graph on `device`.
///
/// Expects [`crate::rewrite::rewrite`] to have run: all WHERE conjuncts
/// routed to scans and projection pruning applied.
pub fn lower(q: &BoundQuery, device: DeviceId) -> SqlResult<CompiledQuery> {
    if !q.conjuncts.is_empty() {
        return Err(SqlError::lower(
            "query has unrouted predicates; run the rewrite passes first",
            q.span,
        ));
    }
    Lowerer { q, device }.run()
}

struct Lowerer<'a> {
    q: &'a BoundQuery,
    device: DeviceId,
}

impl<'a> Lowerer<'a> {
    fn err(&self, e: ExecError) -> SqlError {
        SqlError::lower(
            format!("cannot lower to a primitive graph: {e}"),
            self.q.span,
        )
    }

    fn run(self) -> SqlResult<CompiledQuery> {
        let q = self.q;
        let mut pb = PlanBuilder::new(self.device);
        let mut input_columns = Vec::new();

        let post = self.post_join_columns();

        // Plan the join chain first: per join, does the new table build
        // (stream keeps probing) or does the accumulated stream build (the
        // new table's scan becomes the stream)? Pure row-count arithmetic,
        // no nodes emitted yet.
        let mut members: BTreeSet<usize> = BTreeSet::new();
        members.insert(0);
        let mut rows_est = q.tables[0].rows;
        // For each join: (new_table_builds, payload column names).
        let mut orient: Vec<(bool, Vec<String>)> = Vec::with_capacity(q.joins.len());
        for (i, _) in q.joins.iter().enumerate() {
            let ni = i + 1;
            let table_rows = q.tables[ni].rows;
            if table_rows <= rows_est {
                orient.push((true, post[ni].iter().cloned().collect()));
            } else {
                let payload: BTreeSet<String> = members
                    .iter()
                    .flat_map(|&t| post[t].iter().cloned())
                    .collect();
                orient.push((false, payload.into_iter().collect()));
            }
            members.insert(ni);
            rows_est = rows_est.max(table_rows);
        }

        // Emit every independent build-side pipeline FIRST — pipelines
        // execute in creation order, so a hash table must be built by an
        // earlier pipeline than the one probing it (the hand-built plans
        // follow the same discipline).
        let mut built: Vec<Option<DataRef>> = vec![None; q.joins.len()];
        for (i, join) in q.joins.iter().enumerate() {
            let (new_builds, payload) = &orient[i];
            if *new_builds {
                let ni = i + 1;
                let mut build = self.scan_table(&mut pb, ni, &mut input_columns)?;
                let payload: Vec<&str> = payload.iter().map(|s| s.as_str()).collect();
                let ht = build
                    .hash_build(
                        &mut pb,
                        &join.table_key,
                        &payload,
                        q.tables[ni].rows / 4 + 8,
                    )
                    .map_err(|e| self.err(e))?;
                built[i] = Some(ht);
            }
        }
        let ht_exists = match &q.exists {
            Some(ex) => {
                let mut inner_cols: BTreeSet<String> = BTreeSet::new();
                inner_cols.insert(ex.inner_key.clone());
                for p in &ex.conjuncts {
                    collect_pred_cols(p, &mut inner_cols);
                }
                let cols: Vec<&str> = inner_cols.iter().map(|s| s.as_str()).collect();
                for c in &cols {
                    input_columns.push((ex.table.clone(), c.to_string()));
                }
                let mut inner = pb.scan(ex.table.clone(), &cols);
                if !ex.conjuncts.is_empty() {
                    inner
                        .filter(&mut pb, Predicate::and(ex.conjuncts.clone()))
                        .map_err(|e| self.err(e))?;
                }
                let ht = inner
                    .hash_build(&mut pb, &ex.inner_key, &[], ex.rows / 4 + 8)
                    .map_err(|e| self.err(e))?;
                Some(ht)
            }
            None => None,
        };

        // Now the probe chain: stream over table 0, folding joins left to
        // right; a stream-builds join closes the current segment with its
        // own hash table and re-opens the stream on the new table's scan.
        let mut stream = self.scan_table(&mut pb, 0, &mut input_columns)?;
        let mut seg_rows = q.tables[0].rows;
        // Index of the table whose scan the stream currently runs over —
        // the select stage needs a raw column of *that* scan as the
        // COUNT(*) driver.
        let mut stream_table = 0;
        for (i, join) in q.joins.iter().enumerate() {
            let ni = i + 1;
            let (new_builds, payload) = &orient[i];
            let payload: Vec<&str> = payload.iter().map(|s| s.as_str()).collect();
            if *new_builds {
                let ht = built[i].expect("build emitted above");
                stream
                    .hash_probe(&mut pb, &join.stream_key, ht, &payload)
                    .map_err(|e| self.err(e))?;
            } else {
                let ht = stream
                    .hash_build(&mut pb, &join.stream_key, &payload, seg_rows / 4 + 8)
                    .map_err(|e| self.err(e))?;
                stream = self.scan_table(&mut pb, ni, &mut input_columns)?;
                stream
                    .hash_probe(&mut pb, &join.table_key, ht, &payload)
                    .map_err(|e| self.err(e))?;
                stream_table = ni;
            }
            seg_rows = seg_rows.max(q.tables[ni].rows);
        }

        // EXISTS semi-join (single-table outer queries only, per binder).
        if let Some(ex) = &q.exists {
            stream
                .semi_join(&mut pb, &ex.outer_key, ht_exists.expect("built above"))
                .map_err(|e| self.err(e))?;
        }

        let (outputs, scalar) = self.lower_select(&mut pb, &mut stream, stream_table, rows_est)?;

        let graph = pb.build().map_err(|e| self.err(e))?;
        Ok(CompiledQuery {
            graph,
            input_columns,
            outputs,
            limit: q.limit,
            scalar,
        })
    }

    /// Opens the scan for table `t` (pruned columns, routed predicates).
    fn scan_table(
        &self,
        pb: &mut PlanBuilder,
        t: usize,
        input_columns: &mut Vec<(String, String)>,
    ) -> SqlResult<Stream> {
        let q = self.q;
        let name = &q.tables[t].name;
        let cols: Vec<&str> = q.scan_cols[t].iter().map(|s| s.as_str()).collect();
        if cols.is_empty() {
            return Err(SqlError::lower(
                format!("scan of `{name}` reads no columns; run projection pruning"),
                q.span,
            ));
        }
        for c in &cols {
            input_columns.push((name.clone(), c.to_string()));
        }
        let mut stream = pb.scan(name.clone(), &cols);
        if !q.scan_preds[t].is_empty() {
            stream
                .filter(pb, Predicate::and(q.scan_preds[t].clone()))
                .map_err(|e| self.err(e))?;
        }
        Ok(stream)
    }

    /// Columns of each table consumed *after* its scan stage: select-layer
    /// expressions, later join stream keys, and the EXISTS correlation key.
    /// These must be carried as join payloads when a table ends up on a
    /// build side.
    fn post_join_columns(&self) -> Vec<BTreeSet<String>> {
        let q = self.q;
        let mut post: Vec<BTreeSet<String>> = vec![BTreeSet::new(); q.tables.len()];
        let add = |post: &mut Vec<BTreeSet<String>>, col: &str| {
            if let Some(&t) = q.col_table.get(col) {
                post[t].insert(col.to_string());
            }
        };
        match &q.select {
            BoundSelect::Plain(items) => {
                for item in items {
                    for c in item.expr.columns() {
                        add(&mut post, c);
                    }
                }
            }
            BoundSelect::Aggregate { group, aggs, .. } => {
                for g in group {
                    add(&mut post, &g.column);
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        for c in e.columns() {
                            add(&mut post, c);
                        }
                    }
                }
            }
        }
        for j in &q.joins {
            add(&mut post, &j.stream_key);
        }
        if let Some(ex) = &q.exists {
            add(&mut post, &ex.outer_key);
        }
        post
    }

    fn lower_select(
        &self,
        pb: &mut PlanBuilder,
        stream: &mut Stream,
        stream_table: usize,
        rows_est: usize,
    ) -> SqlResult<(Vec<OutputColumn>, bool)> {
        let q = self.q;
        match &q.select {
            BoundSelect::Plain(items) => {
                for (i, item) in items.iter().enumerate() {
                    let r = match &item.expr {
                        Expr::Col(c) => stream.materialized(pb, c).map_err(|e| self.err(e))?,
                        expr => {
                            // Project under an internal name so an alias can
                            // never shadow a real scan column.
                            let tmp = format!("__out{i}");
                            stream
                                .project(pb, &tmp, expr.clone())
                                .map_err(|e| self.err(e))?;
                            stream.materialized(pb, &tmp).map_err(|e| self.err(e))?
                        }
                    };
                    pb.output(item.name.clone(), r);
                }
                let outputs = items
                    .iter()
                    .map(|i| OutputColumn {
                        name: i.name.clone(),
                        decode: i.decode.clone(),
                    })
                    .collect();
                Ok((outputs, false))
            }
            BoundSelect::Aggregate {
                group,
                aggs,
                outputs,
            } => {
                // Aggregate inputs: a bare column feeds straight in, a
                // derived expression is projected first. COUNT(*) folds over
                // an arbitrary driver column (the kernel ignores the value).
                let driver = q.scan_cols[stream_table]
                    .iter()
                    .next()
                    .cloned()
                    .ok_or_else(|| SqlError::lower("scan reads no columns", q.span))?;
                let mut agg_inputs = Vec::new();
                for (i, a) in aggs.iter().enumerate() {
                    let input = match &a.arg {
                        None => driver.clone(),
                        Some(Expr::Col(c)) => c.clone(),
                        Some(expr) => {
                            let tmp = format!("__agg{i}");
                            stream
                                .project(pb, &tmp, expr.clone())
                                .map_err(|e| self.err(e))?;
                            tmp
                        }
                    };
                    agg_inputs.push(input);
                }

                if group.is_empty() {
                    // Whole-input aggregation: one AGG_BLOCK per aggregate.
                    // Materialize every input BEFORE emitting any AGG_BLOCK:
                    // AGG_BLOCK is a pipeline breaker, so a materialization
                    // emitted after the first one would re-open the scan as a
                    // fresh streaming pipeline and gather per-chunk values
                    // against the closed pipeline's whole-buffer positions.
                    let mut mats = Vec::with_capacity(aggs.len());
                    for input in &agg_inputs {
                        mats.push(stream.materialized(pb, input).map_err(|e| self.err(e))?);
                    }
                    for (a, r) in aggs.iter().zip(mats) {
                        let acc = pb.agg_block(r, a.func, &a.name);
                        pb.output(a.name.clone(), acc);
                    }
                    let out_cols = outputs
                        .iter()
                        .map(|o| OutputColumn {
                            name: o.name.clone(),
                            decode: ColumnDecode::Int,
                        })
                        .collect();
                    return Ok((out_cols, true));
                }

                // Grouped aggregation: single-column keys group directly,
                // multi-column keys pack into one integer using the
                // binder's value ranges.
                let (key_col, payload): (String, Vec<&str>) = if group.len() == 1 {
                    if group[0].lo == EMPTY_KEY {
                        return Err(SqlError::unsupported(
                            "GROUP BY value range collides with the hash sentinel",
                            q.span,
                        ));
                    }
                    (group[0].column.clone(), Vec::new())
                } else {
                    let mut span_product: i128 = 1;
                    let mut key_expr: Option<Expr> = None;
                    for g in group {
                        let span = (g.hi as i128 - g.lo as i128 + 1).max(1);
                        span_product = span_product.saturating_mul(span);
                        if span_product > i64::MAX as i128 {
                            return Err(SqlError::unsupported(
                                "combined GROUP BY value range is too large to \
                                 pack into one key",
                                q.span,
                            ));
                        }
                        let mut part = Expr::col(g.column.clone());
                        if g.lo != 0 {
                            part = part.sub(Expr::lit(g.lo));
                        }
                        key_expr = Some(match key_expr {
                            None => part,
                            Some(acc) => acc.mul(Expr::lit(span as i64)).add(part),
                        });
                    }
                    let key_expr = key_expr.expect("non-empty group");
                    stream
                        .project(pb, "__gkey", key_expr)
                        .map_err(|e| self.err(e))?;
                    (
                        "__gkey".to_string(),
                        group.iter().map(|g| g.column.as_str()).collect(),
                    )
                };

                let agg_specs: Vec<(adamant_task::params::AggFunc, &str)> = aggs
                    .iter()
                    .zip(&agg_inputs)
                    .map(|(a, input)| (a.func, input.as_str()))
                    .collect();
                let ht = stream
                    .hash_agg(pb, &key_col, &payload, &agg_specs, rows_est / 16 + 8)
                    .map_err(|e| self.err(e))?;
                let groups = pb.group_result(ht, payload.len(), aggs.len());

                let group_ref = |gi: usize| -> DataRef {
                    if payload.is_empty() {
                        groups.keys
                    } else {
                        groups.payloads[gi]
                    }
                };

                // Sort: ORDER BY keys first, then the (unique) group key
                // ascending so ties — and unordered queries — come out
                // deterministic across devices and chunk sizes.
                let mut sort_keys: Vec<(DataRef, bool)> = q
                    .order_by
                    .iter()
                    .map(|o| {
                        let r = match o.source {
                            OutputSource::Group(gi) => group_ref(gi),
                            OutputSource::Agg(ai) => groups.states[ai],
                        };
                        (r, o.desc)
                    })
                    .collect();
                sort_keys.push((groups.keys, false));
                let perm = pb.sort(&sort_keys);

                let mut out_cols = Vec::new();
                for o in outputs {
                    let (r, decode) = match o.source {
                        OutputSource::Group(gi) => (group_ref(gi), group[gi].decode.clone()),
                        OutputSource::Agg(ai) => (groups.states[ai], ColumnDecode::Int),
                    };
                    let taken = pb.take(r, perm);
                    pb.output(o.name.clone(), taken);
                    out_cols.push(OutputColumn {
                        name: o.name.clone(),
                        decode,
                    });
                }
                Ok((out_cols, false))
            }
        }
    }
}

fn collect_pred_cols(p: &Predicate, out: &mut BTreeSet<String>) {
    for leaf in p.leaves() {
        match leaf {
            Predicate::Cmp { col, .. } => {
                out.insert(col.clone());
            }
            Predicate::CmpCols { left, right, .. } => {
                out.insert(left.clone());
                out.insert(right.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use crate::rewrite::rewrite;
    use adamant_core::pipeline::PipelineSet;
    use adamant_storage::catalog::Catalog;
    use adamant_storage::column::Column;
    use adamant_storage::table::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "small",
                vec![
                    Column::from_i64("s_key", vec![1, 2]),
                    Column::from_i64("s_val", vec![5, 6]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "big",
                vec![
                    Column::from_i64("b_key", vec![1, 1, 2, 2, 3]),
                    Column::from_i64("b_val", vec![10, 20, 30, 40, 50]),
                    Column::from_i64("b_flag", vec![0, 1, 0, 1, 0]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "other",
                vec![
                    Column::from_i64("o_key", vec![1, 3]),
                    Column::from_i64("o_w", vec![100, 300]),
                ],
            )
            .unwrap(),
        );
        c
    }

    fn compiled(sql: &str) -> CompiledQuery {
        let cat = catalog();
        let mut q = bind(&parse(sql).unwrap(), &cat).unwrap();
        rewrite(&mut q).unwrap();
        lower(&q, DeviceId(0)).unwrap()
    }

    #[test]
    fn scalar_aggregate_lowers_to_agg_block() {
        let c = compiled("SELECT SUM(b_val) AS total, COUNT(*) AS n FROM big");
        assert!(c.scalar);
        assert_eq!(c.outputs.len(), 2);
        assert!(
            c.graph
                .nodes()
                .iter()
                .filter(|n| n.label.contains("agg_block"))
                .count()
                == 2,
            "one AGG_BLOCK per aggregate"
        );
        PipelineSet::split(&c.graph).unwrap();
    }

    #[test]
    fn grouped_aggregate_sorts_deterministically() {
        let c = compiled(
            "SELECT b_key, SUM(b_val) AS total FROM big GROUP BY b_key ORDER BY total DESC",
        );
        assert!(!c.scalar);
        assert_eq!(
            c.outputs
                .iter()
                .map(|o| o.name.as_str())
                .collect::<Vec<_>>(),
            vec!["b_key", "total"]
        );
        // hash_agg breaker, then an export/sort/take stage.
        assert!(c.graph.nodes().iter().any(|n| n.label.starts_with("sort")));
        assert!(PipelineSet::split(&c.graph).unwrap().len() >= 2);
    }

    #[test]
    fn smaller_side_builds_the_hash_table() {
        // `small` (2 rows) joins `big` (5 rows): small must build.
        let c = compiled("SELECT SUM(b_val) AS total FROM big JOIN small ON s_key = b_key");
        let builds: Vec<_> = c
            .graph
            .nodes()
            .iter()
            .filter(|n| n.label.starts_with("hash_build"))
            .collect();
        assert_eq!(builds.len(), 1);
        assert!(
            builds[0].label.contains("s_key"),
            "small side builds: {}",
            builds[0].label
        );
    }

    #[test]
    fn build_side_flips_when_stream_is_smaller() {
        // FROM small JOIN big: the accumulated stream (small) builds and
        // big's scan becomes the probe stream.
        let c = compiled("SELECT SUM(b_val) AS total FROM small JOIN big ON b_key = s_key");
        let builds: Vec<_> = c
            .graph
            .nodes()
            .iter()
            .filter(|n| n.label.starts_with("hash_build"))
            .collect();
        assert_eq!(builds.len(), 1);
        assert!(builds[0].label.contains("s_key"), "{}", builds[0].label);
    }

    #[test]
    fn multi_column_group_packs_one_key() {
        let c = compiled("SELECT b_key, b_flag, COUNT(*) AS n FROM big GROUP BY b_key, b_flag");
        assert!(c
            .graph
            .nodes()
            .iter()
            .any(|n| n.label.starts_with("hash_agg(__gkey)")));
        assert_eq!(c.outputs.len(), 3);
    }

    #[test]
    fn input_columns_are_pruned() {
        let c = compiled("SELECT SUM(b_val) AS total FROM big WHERE b_flag = 1");
        let mut cols = c.input_columns.clone();
        cols.sort();
        assert_eq!(
            cols,
            vec![
                ("big".to_string(), "b_flag".to_string()),
                ("big".to_string(), "b_val".to_string()),
            ]
        );
    }

    #[test]
    fn unrouted_predicates_are_rejected() {
        let cat = catalog();
        let q = bind(
            &parse("SELECT s_val FROM small WHERE s_key = 1").unwrap(),
            &cat,
        )
        .unwrap();
        let err = lower(&q, DeviceId(0)).unwrap_err();
        assert_eq!(err.kind, crate::error::SqlErrorKind::Lower);
    }
}
