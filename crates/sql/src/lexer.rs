//! A std-only SQL tokenizer.
//!
//! Produces a flat token vector with byte spans; keywords are plain
//! identifiers (matched case-insensitively by the parser) so the lexer
//! stays trivially total: every input either tokenizes or returns a typed
//! [`SqlError`] — it can never panic.

use crate::error::{Span, SqlError, SqlResult};

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal (decimals are rejected: the engine computes in
    /// scaled integers, e.g. cents and percent points).
    Number(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Comma => f.write_str("`,`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`<>`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its byte range in the input.
    pub span: Span,
}

/// Tokenizes `input`, always terminating with [`Tok::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<SpannedTok>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `--` line comment.
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifier / keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &input[start..i];
            out.push(SpannedTok {
                tok: Tok::Ident(text.to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number.
        if b.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                return Err(SqlError::lex(
                    "decimal literals are not supported; use scaled integers \
                     (cents, percent points, days)",
                    Span::new(start, i + 1),
                ));
            }
            let text = &input[start..i];
            let value: i64 = text.parse().map_err(|_| {
                SqlError::lex(
                    format!("integer literal `{text}` overflows i64"),
                    Span::new(start, i),
                )
            })?;
            out.push(SpannedTok {
                tok: Tok::Number(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // String literal.
        if b == b'\'' {
            i += 1;
            let content_start = i;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(SqlError::lex(
                    "unterminated string literal",
                    Span::new(start, bytes.len()),
                ));
            }
            let text = &input[content_start..i];
            i += 1; // closing quote
            out.push(SpannedTok {
                tok: Tok::Str(text.to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Operators and punctuation.
        let (tok, len) = match b {
            b',' => (Tok::Comma, 1),
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b'*' => (Tok::Star, 1),
            b'+' => (Tok::Plus, 1),
            b'-' => (Tok::Minus, 1),
            b'/' => (Tok::Slash, 1),
            b'.' => (Tok::Dot, 1),
            b';' => (Tok::Semi, 1),
            b'=' => (Tok::Eq, 1),
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => (Tok::Le, 2),
                Some(b'>') => (Tok::Ne, 2),
                _ => (Tok::Lt, 1),
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => (Tok::Ge, 2),
                _ => (Tok::Gt, 1),
            },
            b'!' => match bytes.get(i + 1) {
                Some(b'=') => (Tok::Ne, 2),
                _ => {
                    return Err(SqlError::lex(
                        "unexpected character `!` (did you mean `!=`?)",
                        Span::new(i, i + 1),
                    ))
                }
            },
            other => {
                return Err(SqlError::lex(
                    format!("unexpected character `{}`", other as char),
                    Span::new(i, i + 1),
                ))
            }
        };
        out.push(SpannedTok {
            tok,
            span: Span::new(i, i + len),
        });
        i += len;
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::at(bytes.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a, b FROM t WHERE a <= 10;"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Number(10),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_comments_operators() {
        assert_eq!(
            toks("x <> 'MAIL' -- comment\n>= != ."),
            vec![
                Tok::Ident("x".into()),
                Tok::Ne,
                Tok::Str("MAIL".into()),
                Tok::Ge,
                Tok::Ne,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_offsets() {
        let ts = lex("ab 'cd'").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(3, 7));
    }

    #[test]
    fn errors_are_typed() {
        assert!(lex("1.5").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("!x").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(toks(""), vec![Tok::Eof]);
        assert_eq!(toks("   -- only a comment"), vec![Tok::Eof]);
    }
}
