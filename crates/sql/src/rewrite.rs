//! Logical rewrite passes: constant folding, predicate pushdown and
//! projection pruning.
//!
//! A freshly bound [`BoundQuery`] keeps every WHERE conjunct in one
//! unrouted list and scans every column of every table. [`rewrite`] runs
//! the three passes that normalize it into the shape [`crate::lower`]
//! expects: scalar expressions with literal subtrees folded, each conjunct
//! routed to the single scan it covers, and per-scan column sets shrunk to
//! what the plan actually reads (the engine's late-materialization design
//! makes over-scanning pure waste).

use crate::error::{SqlError, SqlResult};
use crate::logical::{BoundQuery, BoundSelect};
use adamant_plan::expr::Expr;

/// Runs all rewrite passes in order.
pub fn rewrite(q: &mut BoundQuery) -> SqlResult<()> {
    fold_constants(q);
    push_down_predicates(q)?;
    prune_projections(q);
    Ok(())
}

/// Folds literal subtrees in every scalar expression, mirroring the
/// engine's wrapping arithmetic and guarded division (`x / 0 = 0`).
pub fn fold_constants(q: &mut BoundQuery) {
    match &mut q.select {
        BoundSelect::Plain(items) => {
            for item in items {
                item.expr = fold_expr(item.expr.clone());
            }
        }
        BoundSelect::Aggregate { aggs, .. } => {
            for agg in aggs {
                if let Some(e) = agg.arg.take() {
                    agg.arg = Some(fold_expr(e));
                }
            }
        }
    }
}

fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Add(l, r) => binary(fold_expr(*l), fold_expr(*r), Expr::Add, i64::wrapping_add),
        Expr::Sub(l, r) => binary(fold_expr(*l), fold_expr(*r), Expr::Sub, i64::wrapping_sub),
        Expr::Mul(l, r) => binary(fold_expr(*l), fold_expr(*r), Expr::Mul, i64::wrapping_mul),
        Expr::Div(l, r) => binary(fold_expr(*l), fold_expr(*r), Expr::Div, |a, b| {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }),
        Expr::Indicator(inner, op, v) => {
            let inner = fold_expr(*inner);
            if let Expr::Lit(a) = inner {
                Expr::lit(op.apply(a, v))
            } else {
                Expr::Indicator(Box::new(inner), op, v)
            }
        }
        leaf @ (Expr::Col(_) | Expr::Lit(_)) => leaf,
    }
}

fn binary(
    l: Expr,
    r: Expr,
    rebuild: fn(Box<Expr>, Box<Expr>) -> Expr,
    fold: fn(i64, i64) -> i64,
) -> Expr {
    if let (Expr::Lit(a), Expr::Lit(b)) = (&l, &r) {
        return Expr::lit(fold(*a, *b));
    }
    rebuild(Box::new(l), Box::new(r))
}

/// Routes every unrouted conjunct to the single scan whose columns it
/// reads. The engine applies filters before joins (filters build the
/// pipeline's selection bitmap), so a conjunct spanning several tables has
/// no home — it gets a typed `Unsupported` error rather than a silently
/// wrong plan.
pub fn push_down_predicates(q: &mut BoundQuery) -> SqlResult<()> {
    let conjuncts = std::mem::take(&mut q.conjuncts);
    for pred in conjuncts {
        let tables = q.pred_tables(&pred);
        match tables.len() {
            1 => {
                let t = *tables.iter().next().expect("len checked");
                q.scan_preds[t].push(pred);
            }
            _ => {
                return Err(SqlError::unsupported(
                    "WHERE conjuncts spanning multiple tables (beyond the join \
                     keys) are not supported",
                    q.span,
                ))
            }
        }
    }
    Ok(())
}

/// Shrinks each scan's column set to what the plan actually reads. A table
/// referenced by nothing downstream (e.g. `SELECT COUNT(*) FROM t`) keeps
/// one arbitrary column so its scan still drives the pipeline.
pub fn prune_projections(q: &mut BoundQuery) {
    let mut needed = q.required_columns();
    for (t, set) in needed.iter_mut().enumerate() {
        if set.is_empty() {
            if let Some((col, _)) = q.col_table.iter().find(|(_, &owner)| owner == t) {
                set.insert(col.clone());
            }
        }
    }
    q.scan_cols = needed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use adamant_storage::catalog::Catalog;
    use adamant_storage::column::Column;
    use adamant_storage::table::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "t",
                vec![
                    Column::from_i64("a", vec![1, 2, 3]),
                    Column::from_i64("b", vec![4, 5, 6]),
                    Column::from_i64("c", vec![7, 8, 9]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "u",
                vec![
                    Column::from_i64("k", vec![1, 2]),
                    Column::from_i64("v", vec![10, 20]),
                ],
            )
            .unwrap(),
        );
        c
    }

    fn bound(sql: &str) -> BoundQuery {
        bind(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn folds_literal_subtrees() {
        let mut q = bound("SELECT a * (2 + 3) AS x FROM t");
        fold_constants(&mut q);
        match &q.select {
            BoundSelect::Plain(items) => {
                assert_eq!(items[0].expr, Expr::col("a").mul(Expr::lit(5)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folds_division_by_zero_to_zero() {
        let mut q = bound("SELECT a + (7 / 0) AS x FROM t");
        fold_constants(&mut q);
        match &q.select {
            BoundSelect::Plain(items) => {
                assert_eq!(items[0].expr, Expr::col("a").add(Expr::lit(0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_routes_per_table() {
        let mut q = bound("SELECT a, v FROM t JOIN u ON k = a WHERE b > 1 AND v < 100");
        push_down_predicates(&mut q).unwrap();
        assert!(q.conjuncts.is_empty());
        assert_eq!(q.scan_preds[0].len(), 1);
        assert_eq!(q.scan_preds[1].len(), 1);
    }

    #[test]
    fn cross_table_conjunct_is_unsupported() {
        let mut q = bound("SELECT a, v FROM t JOIN u ON k = a WHERE b < v");
        let err = push_down_predicates(&mut q).unwrap_err();
        assert_eq!(err.kind, crate::error::SqlErrorKind::Unsupported);
    }

    #[test]
    fn pruning_keeps_only_referenced_columns() {
        let mut q = bound("SELECT a + b AS x FROM t WHERE c > 7");
        rewrite(&mut q).unwrap();
        let cols: Vec<&str> = q.scan_cols[0].iter().map(|s| s.as_str()).collect();
        assert_eq!(cols, vec!["a", "b", "c"]);
    }

    #[test]
    fn count_star_keeps_one_driver_column() {
        let mut q = bound("SELECT COUNT(*) AS n FROM t");
        rewrite(&mut q).unwrap();
        assert_eq!(q.scan_cols[0].len(), 1);
    }
}
