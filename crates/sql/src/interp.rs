//! A scalar host interpreter for [`BoundQuery`] — the reference oracle.
//!
//! Evaluates a bound query directly over catalog columns with the same
//! integer semantics as the device kernels (wrapping arithmetic, guarded
//! division, the aggregate identity/fold pairs), and the same output
//! ordering contract as the lowered graphs: aggregate results sort by the
//! ORDER BY keys with the group-value tuple ascending as a tie-break.
//! Randomized soak tests run every generated query through both this
//! interpreter and the full engine and require byte-exact agreement.

use crate::error::{SqlError, SqlResult};
use crate::logical::{BoundQuery, BoundSelect, OutputSource};
use adamant_plan::expr::{Expr, Predicate};
use adamant_storage::catalog::Catalog;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A small columnar working set: named i64 columns of equal length.
struct Rel {
    cols: BTreeMap<String, Vec<i64>>,
    len: usize,
}

impl Rel {
    fn get(&self, name: &str) -> &[i64] {
        self.cols.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Keeps only the rows at `keep` (in order).
    fn select_rows(&mut self, keep: &[usize]) {
        for col in self.cols.values_mut() {
            *col = keep.iter().map(|&i| col[i]).collect();
        }
        self.len = keep.len();
    }
}

/// Evaluates `q` on the host, returning result rows of raw i64 values in
/// select-list order (one row total for whole-input aggregates).
pub fn execute_host(q: &BoundQuery, catalog: &Catalog) -> SqlResult<Vec<Vec<i64>>> {
    let needed = q.required_columns();

    // Scan + per-table predicates.
    let mut rels = Vec::new();
    for (t, bt) in q.tables.iter().enumerate() {
        let mut rel = load(catalog, &bt.name, needed[t].iter().map(|s| s.as_str()), q)?;
        apply_preds(&mut rel, &q.scan_preds[t]);
        rels.push(rel);
    }

    // Left-folded inner joins, stream row order × build row order.
    let mut rels = rels.into_iter();
    let mut stream = rels
        .next()
        .ok_or_else(|| SqlError::lower("query has no tables", q.span))?;
    for (join, build) in q.joins.iter().zip(rels) {
        let mut index: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for (i, &k) in build.get(&join.table_key).iter().enumerate() {
            index.entry(k).or_default().push(i);
        }
        let stream_keys = stream.get(&join.stream_key).to_vec();
        let mut keep_stream = Vec::new();
        let mut keep_build = Vec::new();
        for (si, k) in stream_keys.iter().enumerate() {
            if let Some(matches) = index.get(k) {
                for &bi in matches {
                    keep_stream.push(si);
                    keep_build.push(bi);
                }
            }
        }
        stream.select_rows(&keep_stream);
        for (name, col) in build.cols {
            let gathered: Vec<i64> = keep_build.iter().map(|&i| col[i]).collect();
            stream.cols.insert(name, gathered);
        }
        stream.len = keep_stream.len();
    }

    // EXISTS semi-join.
    if let Some(ex) = &q.exists {
        let mut cols: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        cols.insert(ex.inner_key.as_str());
        for p in &ex.conjuncts {
            for leaf in p.leaves() {
                match leaf {
                    Predicate::Cmp { col, .. } => {
                        cols.insert(col.as_str());
                    }
                    Predicate::CmpCols { left, right, .. } => {
                        cols.insert(left.as_str());
                        cols.insert(right.as_str());
                    }
                    _ => {}
                }
            }
        }
        let mut inner = load(catalog, &ex.table, cols.into_iter(), q)?;
        apply_preds(&mut inner, &ex.conjuncts);
        let keys: std::collections::BTreeSet<i64> =
            inner.get(&ex.inner_key).iter().copied().collect();
        let keep: Vec<usize> = stream
            .get(&ex.outer_key)
            .iter()
            .enumerate()
            .filter(|(_, k)| keys.contains(k))
            .map(|(i, _)| i)
            .collect();
        stream.select_rows(&keep);
    }

    // Conjuncts not routed to a scan (pre-rewrite queries) apply on the
    // joined rows.
    apply_preds(&mut stream, &q.conjuncts);

    // Select layer.
    match &q.select {
        BoundSelect::Plain(items) => {
            let cols: Vec<Vec<i64>> = items
                .iter()
                .map(|item| eval_expr(&stream, &item.expr))
                .collect();
            let n = q.limit.unwrap_or(usize::MAX).min(stream.len);
            Ok((0..n)
                .map(|i| cols.iter().map(|c| c[i]).collect())
                .collect())
        }
        BoundSelect::Aggregate {
            group,
            aggs,
            outputs,
        } => {
            let arg_cols: Vec<Vec<i64>> = aggs
                .iter()
                .map(|a| match &a.arg {
                    Some(e) => eval_expr(&stream, e),
                    None => vec![0; stream.len],
                })
                .collect();

            if group.is_empty() {
                // Whole-input aggregation: one row, identity on empty input
                // (matching the AGG_BLOCK kernel).
                let mut states: Vec<i64> = aggs.iter().map(|a| a.func.identity()).collect();
                for i in 0..stream.len {
                    for (s, (a, vals)) in states.iter_mut().zip(aggs.iter().zip(&arg_cols)) {
                        *s = a.func.fold(*s, vals[i]);
                    }
                }
                return Ok(vec![states]);
            }

            let group_cols: Vec<&[i64]> = group.iter().map(|g| stream.get(&g.column)).collect();
            let mut table: BTreeMap<Vec<i64>, Vec<i64>> = BTreeMap::new();
            for i in 0..stream.len {
                let key: Vec<i64> = group_cols.iter().map(|c| c[i]).collect();
                let states = table
                    .entry(key)
                    .or_insert_with(|| aggs.iter().map(|a| a.func.identity()).collect());
                for (s, (a, vals)) in states.iter_mut().zip(aggs.iter().zip(&arg_cols)) {
                    *s = a.func.fold(*s, vals[i]);
                }
            }

            // BTreeMap iteration is already group-tuple ascending — the
            // engine's tie-break order. Stable-sort by the ORDER BY keys on
            // top of it.
            let mut rows: Vec<(Vec<i64>, Vec<i64>)> = table.into_iter().collect();
            rows.sort_by(|(ka, sa), (kb, sb)| {
                for o in &q.order_by {
                    let (a, b) = match o.source {
                        OutputSource::Group(gi) => (ka[gi], kb[gi]),
                        OutputSource::Agg(ai) => (sa[ai], sb[ai]),
                    };
                    let ord = if o.desc { b.cmp(&a) } else { a.cmp(&b) };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                ka.cmp(kb)
            });

            let n = q.limit.unwrap_or(usize::MAX).min(rows.len());
            Ok(rows[..n]
                .iter()
                .map(|(key, states)| {
                    outputs
                        .iter()
                        .map(|o| match o.source {
                            OutputSource::Group(gi) => key[gi],
                            OutputSource::Agg(ai) => states[ai],
                        })
                        .collect()
                })
                .collect())
        }
    }
}

fn load<'c>(
    catalog: &Catalog,
    table: &str,
    columns: impl Iterator<Item = &'c str>,
    q: &BoundQuery,
) -> SqlResult<Rel> {
    let t = catalog
        .table(table)
        .map_err(|e| SqlError::bind(format!("unknown table `{table}`: {e}"), q.span))?;
    let mut cols = BTreeMap::new();
    for c in columns {
        let data = t
            .column(c)
            .and_then(|col| col.to_i64_vec())
            .map_err(|e| SqlError::bind(format!("cannot read `{table}.{c}`: {e}"), q.span))?;
        cols.insert(c.to_string(), data);
    }
    Ok(Rel {
        len: t.row_count(),
        cols,
    })
}

fn apply_preds(rel: &mut Rel, preds: &[Predicate]) {
    if preds.is_empty() {
        return;
    }
    let keep: Vec<usize> = (0..rel.len)
        .filter(|&i| preds.iter().all(|p| eval_pred(rel, p, i)))
        .collect();
    rel.select_rows(&keep);
}

fn eval_pred(rel: &Rel, p: &Predicate, i: usize) -> bool {
    match p {
        Predicate::Cmp {
            col,
            cmp,
            value,
            hi,
        } => cmp.eval(rel.get(col)[i], *value, *hi),
        Predicate::CmpCols { left, cmp, right } => cmp.eval(rel.get(left)[i], rel.get(right)[i], 0),
        Predicate::And(ps) => ps.iter().all(|p| eval_pred(rel, p, i)),
        Predicate::Or(ps) => ps.iter().any(|p| eval_pred(rel, p, i)),
    }
}

/// Evaluates `e` element-wise with the kernels' wrapping/guarded integer
/// semantics ([`adamant_task::params::MapOp::apply`]).
fn eval_expr(rel: &Rel, e: &Expr) -> Vec<i64> {
    fn eval_at(rel: &Rel, e: &Expr, i: usize) -> i64 {
        match e {
            Expr::Col(c) => rel.get(c)[i],
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => eval_at(rel, a, i).wrapping_add(eval_at(rel, b, i)),
            Expr::Sub(a, b) => eval_at(rel, a, i).wrapping_sub(eval_at(rel, b, i)),
            Expr::Mul(a, b) => eval_at(rel, a, i).wrapping_mul(eval_at(rel, b, i)),
            Expr::Div(a, b) => {
                let d = eval_at(rel, b, i);
                if d == 0 {
                    0
                } else {
                    eval_at(rel, a, i).wrapping_div(d)
                }
            }
            Expr::Indicator(a, op, c) => op.apply(eval_at(rel, a, i), *c),
        }
    }
    (0..rel.len).map(|i| eval_at(rel, e, i)).collect()
}

/// Convenience wrapper used by tests and the soak oracle: parse, bind and
/// evaluate `sql` on the host (no rewrite passes required — the
/// interpreter accepts the naive form too).
pub fn run_sql_host(sql: &str, catalog: &Catalog) -> SqlResult<Vec<Vec<i64>>> {
    let stmt = crate::parser::parse(sql)?;
    let q = crate::binder::bind(&stmt, catalog)?;
    execute_host(&q, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_storage::column::Column;
    use adamant_storage::table::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "t",
                vec![
                    Column::from_i64("k", vec![1, 2, 1, 3, 2]),
                    Column::from_i64("v", vec![10, 20, 30, 40, 50]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "d",
                vec![
                    Column::from_i64("dk", vec![1, 2]),
                    Column::from_i64("dv", vec![100, 200]),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn plain_projection_with_filter() {
        let rows = run_sql_host("SELECT v * 2 AS x FROM t WHERE k = 1", &catalog()).unwrap();
        assert_eq!(rows, vec![vec![20], vec![60]]);
    }

    #[test]
    fn grouped_aggregate_sorts_by_key() {
        let rows = run_sql_host(
            "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rows, vec![vec![1, 40, 2], vec![2, 70, 2], vec![3, 40, 1]]);
    }

    #[test]
    fn order_by_desc_with_tiebreak() {
        let rows = run_sql_host(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY n DESC LIMIT 2",
            &catalog(),
        )
        .unwrap();
        // k=1 and k=2 both have n=2; tie-break is key ascending.
        assert_eq!(rows, vec![vec![1, 2], vec![2, 2]]);
    }

    #[test]
    fn scalar_aggregate_on_empty_input_is_identity() {
        let rows = run_sql_host(
            "SELECT SUM(v) AS s, COUNT(*) AS n, MIN(v) AS lo FROM t WHERE k > 100",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rows, vec![vec![0, 0, i64::MAX]]);
    }

    #[test]
    fn join_fans_out_and_filters() {
        let rows = run_sql_host(
            "SELECT SUM(dv) AS s FROM t JOIN d ON dk = k WHERE v < 45",
            &catalog(),
        )
        .unwrap();
        // Rows with k in {1,2} and v<45: v=10 (k=1,dv=100), v=20 (k=2,dv=200),
        // v=30 (k=1,dv=100) → 400.
        assert_eq!(rows, vec![vec![400]]);
    }
}
