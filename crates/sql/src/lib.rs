//! SQL front door for the ADAMANT-style executor.
//!
//! A std-only pipeline from SQL text to the executor's primitive graphs:
//!
//! 1. [`lexer`]/[`parser`] — tokenizer and recursive-descent parser for a
//!    SQL subset (projections, arithmetic, aggregates, inner joins, WHERE
//!    with `AND`/`OR`/`BETWEEN`/`IN`/`LIKE`/`EXISTS`, GROUP BY, ORDER BY,
//!    LIMIT) producing a spanned AST. Adversarial input yields a typed
//!    [`SqlError`], never a panic.
//! 2. [`binder`]/[`logical`] — name resolution against the storage
//!    [`Catalog`] into a [`BoundQuery`]
//!    reusing the planner's `Expr`/`Predicate` vocabulary; string literals
//!    become dictionary codes or day numbers, CASE becomes indicator
//!    arithmetic.
//! 3. [`rewrite`] — constant folding, predicate pushdown, projection
//!    pruning.
//! 4. [`lower`] — physical lowering to a
//!    [`PrimitiveGraph`](adamant_core::graph::PrimitiveGraph) via the same
//!    `PlanBuilder`/`Stream` machinery as the hand-built TPC-H plans, so
//!    placement, scheduling, fault recovery and residency caching apply
//!    unchanged.
//! 5. [`interp`] — a scalar host interpreter over the same logical plan,
//!    used as the oracle in randomized soak tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod parser;
pub mod rewrite;

pub use error::{Span, SqlError, SqlErrorKind, SqlResult};
pub use logical::{BoundQuery, ColumnDecode};
pub use lower::{CompiledQuery, OutputColumn};

use adamant_device::device::DeviceId;
use adamant_storage::catalog::Catalog;

/// Parses, binds and rewrites `sql` into its normalized logical form.
pub fn plan(sql: &str, catalog: &Catalog) -> SqlResult<BoundQuery> {
    let stmt = parser::parse(sql)?;
    let mut q = binder::bind(&stmt, catalog)?;
    rewrite::rewrite(&mut q)?;
    Ok(q)
}

/// Full front-door pipeline: SQL text → executable [`CompiledQuery`] on
/// `device`.
pub fn compile(sql: &str, catalog: &Catalog, device: DeviceId) -> SqlResult<CompiledQuery> {
    let q = plan(sql, catalog)?;
    lower::lower(&q, device)
}

/// Common imports for SQL front-door users.
pub mod prelude {
    pub use crate::error::{Span, SqlError, SqlErrorKind, SqlResult};
    pub use crate::interp::{execute_host, run_sql_host};
    pub use crate::logical::{BoundQuery, ColumnDecode};
    pub use crate::lower::{CompiledQuery, OutputColumn};
    pub use crate::{compile, plan};
}
