//! Abstract syntax tree for the supported SQL subset.
//!
//! Every node carries a [`Span`] back into the source text so binder and
//! lowering diagnostics can point at the offending fragment. The tree is
//! deliberately close to the grammar — name resolution, type checks and
//! plan construction all happen later in the binder.

use crate::error::Span;

/// Aggregate functions the engine can compute.
///
/// `AVG` is recognized by the parser but rejected with a typed
/// `Unsupported` error: the engine computes in integers and callers should
/// decompose an average into `SUM(x) / COUNT(x)` explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggName {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(expr)` or `COUNT(*)`
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggName {
    /// SQL spelling, for diagnostics and default output names.
    pub fn as_str(self) -> &'static str {
        match self {
            AggName::Sum => "sum",
            AggName::Count => "count",
            AggName::Min => "min",
            AggName::Max => "max",
        }
    }
}

/// Comparison operators in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpName {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
}

/// A scalar-valued expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScalarExpr {
    /// Column reference, optionally qualified: `l_quantity` or `lineitem.l_quantity`.
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// Integer literal (dates written as `DATE 'yyyy-mm-dd'` are folded to
    /// days-since-epoch here at parse time).
    Int {
        /// The value.
        value: i64,
        /// Source span.
        span: Span,
    },
    /// String literal — only meaningful compared against dictionary or date
    /// columns; the binder translates it to a code or day number.
    Str {
        /// The text between the quotes.
        value: String,
        /// Source span.
        span: Span,
    },
    /// Binary arithmetic.
    Binary {
        /// `+`, `-`, `*` or `/`.
        op: BinOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
        /// Source span.
        span: Span,
    },
    /// Aggregate call, e.g. `SUM(l_quantity)`. `COUNT(*)` has `arg = None`.
    Agg {
        /// The function.
        func: AggName,
        /// Argument; `None` only for `COUNT(*)`.
        arg: Option<Box<ScalarExpr>>,
        /// Source span.
        span: Span,
    },
    /// `CASE WHEN cond THEN a [ELSE b] END` (missing ELSE defaults to 0).
    Case {
        /// The condition.
        when: Box<BoolExpr>,
        /// Value when the condition holds.
        then: Box<ScalarExpr>,
        /// Value otherwise (0 when omitted).
        otherwise: Option<Box<ScalarExpr>>,
        /// Source span.
        span: Span,
    },
}

impl ScalarExpr {
    /// The node's source span.
    pub fn span(&self) -> Span {
        match self {
            ScalarExpr::Column { span, .. }
            | ScalarExpr::Int { span, .. }
            | ScalarExpr::Str { span, .. }
            | ScalarExpr::Binary { span, .. }
            | ScalarExpr::Agg { span, .. }
            | ScalarExpr::Case { span, .. } => *span,
        }
    }

    /// True if any node in the tree is an aggregate call.
    pub fn has_agg(&self) -> bool {
        match self {
            ScalarExpr::Agg { .. } => true,
            ScalarExpr::Binary { left, right, .. } => left.has_agg() || right.has_agg(),
            ScalarExpr::Case {
                then, otherwise, ..
            } => then.has_agg() || otherwise.as_ref().is_some_and(|e| e.has_agg()),
            _ => false,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A boolean-valued expression (WHERE clause, CASE condition, JOIN ... ON).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolExpr {
    /// `left op right`.
    Cmp {
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Comparison operator.
        op: CmpName,
        /// Right operand.
        right: Box<ScalarExpr>,
        /// Source span.
        span: Span,
    },
    /// `expr BETWEEN lo AND hi` (inclusive both ends).
    Between {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// Lower bound.
        lo: Box<ScalarExpr>,
        /// Upper bound.
        hi: Box<ScalarExpr>,
        /// Source span.
        span: Span,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// Literal alternatives.
        list: Vec<ScalarExpr>,
        /// Source span.
        span: Span,
    },
    /// `expr LIKE 'PREFIX%'` — only prefix patterns are supported.
    Like {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// The pattern (with trailing `%`).
        pattern: String,
        /// Source span.
        span: Span,
    },
    /// `EXISTS (SELECT ...)` — correlated existence test.
    Exists {
        /// The subquery.
        query: Box<SelectStmt>,
        /// Source span.
        span: Span,
    },
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// The node's source span.
    pub fn span(&self) -> Span {
        match self {
            BoolExpr::Cmp { span, .. }
            | BoolExpr::Between { span, .. }
            | BoolExpr::InList { span, .. }
            | BoolExpr::Like { span, .. }
            | BoolExpr::Exists { span, .. } => *span,
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => a.span().to(b.span()),
        }
    }
}

/// One item in the SELECT list: an expression plus optional `AS alias`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: ScalarExpr,
    /// Output name (`AS alias`, or derived from the expression).
    pub alias: Option<String>,
    /// Source span.
    pub span: Span,
}

/// A table in the FROM clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// One `JOIN table ON left = right` link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// Left side of the equality (a column reference).
    pub left: ScalarExpr,
    /// Right side of the equality (a column reference).
    pub right: ScalarExpr,
    /// Source span.
    pub span: Span,
}

/// One ORDER BY key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderItem {
    /// Output column or alias name.
    pub name: String,
    /// Descending?
    pub desc: bool,
    /// Source span.
    pub span: Span,
}

/// A parsed SELECT statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// The first FROM table.
    pub from: TableRef,
    /// INNER JOIN chain, in source order.
    pub joins: Vec<JoinClause>,
    /// WHERE clause.
    pub filter: Option<BoolExpr>,
    /// GROUP BY column references.
    pub group_by: Vec<ScalarExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// Span of the whole statement.
    pub span: Span,
}
