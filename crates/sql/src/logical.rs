//! The bound logical query representation.
//!
//! The binder resolves a parsed [`crate::ast::SelectStmt`] against the
//! catalog into a [`BoundQuery`]: base-table scans, a left-folded inner-join
//! chain, an optional EXISTS semi-join, WHERE conjuncts, and a typed select
//! layer (plain projection or group-by aggregation). Scalar expressions and
//! predicates reuse the executor's [`Expr`]/[`Predicate`] types so lowering
//! and the hand-built TPC-H plans share one vocabulary.
//!
//! A freshly bound query is *naive*: WHERE conjuncts sit in
//! [`BoundQuery::conjuncts`] unrouted and every scan reads all table
//! columns. The rewrite passes in [`crate::rewrite`] (constant folding,
//! predicate pushdown, projection pruning) normalize it into the form
//! [`crate::lower`] consumes; [`crate::interp`] evaluates either form and is
//! used as the oracle in randomized soak tests.

use crate::error::Span;
use adamant_plan::expr::{Expr, Predicate};
use adamant_task::params::AggFunc;
use std::collections::{BTreeMap, BTreeSet};

/// How a delivered output column decodes to a client-facing value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColumnDecode {
    /// Plain integer (includes all aggregate results).
    Int,
    /// Days since 1970-01-01, rendered as `yyyy-mm-dd`.
    Date,
    /// Dictionary code into `table.column`'s dictionary.
    Dict {
        /// Owning table.
        table: String,
        /// Dictionary column.
        column: String,
    },
}

/// One base table in the join tree.
#[derive(Clone, Debug)]
pub struct BoundTable {
    /// Catalog table name.
    pub name: String,
    /// Row count at bind time (drives build-side choice and sizing hints).
    pub rows: usize,
}

/// Joins table `i + 1` into the stream accumulated over tables `0..=i`.
#[derive(Clone, Debug)]
pub struct BoundJoin {
    /// Equi-join key on the accumulated side.
    pub stream_key: String,
    /// Equi-join key on the newly joined table.
    pub table_key: String,
}

/// An `EXISTS (SELECT ... FROM inner WHERE inner.k = outer.k AND ...)`
/// semi-join. Only single-table outer queries support it (the TPC-H Q4
/// shape).
#[derive(Clone, Debug)]
pub struct BoundExists {
    /// The inner (subquery) table.
    pub table: String,
    /// Inner table row count at bind time.
    pub rows: usize,
    /// Correlation key on the outer table.
    pub outer_key: String,
    /// Correlation key on the inner table.
    pub inner_key: String,
    /// Conjuncts over inner-table columns only.
    pub conjuncts: Vec<Predicate>,
}

/// A projected output column of a non-aggregate query.
#[derive(Clone, Debug)]
pub struct BoundItem {
    /// Output name.
    pub name: String,
    /// The projected expression.
    pub expr: Expr,
    /// How the values decode.
    pub decode: ColumnDecode,
}

/// One aggregate computation.
#[derive(Clone, Debug)]
pub struct BoundAgg {
    /// Output name.
    pub name: String,
    /// The fold.
    pub func: AggFunc,
    /// Aggregated expression; `None` means `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// One GROUP BY column with its bind-time value range (for key packing and
/// hash-table sizing).
#[derive(Clone, Debug)]
pub struct BoundGroup {
    /// The grouping column.
    pub column: String,
    /// How the values decode.
    pub decode: ColumnDecode,
    /// Smallest value observed at bind time.
    pub lo: i64,
    /// Largest value observed at bind time.
    pub hi: i64,
}

/// Where a select-list entry of an aggregate query comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputSource {
    /// The i-th GROUP BY column.
    Group(usize),
    /// The i-th aggregate.
    Agg(usize),
}

/// A select-list entry of an aggregate query.
#[derive(Clone, Debug)]
pub struct BoundOutput {
    /// Output name.
    pub name: String,
    /// Group column or aggregate index.
    pub source: OutputSource,
}

/// The select layer of a bound query.
#[derive(Clone, Debug)]
pub enum BoundSelect {
    /// Row-wise projection, no aggregation.
    Plain(Vec<BoundItem>),
    /// Group-by (or whole-input) aggregation.
    Aggregate {
        /// GROUP BY columns (empty for whole-input aggregates).
        group: Vec<BoundGroup>,
        /// The aggregates.
        aggs: Vec<BoundAgg>,
        /// Select-list order over groups and aggregates.
        outputs: Vec<BoundOutput>,
    },
}

/// One ORDER BY key over the aggregate outputs.
#[derive(Clone, Copy, Debug)]
pub struct BoundOrder {
    /// What to sort by.
    pub source: OutputSource,
    /// Descending?
    pub desc: bool,
}

/// A fully bound logical query.
#[derive(Clone, Debug)]
pub struct BoundQuery {
    /// Base tables; index 0 is the FROM table, the rest join in order.
    pub tables: Vec<BoundTable>,
    /// Join links; `joins[i]` joins `tables[i + 1]`.
    pub joins: Vec<BoundJoin>,
    /// Optional EXISTS semi-join.
    pub exists: Option<BoundExists>,
    /// WHERE conjuncts not yet routed to a scan (the naive form; emptied by
    /// predicate pushdown).
    pub conjuncts: Vec<Predicate>,
    /// Per-table predicates routed by predicate pushdown.
    pub scan_preds: Vec<Vec<Predicate>>,
    /// Columns each scan reads (all columns until projection pruning).
    pub scan_cols: Vec<BTreeSet<String>>,
    /// The select layer.
    pub select: BoundSelect,
    /// ORDER BY keys (aggregate queries only).
    pub order_by: Vec<BoundOrder>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// Column name → owning table index (names are globally unique).
    pub col_table: BTreeMap<String, usize>,
    /// Span of the whole statement, for rewrite/lowering diagnostics.
    pub span: Span,
}

impl BoundQuery {
    /// Table indices referenced by a predicate's leaf columns.
    pub fn pred_tables(&self, pred: &Predicate) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for leaf in pred.leaves() {
            match leaf {
                Predicate::Cmp { col, .. } => {
                    if let Some(&t) = self.col_table.get(col) {
                        out.insert(t);
                    }
                }
                Predicate::CmpCols { left, right, .. } => {
                    for c in [left, right] {
                        if let Some(&t) = self.col_table.get(c) {
                            out.insert(t);
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The minimal set of columns each table must scan: select expressions,
    /// routed and unrouted predicates, join keys and the EXISTS outer key.
    pub fn required_columns(&self) -> Vec<BTreeSet<String>> {
        let mut needed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); self.tables.len()];
        let add = |needed: &mut Vec<BTreeSet<String>>, col: &str| {
            if let Some(&t) = self.col_table.get(col) {
                needed[t].insert(col.to_string());
            }
        };
        let add_expr = |needed: &mut Vec<BTreeSet<String>>, e: &Expr| {
            for c in e.columns() {
                if let Some(&t) = self.col_table.get(c) {
                    needed[t].insert(c.to_string());
                }
            }
        };
        match &self.select {
            BoundSelect::Plain(items) => {
                for item in items {
                    add_expr(&mut needed, &item.expr);
                }
            }
            BoundSelect::Aggregate { group, aggs, .. } => {
                for g in group {
                    add(&mut needed, &g.column);
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        add_expr(&mut needed, e);
                    }
                }
            }
        }
        let add_pred = |needed: &mut Vec<BTreeSet<String>>, p: &Predicate| {
            for leaf in p.leaves() {
                match leaf {
                    Predicate::Cmp { col, .. } => {
                        if let Some(&t) = self.col_table.get(col) {
                            needed[t].insert(col.clone());
                        }
                    }
                    Predicate::CmpCols { left, right, .. } => {
                        for c in [left, right] {
                            if let Some(&t) = self.col_table.get(c) {
                                needed[t].insert(c.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
        };
        for p in &self.conjuncts {
            add_pred(&mut needed, p);
        }
        for ps in &self.scan_preds {
            for p in ps {
                add_pred(&mut needed, p);
            }
        }
        for j in &self.joins {
            add(&mut needed, &j.stream_key);
            add(&mut needed, &j.table_key);
        }
        if let Some(ex) = &self.exists {
            add(&mut needed, &ex.outer_key);
        }
        needed
    }

    /// Output column names in select-list order.
    pub fn output_names(&self) -> Vec<&str> {
        match &self.select {
            BoundSelect::Plain(items) => items.iter().map(|i| i.name.as_str()).collect(),
            BoundSelect::Aggregate { outputs, .. } => {
                outputs.iter().map(|o| o.name.as_str()).collect()
            }
        }
    }
}
