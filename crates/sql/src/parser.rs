//! Recursive-descent parser for the supported SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT item (',' item)* FROM table join* [WHERE bool]
//!               [GROUP BY colref (',' colref)*]
//!               [ORDER BY orderitem (',' orderitem)*] [LIMIT n] [';']
//! item       := scalar [AS ident]
//! join       := [INNER] JOIN table ON colref '=' colref
//! bool       := bterm (OR bterm)*
//! bterm      := bfactor (AND bfactor)*
//! bfactor    := '(' bool ')' | EXISTS '(' query ')' | predicate
//! predicate  := scalar cmp scalar
//!             | scalar BETWEEN scalar AND scalar
//!             | scalar IN '(' scalar (',' scalar)* ')'
//!             | scalar LIKE string
//! scalar     := term (('+' | '-') term)*
//! term       := factor (('*' | '/') factor)*
//! factor     := number | '-' number | string | DATE string
//!             | agg '(' scalar | '*' ')' | CASE WHEN bool THEN scalar
//!               [ELSE scalar] END | colref | '(' scalar ')'
//! colref     := ident ['.' ident]
//! ```
//!
//! A recursion-depth guard bounds nesting so adversarial input (thousands
//! of parentheses) yields a typed [`SqlError`] instead of a stack overflow.

use crate::ast::*;
use crate::error::{Span, SqlError, SqlResult};
use crate::lexer::{lex, SpannedTok, Tok};

/// Maximum expression nesting depth before the parser bails out.
const MAX_DEPTH: usize = 48;

/// Maximum terms in one operator chain (`a AND b AND …`, `a + b + …`,
/// `IN (…)`). The AST stores chains as left-deep boxed trees, so this also
/// bounds drop/visit recursion over hostile megabyte-long inputs.
const MAX_TERMS: usize = 256;

/// Reserved words that cannot be used as identifiers.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "join", "inner", "on", "and", "or",
    "not", "between", "in", "like", "exists", "case", "when", "then", "else", "end", "as", "asc",
    "desc", "date",
];

/// Parses one SELECT statement; trailing `;` is allowed, trailing garbage
/// is a parse error.
pub fn parse(input: &str) -> SqlResult<SelectStmt> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let stmt = p.select_stmt()?;
    if p.peek() == &Tok::Semi {
        p.bump();
    }
    if p.peek() != &Tok::Eof {
        return Err(SqlError::parse(
            format!("unexpected {} after statement", p.peek()),
            p.peek_span(),
        ));
    }
    Ok(stmt)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn enter(&mut self) -> SqlResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(SqlError::parse(
                format!("expression nested deeper than {MAX_DEPTH} levels"),
                self.peek_span(),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Is the current token the given keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<Span> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(SqlError::parse(
                format!(
                    "expected {}, found {}",
                    kw.to_ascii_uppercase(),
                    self.peek()
                ),
                self.peek_span(),
            ))
        }
    }

    fn expect_tok(&mut self, want: Tok, what: &str) -> SqlResult<Span> {
        if self.peek() == &want {
            Ok(self.bump().span)
        } else {
            Err(SqlError::parse(
                format!("expected {what}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    /// A non-reserved identifier.
    fn ident(&mut self, what: &str) -> SqlResult<(String, Span)> {
        match self.peek() {
            Tok::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let s = s.clone();
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(SqlError::parse(
                format!("expected {what}, found {other}"),
                self.peek_span(),
            )),
        }
    }

    // ---- statement ------------------------------------------------------

    fn select_stmt(&mut self) -> SqlResult<SelectStmt> {
        let start = self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.at_kw("inner");
            if inner {
                self.bump();
            }
            if self.at_kw("join") {
                self.bump();
            } else if inner {
                return Err(SqlError::parse(
                    format!("expected JOIN after INNER, found {}", self.peek()),
                    self.peek_span(),
                ));
            } else {
                break;
            }
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            let left = self.column_ref()?;
            self.expect_tok(Tok::Eq, "`=` in join condition")?;
            let right = self.column_ref()?;
            let span = table.span.to(right.span());
            joins.push(JoinClause {
                table,
                left,
                right,
                span,
            });
        }
        let filter = if self.eat_kw("where") {
            Some(self.bool_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.column_ref()?);
            while self.peek() == &Tok::Comma {
                self.bump();
                group_by.push(self.column_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            order_by.push(self.order_item()?);
            while self.peek() == &Tok::Comma {
                self.bump();
                order_by.push(self.order_item()?);
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.peek().clone() {
                Tok::Number(n) if n >= 0 => {
                    self.bump();
                    Some(n as usize)
                }
                other => {
                    return Err(SqlError::parse(
                        format!("expected non-negative LIMIT count, found {other}"),
                        self.peek_span(),
                    ))
                }
            }
        } else {
            None
        };
        let end = self.toks[self.pos.saturating_sub(1)].span;
        Ok(SelectStmt {
            items,
            from,
            joins,
            filter,
            group_by,
            order_by,
            limit,
            span: start.to(end),
        })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.peek() == &Tok::Star {
            return Err(SqlError::unsupported(
                "bare `*` projection is not supported; list columns explicitly",
                self.peek_span(),
            ));
        }
        let expr = self.scalar_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident("output alias")?.0)
        } else {
            None
        };
        let span = expr.span();
        Ok(SelectItem { expr, alias, span })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let (name, span) = self.ident("table name")?;
        Ok(TableRef { name, span })
    }

    fn column_ref(&mut self) -> SqlResult<ScalarExpr> {
        let (first, sp1) = self.ident("column name")?;
        if self.peek() == &Tok::Dot {
            self.bump();
            let (second, sp2) = self.ident("column name after `.`")?;
            Ok(ScalarExpr::Column {
                table: Some(first),
                name: second,
                span: sp1.to(sp2),
            })
        } else {
            Ok(ScalarExpr::Column {
                table: None,
                name: first,
                span: sp1,
            })
        }
    }

    fn order_item(&mut self) -> SqlResult<OrderItem> {
        let col = self.column_ref()?;
        let (name, span) = match col {
            ScalarExpr::Column { name, span, .. } => (name, span),
            _ => unreachable!("column_ref returns Column"),
        };
        let desc = if self.eat_kw("desc") {
            true
        } else {
            self.eat_kw("asc");
            false
        };
        Ok(OrderItem { name, desc, span })
    }

    // ---- boolean expressions --------------------------------------------

    fn bool_expr(&mut self) -> SqlResult<BoolExpr> {
        let mut left = self.bool_term()?;
        let mut terms = 1usize;
        while self.eat_kw("or") {
            terms += 1;
            self.check_terms(terms)?;
            let right = self.bool_term()?;
            left = BoolExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn bool_term(&mut self) -> SqlResult<BoolExpr> {
        let mut left = self.bool_factor()?;
        let mut terms = 1usize;
        while self.eat_kw("and") {
            terms += 1;
            self.check_terms(terms)?;
            let right = self.bool_factor()?;
            left = BoolExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn check_terms(&self, terms: usize) -> SqlResult<()> {
        if terms > MAX_TERMS {
            return Err(SqlError::parse(
                format!("operator chain longer than {MAX_TERMS} terms"),
                self.peek_span(),
            ));
        }
        Ok(())
    }

    fn bool_factor(&mut self) -> SqlResult<BoolExpr> {
        self.enter()?;
        let result = self.bool_factor_inner();
        self.leave();
        result
    }

    fn bool_factor_inner(&mut self) -> SqlResult<BoolExpr> {
        if self.at_kw("not") {
            return Err(SqlError::unsupported(
                "NOT is not supported; rewrite with the inverse comparison",
                self.peek_span(),
            ));
        }
        if self.at_kw("exists") {
            let start = self.bump().span;
            self.expect_tok(Tok::LParen, "`(` after EXISTS")?;
            let query = self.select_stmt()?;
            let end = self.expect_tok(Tok::RParen, "`)` closing EXISTS subquery")?;
            return Ok(BoolExpr::Exists {
                query: Box::new(query),
                span: start.to(end),
            });
        }
        // `(` is ambiguous: parenthesized boolean vs parenthesized arithmetic
        // starting a predicate, e.g. `(a AND b)` vs `(a + b) < 10`. Try the
        // boolean reading first and backtrack on failure.
        if self.peek() == &Tok::LParen {
            let save_pos = self.pos;
            let save_depth = self.depth;
            self.bump();
            if let Ok(inner) = self.bool_expr() {
                if self.peek() == &Tok::RParen {
                    self.bump();
                    return Ok(inner);
                }
            }
            self.pos = save_pos;
            self.depth = save_depth;
        }
        self.predicate()
    }

    fn predicate(&mut self) -> SqlResult<BoolExpr> {
        let left = self.scalar_expr()?;
        if self.eat_kw("between") {
            let lo = self.scalar_expr()?;
            self.expect_kw("and")?;
            let hi = self.scalar_expr()?;
            let span = left.span().to(hi.span());
            return Ok(BoolExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                span,
            });
        }
        if self.eat_kw("in") {
            self.expect_tok(Tok::LParen, "`(` after IN")?;
            let mut list = vec![self.scalar_expr()?];
            while self.peek() == &Tok::Comma {
                self.bump();
                self.check_terms(list.len() + 1)?;
                list.push(self.scalar_expr()?);
            }
            let end = self.expect_tok(Tok::RParen, "`)` closing IN list")?;
            let span = left.span().to(end);
            return Ok(BoolExpr::InList {
                expr: Box::new(left),
                list,
                span,
            });
        }
        if self.eat_kw("like") {
            return match self.peek().clone() {
                Tok::Str(pattern) => {
                    let end = self.bump().span;
                    let span = left.span().to(end);
                    Ok(BoolExpr::Like {
                        expr: Box::new(left),
                        pattern,
                        span,
                    })
                }
                other => Err(SqlError::parse(
                    format!("expected string pattern after LIKE, found {other}"),
                    self.peek_span(),
                )),
            };
        }
        let op = match self.peek() {
            Tok::Lt => CmpName::Lt,
            Tok::Le => CmpName::Le,
            Tok::Gt => CmpName::Gt,
            Tok::Ge => CmpName::Ge,
            Tok::Eq => CmpName::Eq,
            Tok::Ne => CmpName::Ne,
            other => {
                return Err(SqlError::parse(
                    format!("expected comparison operator, found {other}"),
                    self.peek_span(),
                ))
            }
        };
        self.bump();
        let right = self.scalar_expr()?;
        let span = left.span().to(right.span());
        Ok(BoolExpr::Cmp {
            left: Box::new(left),
            op,
            right: Box::new(right),
            span,
        })
    }

    // ---- scalar expressions ---------------------------------------------

    fn scalar_expr(&mut self) -> SqlResult<ScalarExpr> {
        let mut left = self.term()?;
        let mut terms = 1usize;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            terms += 1;
            self.check_terms(terms)?;
            self.bump();
            let right = self.term()?;
            let span = left.span().to(right.span());
            left = ScalarExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> SqlResult<ScalarExpr> {
        let mut left = self.factor()?;
        let mut terms = 1usize;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            terms += 1;
            self.check_terms(terms)?;
            self.bump();
            let right = self.factor()?;
            let span = left.span().to(right.span());
            left = ScalarExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> SqlResult<ScalarExpr> {
        self.enter()?;
        let result = self.factor_inner();
        self.leave();
        result
    }

    fn factor_inner(&mut self) -> SqlResult<ScalarExpr> {
        match self.peek().clone() {
            Tok::Number(value) => {
                let span = self.bump().span;
                Ok(ScalarExpr::Int { value, span })
            }
            Tok::Minus => {
                let start = self.bump().span;
                match self.peek().clone() {
                    Tok::Number(value) => {
                        let end = self.bump().span;
                        Ok(ScalarExpr::Int {
                            value: value.wrapping_neg(),
                            span: start.to(end),
                        })
                    }
                    other => Err(SqlError::parse(
                        format!("expected number after unary `-`, found {other}"),
                        self.peek_span(),
                    )),
                }
            }
            Tok::Str(value) => {
                let span = self.bump().span;
                Ok(ScalarExpr::Str { value, span })
            }
            Tok::LParen => {
                self.bump();
                let inner = self.scalar_expr()?;
                self.expect_tok(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::Ident(word) => {
                let lower = word.to_ascii_lowercase();
                if lower == "date" {
                    return self.date_literal();
                }
                if lower == "case" {
                    return self.case_expr();
                }
                if lower == "avg" && self.toks[self.pos + 1].tok == Tok::LParen {
                    return Err(SqlError::unsupported(
                        "AVG is not supported; the engine computes in integers — \
                         decompose into SUM(x) / COUNT(x)",
                        self.peek_span(),
                    ));
                }
                let agg = match lower.as_str() {
                    "sum" => Some(AggName::Sum),
                    "count" => Some(AggName::Count),
                    "min" => Some(AggName::Min),
                    "max" => Some(AggName::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.toks[self.pos + 1].tok == Tok::LParen {
                        return self.agg_call(func);
                    }
                }
                self.column_ref()
            }
            other => Err(SqlError::parse(
                format!("expected expression, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn agg_call(&mut self, func: AggName) -> SqlResult<ScalarExpr> {
        let start = self.bump().span; // function name
        self.bump(); // `(`
        if func == AggName::Count && self.peek() == &Tok::Star {
            self.bump();
            let end = self.expect_tok(Tok::RParen, "`)` closing COUNT(*)")?;
            return Ok(ScalarExpr::Agg {
                func,
                arg: None,
                span: start.to(end),
            });
        }
        let arg = self.scalar_expr()?;
        let end = self.expect_tok(Tok::RParen, "`)` closing aggregate call")?;
        Ok(ScalarExpr::Agg {
            func,
            arg: Some(Box::new(arg)),
            span: start.to(end),
        })
    }

    fn case_expr(&mut self) -> SqlResult<ScalarExpr> {
        let start = self.bump().span; // CASE
        self.expect_kw("when")?;
        let when = self.bool_expr()?;
        self.expect_kw("then")?;
        let then = self.scalar_expr()?;
        if self.at_kw("when") {
            return Err(SqlError::unsupported(
                "multiple WHEN arms are not supported; nest CASE expressions",
                self.peek_span(),
            ));
        }
        let otherwise = if self.eat_kw("else") {
            Some(Box::new(self.scalar_expr()?))
        } else {
            None
        };
        let end = self.expect_kw("end")?;
        Ok(ScalarExpr::Case {
            when: Box::new(when),
            then: Box::new(then),
            otherwise,
            span: start.to(end),
        })
    }

    /// `DATE 'yyyy-mm-dd'`, validated and folded to days since 1970-01-01.
    fn date_literal(&mut self) -> SqlResult<ScalarExpr> {
        let start = self.bump().span; // DATE
        match self.peek().clone() {
            Tok::Str(text) => {
                let end = self.bump().span;
                let span = start.to(end);
                let days = parse_date(&text).ok_or_else(|| {
                    SqlError::parse(
                        format!(
                            "invalid date literal '{text}' (expected 'yyyy-mm-dd' in 1970..=2199)"
                        ),
                        span,
                    )
                })?;
                Ok(ScalarExpr::Int { value: days, span })
            }
            other => Err(SqlError::parse(
                format!("expected 'yyyy-mm-dd' string after DATE, found {other}"),
                self.peek_span(),
            )),
        }
    }
}

/// Parses `yyyy-mm-dd` into days since epoch, or `None` if malformed or out
/// of the supported 1970..=2199 range.
pub(crate) fn parse_date(text: &str) -> Option<i64> {
    let bytes = text.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let num = |s: &str| -> Option<u32> {
        if s.bytes().all(|b| b.is_ascii_digit()) {
            s.parse().ok()
        } else {
            None
        }
    };
    let year = num(&text[0..4])? as i32;
    let month = num(&text[5..7])?;
    let day = num(&text[8..10])?;
    if !(1970..=2199).contains(&year) || !(1..=12).contains(&month) {
        return None;
    }
    let month_days = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    let max_day = month_days[(month - 1) as usize] + u32::from(month == 2 && leap);
    if !(1..=max_day).contains(&day) {
        return None;
    }
    Some(adamant_storage::datatype::date_to_days(year, month, day) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_clause_set() {
        let stmt = parse(
            "SELECT l_returnflag, SUM(l_quantity) AS qty \
             FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
             WHERE l_shipdate <= DATE '1998-09-02' AND l_discount BETWEEN 5 AND 7 \
             GROUP BY l_returnflag ORDER BY qty DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.items[1].alias.as_deref(), Some("qty"));
        assert_eq!(stmt.from.name, "lineitem");
        assert_eq!(stmt.joins.len(), 1);
        assert!(stmt.filter.is_some());
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.order_by.len(), 1);
        assert!(stmt.order_by[0].desc);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn date_literal_folds_to_days() {
        let stmt = parse("SELECT a FROM t WHERE a < DATE '1970-01-02'").unwrap();
        match stmt.filter.unwrap() {
            BoolExpr::Cmp { right, .. } => {
                assert_eq!(
                    *right,
                    ScalarExpr::Int {
                        value: 1,
                        span: right.span()
                    }
                );
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn bad_dates_are_errors_not_panics() {
        for bad in [
            "'1969-12-31'",
            "'2200-01-01'",
            "'1995-13-01'",
            "'1995-02-29'",
            "'1995-1-1'",
            "'garbage'",
        ] {
            let sql = format!("SELECT a FROM t WHERE a < DATE {bad}");
            assert!(parse(&sql).is_err(), "{bad} should be rejected");
        }
        assert!(parse("SELECT a FROM t WHERE a < DATE '1996-02-29'").is_ok());
    }

    #[test]
    fn paren_ambiguity_backtracks() {
        // Parenthesized boolean.
        assert!(parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3").is_ok());
        // Parenthesized arithmetic starting a predicate.
        assert!(parse("SELECT a FROM t WHERE (a + b) < 10").is_ok());
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let mut sql = String::from("SELECT a FROM t WHERE ");
        for _ in 0..1000 {
            sql.push('(');
        }
        sql.push_str("a = 1");
        for _ in 0..1000 {
            sql.push(')');
        }
        let err = parse(&sql).unwrap_err();
        assert!(err.message.contains("nested"), "{err}");
    }

    #[test]
    fn unsupported_constructs_have_typed_errors() {
        use crate::error::SqlErrorKind;
        for sql in [
            "SELECT * FROM t",
            "SELECT AVG(a) FROM t",
            "SELECT a FROM t WHERE NOT a = 1",
            "SELECT CASE WHEN a = 1 THEN 1 WHEN a = 2 THEN 2 ELSE 0 END AS c FROM t",
        ] {
            let err = parse(sql).unwrap_err();
            assert_eq!(err.kind, SqlErrorKind::Unsupported, "{sql}: {err}");
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        for sql in [
            "",
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a <",
            "SELECT a FROM t GROUP",
            "SELECT a FROM t LIMIT x",
            "FROM t SELECT a",
            "SELECT a FROM t; extra",
            "SELECT a FROM t JOIN",
            "SELECT a FROM t INNER x",
            "SELECT COUNT(* FROM t",
        ] {
            assert!(parse(sql).is_err(), "{sql:?} should fail");
        }
    }

    #[test]
    fn exists_subquery_parses() {
        let stmt = parse(
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders \
             WHERE EXISTS (SELECT l_orderkey FROM lineitem \
                           WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) \
             GROUP BY o_orderpriority",
        )
        .unwrap();
        match stmt.filter.unwrap() {
            BoolExpr::Exists { query, .. } => assert_eq!(query.from.name, "lineitem"),
            other => panic!("expected EXISTS, got {other:?}"),
        }
    }
}
