//! Name resolution and typing: AST → [`BoundQuery`].
//!
//! The binder resolves tables and columns against the catalog, translates
//! string literals into dictionary codes or day numbers, turns CASE
//! expressions into 0/1 indicator arithmetic, and classifies the select
//! layer as plain projection or aggregation. Because the executor binds
//! scan inputs by *bare* column name, the binder requires column names to
//! be globally unique across all joined tables — ambiguous schemas get a
//! typed `Unsupported` error instead of silently wrong bindings.

use crate::ast::*;
use crate::error::{Span, SqlError, SqlResult};
use crate::logical::*;
use crate::parser::parse_date;
use adamant_plan::expr::{Expr, Predicate};
use adamant_storage::catalog::Catalog;
use adamant_storage::datatype::DataType;
use adamant_storage::table::Table;
use adamant_task::params::{AggFunc, CmpOp, MapOp};
use std::collections::{BTreeMap, BTreeSet};

/// Sentinel compared against dictionary codes (always ≥ 0) to express
/// predicates that can never (or always) hold, e.g. `col = 'NO SUCH VALUE'`.
const NEVER_CODE: i64 = -1;

/// Binds a parsed statement against the catalog.
pub fn bind(stmt: &SelectStmt, catalog: &Catalog) -> SqlResult<BoundQuery> {
    let mut names = vec![(stmt.from.name.clone(), stmt.from.span)];
    for j in &stmt.joins {
        names.push((j.table.name.clone(), j.table.span));
    }
    let binder = Binder::new(catalog, &names)?;
    binder.bind_stmt(stmt)
}

struct Binder<'a> {
    catalog: &'a Catalog,
    tables: Vec<&'a Table>,
    col_table: BTreeMap<String, usize>,
}

impl<'a> Binder<'a> {
    fn new(catalog: &'a Catalog, names: &[(String, Span)]) -> SqlResult<Binder<'a>> {
        let mut tables = Vec::new();
        let mut col_table = BTreeMap::new();
        for (i, (name, span)) in names.iter().enumerate() {
            if tables.iter().any(|t: &&Table| t.name() == name.as_str()) {
                return Err(SqlError::unsupported(
                    format!("table `{name}` appears twice; self-joins are not supported"),
                    *span,
                ));
            }
            let table = catalog
                .table(name)
                .map_err(|_| SqlError::bind(format!("unknown table `{name}`"), *span))?;
            for field in table.schema().fields() {
                if col_table.insert(field.name.clone(), i).is_some() {
                    return Err(SqlError::unsupported(
                        format!(
                            "column `{}` exists in more than one joined table; \
                             column names must be globally unique",
                            field.name
                        ),
                        *span,
                    ));
                }
            }
            tables.push(table);
        }
        Ok(Binder {
            catalog,
            tables,
            col_table,
        })
    }

    /// Resolves a column reference to its owning table index.
    fn resolve(&self, table: &Option<String>, name: &str, span: Span) -> SqlResult<usize> {
        let &idx = self
            .col_table
            .get(name)
            .ok_or_else(|| SqlError::bind(format!("unknown column `{name}`"), span))?;
        if let Some(q) = table {
            if self.tables[idx].name() != q {
                return Err(SqlError::bind(
                    format!(
                        "column `{name}` belongs to table `{}`, not `{q}`",
                        self.tables[idx].name()
                    ),
                    span,
                ));
            }
        }
        if self.col_type(name) == DataType::Float64 {
            return Err(SqlError::unsupported(
                format!("column `{name}` is Float64; the engine computes in integers"),
                span,
            ));
        }
        Ok(idx)
    }

    fn col_type(&self, name: &str) -> DataType {
        let idx = self.col_table[name];
        self.tables[idx]
            .column(name)
            .map(|c| c.data_type())
            .unwrap_or(DataType::Int64)
    }

    fn col_data(&self, name: &str) -> &'a adamant_storage::column::Column {
        let idx = self.col_table[name];
        self.tables[idx].column(name).expect("resolved column")
    }

    fn decode_for(&self, name: &str) -> ColumnDecode {
        match self.col_type(name) {
            DataType::DictStr => ColumnDecode::Dict {
                table: self.tables[self.col_table[name]].name().to_string(),
                column: name.to_string(),
            },
            DataType::Date => ColumnDecode::Date,
            _ => ColumnDecode::Int,
        }
    }

    // ---- statement ------------------------------------------------------

    fn bind_stmt(&self, stmt: &SelectStmt) -> SqlResult<BoundQuery> {
        let tables: Vec<BoundTable> = self
            .tables
            .iter()
            .map(|t| BoundTable {
                name: t.name().to_string(),
                rows: t.row_count(),
            })
            .collect();

        // Join links: each ON must connect the new table to the accumulated
        // prefix with a non-dictionary equi-key.
        let mut joins = Vec::new();
        for (i, j) in stmt.joins.iter().enumerate() {
            let (lt, ln) = self.resolve_ref(&j.left)?;
            let (rt, rn) = self.resolve_ref(&j.right)?;
            let new_idx = i + 1;
            let (stream_key, table_key) = if lt < new_idx && rt == new_idx {
                (ln, rn)
            } else if rt < new_idx && lt == new_idx {
                (rn, ln)
            } else {
                return Err(SqlError::bind(
                    "join condition must link the joined table to a preceding one",
                    j.span,
                ));
            };
            for key in [&stream_key, &table_key] {
                if self.col_type(key) == DataType::DictStr {
                    return Err(SqlError::unsupported(
                        format!("cannot join on dictionary column `{key}`"),
                        j.span,
                    ));
                }
            }
            joins.push(BoundJoin {
                stream_key,
                table_key,
            });
        }

        // WHERE: split into top-level conjuncts; EXISTS is pulled out into a
        // semi-join, everything else becomes a Predicate.
        let mut conjuncts = Vec::new();
        let mut exists = None;
        if let Some(filter) = &stmt.filter {
            for c in split_conjuncts(filter) {
                if let BoolExpr::Exists { query, span } = c {
                    if exists.is_some() {
                        return Err(SqlError::unsupported(
                            "at most one EXISTS conjunct is supported",
                            *span,
                        ));
                    }
                    if self.tables.len() > 1 {
                        return Err(SqlError::unsupported(
                            "EXISTS is only supported on single-table outer queries",
                            *span,
                        ));
                    }
                    exists = Some(self.bind_exists(query, *span)?);
                } else {
                    conjuncts.push(self.bind_predicate(c)?);
                }
            }
        }

        let select = self.bind_select(stmt)?;
        let order_by = self.bind_order(stmt, &select)?;

        let scan_cols: Vec<BTreeSet<String>> = self
            .tables
            .iter()
            .map(|t| t.schema().fields().iter().map(|f| f.name.clone()).collect())
            .collect();

        Ok(BoundQuery {
            scan_preds: vec![Vec::new(); tables.len()],
            scan_cols,
            tables,
            joins,
            exists,
            conjuncts,
            select,
            order_by,
            limit: stmt.limit,
            col_table: self.col_table.clone(),
            span: stmt.span,
        })
    }

    fn resolve_ref(&self, e: &ScalarExpr) -> SqlResult<(usize, String)> {
        match e {
            ScalarExpr::Column { table, name, span } => {
                let idx = self.resolve(table, name, *span)?;
                Ok((idx, name.clone()))
            }
            other => Err(SqlError::bind("expected a column reference", other.span())),
        }
    }

    // ---- EXISTS ---------------------------------------------------------

    fn bind_exists(&self, sub: &SelectStmt, span: Span) -> SqlResult<BoundExists> {
        if !sub.joins.is_empty()
            || !sub.group_by.is_empty()
            || !sub.order_by.is_empty()
            || sub.limit.is_some()
        {
            return Err(SqlError::unsupported(
                "EXISTS subqueries must be a plain single-table SELECT with a WHERE",
                span,
            ));
        }
        let inner = self.catalog.table(&sub.from.name).map_err(|_| {
            SqlError::bind(format!("unknown table `{}`", sub.from.name), sub.from.span)
        })?;
        if self.tables.iter().any(|t| t.name() == inner.name()) {
            return Err(SqlError::unsupported(
                "EXISTS over a table already in the outer FROM is not supported",
                sub.from.span,
            ));
        }
        for f in inner.schema().fields() {
            if self.col_table.contains_key(&f.name) {
                return Err(SqlError::unsupported(
                    format!(
                        "column `{}` exists in both the EXISTS table and the outer query",
                        f.name
                    ),
                    sub.from.span,
                ));
            }
        }
        let inner_binder = Binder::new(self.catalog, &[(sub.from.name.clone(), sub.from.span)])?;
        let filter = sub.filter.as_ref().ok_or_else(|| {
            SqlError::unsupported("EXISTS subquery needs a correlating WHERE", span)
        })?;
        let mut correlation = None;
        let mut inner_conjuncts = Vec::new();
        for c in split_conjuncts(filter) {
            if let Some((outer_key, inner_key)) = self.correlation_of(c, &inner_binder)? {
                if correlation.is_some() {
                    return Err(SqlError::unsupported(
                        "EXISTS supports exactly one correlation equality",
                        c.span(),
                    ));
                }
                correlation = Some((outer_key, inner_key));
            } else {
                inner_conjuncts.push(inner_binder.bind_predicate(c)?);
            }
        }
        let (outer_key, inner_key) = correlation.ok_or_else(|| {
            SqlError::unsupported(
                "EXISTS subquery needs an equality correlating it with the outer query",
                span,
            )
        })?;
        if self.col_type(&outer_key) == DataType::DictStr
            || inner_binder.col_type(&inner_key) == DataType::DictStr
        {
            return Err(SqlError::unsupported(
                "cannot correlate EXISTS on dictionary columns",
                span,
            ));
        }
        Ok(BoundExists {
            table: inner.name().to_string(),
            rows: inner.row_count(),
            outer_key,
            inner_key,
            conjuncts: inner_conjuncts,
        })
    }

    /// If `c` is `inner_col = outer_col` (either side order), returns
    /// `(outer_key, inner_key)`.
    fn correlation_of(
        &self,
        c: &BoolExpr,
        inner: &Binder<'_>,
    ) -> SqlResult<Option<(String, String)>> {
        let BoolExpr::Cmp {
            left,
            op: CmpName::Eq,
            right,
            ..
        } = c
        else {
            return Ok(None);
        };
        let (
            ScalarExpr::Column {
                name: ln,
                table: lq,
                span: ls,
            },
            ScalarExpr::Column {
                name: rn,
                table: rq,
                span: rs,
            },
        ) = (&**left, &**right)
        else {
            return Ok(None);
        };
        let l_inner = inner.col_table.contains_key(ln);
        let r_inner = inner.col_table.contains_key(rn);
        match (l_inner, r_inner) {
            (true, false) if self.col_table.contains_key(rn) => {
                inner.resolve(lq, ln, *ls)?;
                self.resolve(rq, rn, *rs)?;
                Ok(Some((rn.clone(), ln.clone())))
            }
            (false, true) if self.col_table.contains_key(ln) => {
                self.resolve(lq, ln, *ls)?;
                inner.resolve(rq, rn, *rs)?;
                Ok(Some((ln.clone(), rn.clone())))
            }
            _ => Ok(None),
        }
    }

    // ---- predicates -----------------------------------------------------

    fn bind_predicate(&self, b: &BoolExpr) -> SqlResult<Predicate> {
        match b {
            BoolExpr::And(l, r) => Ok(Predicate::and(vec![
                self.bind_predicate(l)?,
                self.bind_predicate(r)?,
            ])),
            BoolExpr::Or(l, r) => Ok(Predicate::or(vec![
                self.bind_predicate(l)?,
                self.bind_predicate(r)?,
            ])),
            BoolExpr::Exists { span, .. } => Err(SqlError::unsupported(
                "EXISTS is only supported as a top-level WHERE conjunct",
                *span,
            )),
            BoolExpr::Cmp {
                left,
                op,
                right,
                span,
            } => self.bind_cmp(left, *op, right, *span),
            BoolExpr::Between { expr, lo, hi, span } => {
                let (_, col) = self.resolve_ref(expr)?;
                if self.col_type(&col) == DataType::DictStr {
                    return Err(SqlError::unsupported(
                        "BETWEEN on dictionary columns is not supported",
                        *span,
                    ));
                }
                let lo = self.literal_for(&col, lo)?.ok_or_else(|| {
                    SqlError::bind("BETWEEN bound does not match the column", *span)
                })?;
                let hi = self.literal_for(&col, hi)?.ok_or_else(|| {
                    SqlError::bind("BETWEEN bound does not match the column", *span)
                })?;
                Ok(Predicate::between(col, lo, hi))
            }
            BoolExpr::InList { expr, list, span } => {
                let (_, col) = self.resolve_ref(expr)?;
                let mut values = Vec::new();
                for item in list {
                    if let Some(v) = self.literal_for(&col, item)? {
                        values.push(v);
                    }
                }
                values.sort_unstable();
                values.dedup();
                if values.is_empty() {
                    return Ok(Predicate::cmp(col, CmpOp::Eq, NEVER_CODE));
                }
                let _ = span;
                Ok(Predicate::in_set(col, &values))
            }
            BoolExpr::Like {
                expr,
                pattern,
                span,
            } => {
                let (_, col) = self.resolve_ref(expr)?;
                let codes = self.like_codes(&col, pattern, *span)?;
                if codes.is_empty() {
                    return Ok(Predicate::cmp(col, CmpOp::Eq, NEVER_CODE));
                }
                Ok(Predicate::in_set(col, &codes))
            }
        }
    }

    fn bind_cmp(
        &self,
        left: &ScalarExpr,
        op: CmpName,
        right: &ScalarExpr,
        span: Span,
    ) -> SqlResult<Predicate> {
        let classify =
            |e: &ScalarExpr| -> Option<()> { matches!(e, ScalarExpr::Column { .. }).then_some(()) };
        match (classify(left), classify(right)) {
            (Some(()), Some(())) => {
                let (_, lc) = self.resolve_ref(left)?;
                let (_, rc) = self.resolve_ref(right)?;
                for c in [&lc, &rc] {
                    if self.col_type(c) == DataType::DictStr {
                        return Err(SqlError::unsupported(
                            "column-to-column comparison on dictionary columns \
                             is not supported",
                            span,
                        ));
                    }
                }
                Ok(Predicate::cmp_cols(lc, cmp_op(op), rc))
            }
            (Some(()), None) => self.bind_col_lit(left, op, right, span),
            (None, Some(())) => self.bind_col_lit(right, flip(op), left, span),
            (None, None) => Err(SqlError::unsupported(
                "predicates must compare a column with a literal or another column",
                span,
            )),
        }
    }

    fn bind_col_lit(
        &self,
        col: &ScalarExpr,
        op: CmpName,
        lit: &ScalarExpr,
        span: Span,
    ) -> SqlResult<Predicate> {
        let (_, name) = self.resolve_ref(col)?;
        if self.col_type(&name) == DataType::DictStr && !matches!(op, CmpName::Eq | CmpName::Ne) {
            return Err(SqlError::unsupported(
                "dictionary columns only support `=`, `<>`, IN and LIKE",
                span,
            ));
        }
        match self.literal_for(&name, lit)? {
            Some(v) => Ok(Predicate::cmp(name, cmp_op(op), v)),
            // A string with no dictionary code: `=` never holds, `<>` always.
            None => Ok(Predicate::cmp(name, cmp_op(op), NEVER_CODE)),
        }
    }

    /// Translates a literal for comparison against `col`: integers pass
    /// through, strings become dictionary codes (None when absent from the
    /// dictionary) or day numbers for date columns.
    fn literal_for(&self, col: &str, lit: &ScalarExpr) -> SqlResult<Option<i64>> {
        match lit {
            ScalarExpr::Int { value, .. } => Ok(Some(*value)),
            ScalarExpr::Str { value, span } => match self.col_type(col) {
                DataType::DictStr => Ok(self.col_data(col).dict_code(value).map(|c| c as i64)),
                DataType::Date => parse_date(value).map(Some).ok_or_else(|| {
                    SqlError::bind(
                        format!("invalid date literal '{value}' for date column `{col}`"),
                        *span,
                    )
                }),
                other => Err(SqlError::bind(
                    format!(
                        "string literal cannot be compared with `{col}` ({})",
                        other.name()
                    ),
                    *span,
                )),
            },
            other => Err(SqlError::unsupported(
                "comparison operands must be a column and a literal",
                other.span(),
            )),
        }
    }

    /// Dictionary codes matching a LIKE prefix pattern.
    fn like_codes(&self, col: &str, pattern: &str, span: Span) -> SqlResult<Vec<i64>> {
        if self.col_type(col) != DataType::DictStr {
            return Err(SqlError::unsupported(
                format!("LIKE requires a dictionary column, `{col}` is not one"),
                span,
            ));
        }
        let prefix = pattern.strip_suffix('%').ok_or_else(|| {
            SqlError::unsupported("only prefix LIKE patterns ('PREFIX%') are supported", span)
        })?;
        if prefix.contains('%') || prefix.contains('_') {
            return Err(SqlError::unsupported(
                "only prefix LIKE patterns ('PREFIX%') are supported",
                span,
            ));
        }
        let dict = self.col_data(col).dictionary().unwrap_or(&[]);
        let mut codes: Vec<i64> = dict
            .iter()
            .enumerate()
            .filter(|(_, s)| s.starts_with(prefix))
            .map(|(i, _)| i as i64)
            .collect();
        codes.sort_unstable();
        Ok(codes)
    }

    // ---- scalar expressions ---------------------------------------------

    /// Binds a scalar expression (no aggregates). Dictionary columns are
    /// only allowed when the whole expression is that bare column and the
    /// caller opted in.
    fn bind_scalar(&self, e: &ScalarExpr, allow_bare_dict: bool) -> SqlResult<Expr> {
        if allow_bare_dict {
            if let ScalarExpr::Column { table, name, span } = e {
                self.resolve(table, name, *span)?;
                return Ok(Expr::col(name.clone()));
            }
        }
        self.bind_scalar_inner(e)
    }

    fn bind_scalar_inner(&self, e: &ScalarExpr) -> SqlResult<Expr> {
        match e {
            ScalarExpr::Column { table, name, span } => {
                self.resolve(table, name, *span)?;
                if self.col_type(name) == DataType::DictStr {
                    return Err(SqlError::unsupported(
                        format!("dictionary column `{name}` cannot be used in arithmetic"),
                        *span,
                    ));
                }
                Ok(Expr::col(name.clone()))
            }
            ScalarExpr::Int { value, .. } => Ok(Expr::lit(*value)),
            ScalarExpr::Str { span, .. } => Err(SqlError::unsupported(
                "string literals are only supported in comparisons",
                *span,
            )),
            ScalarExpr::Binary {
                op, left, right, ..
            } => {
                let l = self.bind_scalar_inner(left)?;
                let r = self.bind_scalar_inner(right)?;
                Ok(match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div => l.div(r),
                })
            }
            ScalarExpr::Agg { span, .. } => Err(SqlError::unsupported(
                "aggregate calls cannot be nested inside expressions",
                *span,
            )),
            ScalarExpr::Case {
                when,
                then,
                otherwise,
                ..
            } => {
                let ind = self.cond_indicator(when)?;
                let t = self.bind_scalar_inner(then)?;
                let o = match otherwise {
                    Some(e) => self.bind_scalar_inner(e)?,
                    None => Expr::lit(0),
                };
                Ok(case_arith(ind, t, o))
            }
        }
    }

    /// Lowers a CASE condition to a 0/1 indicator expression (the paper's
    /// conditional-aggregation shape: `sum(case when … then … end)` becomes
    /// arithmetic over `MAP` comparison indicators).
    fn cond_indicator(&self, b: &BoolExpr) -> SqlResult<Expr> {
        match b {
            BoolExpr::And(l, r) => Ok(self.cond_indicator(l)?.mul(self.cond_indicator(r)?)),
            BoolExpr::Or(l, r) => {
                let a = self.cond_indicator(l)?;
                let b = self.cond_indicator(r)?;
                // a OR b = a + b − a·b over 0/1 indicators.
                Ok(a.clone().add(b.clone()).sub(a.mul(b)))
            }
            BoolExpr::Cmp {
                left,
                op,
                right,
                span,
            } => {
                let (col, op, lit) = match (&**left, &**right) {
                    (ScalarExpr::Column { .. }, ScalarExpr::Column { .. }) => {
                        return Err(SqlError::unsupported(
                            "column-to-column comparisons are not supported in CASE",
                            *span,
                        ))
                    }
                    (ScalarExpr::Column { .. }, lit) => (&**left, *op, lit),
                    (lit, ScalarExpr::Column { .. }) => (&**right, flip(*op), lit),
                    _ => {
                        return Err(SqlError::unsupported(
                            "CASE conditions must compare a column with a literal",
                            *span,
                        ))
                    }
                };
                let (_, name) = self.resolve_ref(col)?;
                if self.col_type(&name) == DataType::DictStr
                    && !matches!(op, CmpName::Eq | CmpName::Ne)
                {
                    return Err(SqlError::unsupported(
                        "dictionary columns only support `=`, `<>`, IN and LIKE",
                        *span,
                    ));
                }
                let value = self.literal_for(&name, lit)?.unwrap_or(NEVER_CODE);
                Ok(Expr::Indicator(
                    Box::new(Expr::col(name)),
                    indicator_op(op),
                    value,
                ))
            }
            BoolExpr::Between { expr, lo, hi, span } => {
                let (_, name) = self.resolve_ref(expr)?;
                if self.col_type(&name) == DataType::DictStr {
                    return Err(SqlError::unsupported(
                        "BETWEEN on dictionary columns is not supported",
                        *span,
                    ));
                }
                let lo = self.literal_for(&name, lo)?.ok_or_else(|| {
                    SqlError::bind("BETWEEN bound does not match the column", *span)
                })?;
                let hi = self.literal_for(&name, hi)?.ok_or_else(|| {
                    SqlError::bind("BETWEEN bound does not match the column", *span)
                })?;
                Ok(Expr::col(name.clone()).ge_const(lo).mul(Expr::Indicator(
                    Box::new(Expr::col(name)),
                    MapOp::LeConst,
                    hi,
                )))
            }
            BoolExpr::InList { expr, list, span } => {
                let (_, name) = self.resolve_ref(expr)?;
                let mut values = Vec::new();
                for item in list {
                    if let Some(v) = self.literal_for(&name, item)? {
                        values.push(v);
                    }
                }
                values.sort_unstable();
                values.dedup();
                let _ = span;
                Ok(sum_of_eq(&name, &values))
            }
            BoolExpr::Like {
                expr,
                pattern,
                span,
            } => {
                let (_, name) = self.resolve_ref(expr)?;
                let codes = self.like_codes(&name, pattern, *span)?;
                Ok(sum_of_eq(&name, &codes))
            }
            BoolExpr::Exists { span, .. } => Err(SqlError::unsupported(
                "EXISTS is not supported inside CASE",
                *span,
            )),
        }
    }

    // ---- select layer ---------------------------------------------------

    fn bind_select(&self, stmt: &SelectStmt) -> SqlResult<BoundSelect> {
        let is_aggregate = !stmt.group_by.is_empty() || stmt.items.iter().any(|i| i.expr.has_agg());
        if !is_aggregate {
            if !stmt.order_by.is_empty() {
                return Err(SqlError::unsupported(
                    "ORDER BY is only supported with GROUP BY / aggregates",
                    stmt.order_by[0].span,
                ));
            }
            let mut items = Vec::new();
            for (i, item) in stmt.items.iter().enumerate() {
                let expr = self.bind_scalar(&item.expr, true)?;
                if expr.columns().is_empty() {
                    return Err(SqlError::unsupported(
                        "constant-only projections are not supported",
                        item.span,
                    ));
                }
                let name = out_name(item, i, &expr);
                let decode = match &expr {
                    Expr::Col(c) => self.decode_for(c),
                    _ => ColumnDecode::Int,
                };
                items.push(BoundItem { name, expr, decode });
            }
            check_unique_names(items.iter().map(|i| i.name.as_str()), stmt.span)?;
            return Ok(BoundSelect::Plain(items));
        }

        // Aggregate query: GROUP BY columns plus aggregate calls.
        let mut group = Vec::new();
        for g in &stmt.group_by {
            let (_, name) = self.resolve_ref(g)?;
            if group.iter().any(|bg: &BoundGroup| bg.column == name) {
                return Err(SqlError::bind(
                    format!("duplicate GROUP BY column `{name}`"),
                    g.span(),
                ));
            }
            let (lo, hi) = self.value_range(&name)?;
            group.push(BoundGroup {
                decode: self.decode_for(&name),
                column: name,
                lo,
                hi,
            });
        }
        let mut aggs: Vec<BoundAgg> = Vec::new();
        let mut outputs = Vec::new();
        for item in stmt.items.iter() {
            match &item.expr {
                ScalarExpr::Column { table, name, span } => {
                    self.resolve(table, name, *span)?;
                    let gi = group
                        .iter()
                        .position(|g| &g.column == name)
                        .ok_or_else(|| {
                            SqlError::bind(
                                format!("column `{name}` must appear in GROUP BY"),
                                *span,
                            )
                        })?;
                    outputs.push(BoundOutput {
                        name: item.alias.clone().unwrap_or_else(|| name.clone()),
                        source: OutputSource::Group(gi),
                    });
                }
                ScalarExpr::Agg { func, arg, span } => {
                    let bound_arg = match arg {
                        None => None,
                        Some(a) => {
                            if a.has_agg() {
                                return Err(SqlError::unsupported(
                                    "nested aggregates are not supported",
                                    *span,
                                ));
                            }
                            let e = self.bind_scalar(a, false)?;
                            if e.columns().is_empty() {
                                return Err(SqlError::unsupported(
                                    "aggregates over constants are not supported",
                                    *span,
                                ));
                            }
                            Some(e)
                        }
                    };
                    let name = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| format!("{}_{}", func.as_str(), aggs.len()));
                    outputs.push(BoundOutput {
                        name: name.clone(),
                        source: OutputSource::Agg(aggs.len()),
                    });
                    aggs.push(BoundAgg {
                        name,
                        func: agg_func(*func),
                        arg: bound_arg,
                    });
                }
                other => {
                    return Err(SqlError::unsupported(
                        "select items in aggregate queries must be a group column \
                         or a single aggregate call",
                        other.span(),
                    ))
                }
            }
        }
        check_unique_names(outputs.iter().map(|o| o.name.as_str()), stmt.span)?;
        Ok(BoundSelect::Aggregate {
            group,
            aggs,
            outputs,
        })
    }

    fn bind_order(&self, stmt: &SelectStmt, select: &BoundSelect) -> SqlResult<Vec<BoundOrder>> {
        let BoundSelect::Aggregate {
            group,
            aggs,
            outputs,
        } = select
        else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for o in &stmt.order_by {
            let source = outputs
                .iter()
                .find(|b| b.name == o.name)
                .map(|b| b.source)
                .or_else(|| {
                    group
                        .iter()
                        .position(|g| g.column == o.name)
                        .map(OutputSource::Group)
                })
                .or_else(|| {
                    aggs.iter()
                        .position(|a| a.name == o.name)
                        .map(OutputSource::Agg)
                })
                .ok_or_else(|| {
                    SqlError::bind(
                        format!(
                            "ORDER BY `{}` does not name an output or group column",
                            o.name
                        ),
                        o.span,
                    )
                })?;
            out.push(BoundOrder {
                source,
                desc: o.desc,
            });
        }
        Ok(out)
    }

    /// Bind-time value range of a grouping column (dictionary span for dict
    /// columns, observed min/max otherwise) — used for key packing and
    /// hash-table sizing.
    fn value_range(&self, name: &str) -> SqlResult<(i64, i64)> {
        let col = self.col_data(name);
        if let Some(dict) = col.dictionary() {
            return Ok((0, dict.len() as i64 - 1));
        }
        let vals = col.to_i64_vec().map_err(|e| {
            SqlError::bind(
                format!("cannot read column `{name}`: {e:?}"),
                Span::default(),
            )
        })?;
        let lo = vals.iter().copied().min().unwrap_or(0);
        let hi = vals.iter().copied().max().unwrap_or(0);
        Ok((lo, hi))
    }
}

/// `CASE` as arithmetic: `I·then + (1 − I)·else`, with the common
/// `THEN 1 ELSE 0` / `THEN 0 ELSE 1` shapes folded to `I` and `1 − I`.
fn case_arith(ind: Expr, then: Expr, otherwise: Expr) -> Expr {
    match (&then, &otherwise) {
        (Expr::Lit(1), Expr::Lit(0)) => ind,
        (Expr::Lit(0), Expr::Lit(1)) => Expr::lit(1).sub(ind),
        (_, Expr::Lit(0)) => ind.mul(then),
        _ => {
            let inv = Expr::lit(1).sub(ind.clone());
            ind.mul(then).add(inv.mul(otherwise))
        }
    }
}

/// `Σ (col == v)` over distinct values — a 0/1 membership indicator.
fn sum_of_eq(col: &str, values: &[i64]) -> Expr {
    let mut it = values.iter();
    let Some(&first) = it.next() else {
        return Expr::col(col).eq_const(NEVER_CODE);
    };
    let mut acc = Expr::col(col).eq_const(first);
    for &v in it {
        acc = acc.add(Expr::col(col).eq_const(v));
    }
    acc
}

fn split_conjuncts(b: &BoolExpr) -> Vec<&BoolExpr> {
    match b {
        BoolExpr::And(l, r) => {
            let mut out = split_conjuncts(l);
            out.extend(split_conjuncts(r));
            out
        }
        other => vec![other],
    }
}

fn check_unique_names<'n>(names: impl Iterator<Item = &'n str>, span: Span) -> SqlResult<()> {
    let mut seen = BTreeSet::new();
    for n in names {
        if !seen.insert(n) {
            return Err(SqlError::bind(
                format!("duplicate output column name `{n}`; use AS to disambiguate"),
                span,
            ));
        }
    }
    Ok(())
}

fn out_name(item: &SelectItem, i: usize, expr: &Expr) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match expr {
        Expr::Col(c) => c.clone(),
        _ => format!("col_{i}"),
    }
}

fn cmp_op(op: CmpName) -> CmpOp {
    match op {
        CmpName::Lt => CmpOp::Lt,
        CmpName::Le => CmpOp::Le,
        CmpName::Gt => CmpOp::Gt,
        CmpName::Ge => CmpOp::Ge,
        CmpName::Eq => CmpOp::Eq,
        CmpName::Ne => CmpOp::Ne,
    }
}

fn flip(op: CmpName) -> CmpName {
    match op {
        CmpName::Lt => CmpName::Gt,
        CmpName::Le => CmpName::Ge,
        CmpName::Gt => CmpName::Lt,
        CmpName::Ge => CmpName::Le,
        CmpName::Eq => CmpName::Eq,
        CmpName::Ne => CmpName::Ne,
    }
}

fn indicator_op(op: CmpName) -> MapOp {
    match op {
        CmpName::Lt => MapOp::LtConst,
        CmpName::Le => MapOp::LeConst,
        CmpName::Gt => MapOp::GtConst,
        CmpName::Ge => MapOp::GeConst,
        CmpName::Eq => MapOp::EqConst,
        CmpName::Ne => MapOp::NeConst,
    }
}

fn agg_func(f: AggName) -> AggFunc {
    match f {
        AggName::Sum => AggFunc::Sum,
        AggName::Count => AggFunc::Count,
        AggName::Min => AggFunc::Min,
        AggName::Max => AggFunc::Max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use adamant_storage::column::Column;
    use adamant_storage::table::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "items",
                vec![
                    Column::from_i64("i_key", vec![1, 2, 3, 4]),
                    Column::from_i32("i_qty", vec![10, 20, 30, 40]),
                    Column::from_dates("i_date", vec![100, 200, 300, 400]),
                    Column::from_strings("i_flag", &["A", "B", "A", "C"]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "orders_t",
                vec![
                    Column::from_i64("o_key", vec![1, 2]),
                    Column::from_i32("o_val", vec![7, 9]),
                ],
            )
            .unwrap(),
        );
        c
    }

    fn bind_sql(sql: &str) -> SqlResult<BoundQuery> {
        bind(&parse(sql)?, &catalog())
    }

    #[test]
    fn resolves_plain_projection() {
        let q = bind_sql("SELECT i_key, i_qty * 2 AS dbl FROM items WHERE i_qty > 15").unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.conjuncts.len(), 1);
        match &q.select {
            BoundSelect::Plain(items) => {
                assert_eq!(items[0].name, "i_key");
                assert_eq!(items[1].name, "dbl");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dict_equality_binds_to_code() {
        let q = bind_sql("SELECT i_key FROM items WHERE i_flag = 'B'").unwrap();
        match &q.conjuncts[0] {
            Predicate::Cmp { value, .. } => assert_eq!(*value, 1), // "B" is code 1
            other => panic!("{other:?}"),
        }
        // Unknown string: never-true code.
        let q = bind_sql("SELECT i_key FROM items WHERE i_flag = 'ZZZ'").unwrap();
        match &q.conjuncts[0] {
            Predicate::Cmp { value, .. } => assert_eq!(*value, NEVER_CODE),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn like_prefix_expands_to_codes() {
        let q = bind_sql("SELECT i_key FROM items WHERE i_flag LIKE 'A%'").unwrap();
        match &q.conjuncts[0] {
            Predicate::Or(ps) => assert_eq!(ps.len(), 1),
            other => panic!("{other:?}"),
        }
        assert!(bind_sql("SELECT i_key FROM items WHERE i_flag LIKE '%A'").is_err());
        assert!(bind_sql("SELECT i_key FROM items WHERE i_qty LIKE 'A%'").is_err());
    }

    #[test]
    fn join_keys_resolve_and_orient() {
        let q = bind_sql("SELECT i_qty FROM items JOIN orders_t ON o_key = i_key WHERE o_val > 0")
            .unwrap();
        assert_eq!(q.joins[0].stream_key, "i_key");
        assert_eq!(q.joins[0].table_key, "o_key");
    }

    #[test]
    fn aggregate_select_layer() {
        let q = bind_sql(
            "SELECT i_flag, SUM(i_qty) AS total, COUNT(*) AS n FROM items \
             GROUP BY i_flag ORDER BY total DESC, i_flag",
        )
        .unwrap();
        match &q.select {
            BoundSelect::Aggregate {
                group,
                aggs,
                outputs,
            } => {
                assert_eq!(group.len(), 1);
                assert_eq!(group[0].lo, 0);
                assert_eq!(group[0].hi, 2);
                assert_eq!(aggs.len(), 2);
                assert!(aggs[1].arg.is_none(), "COUNT(*) has no arg");
                assert_eq!(outputs.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(matches!(q.order_by[1].source, OutputSource::Group(0)));
    }

    #[test]
    fn case_binds_to_indicator_arithmetic() {
        let q =
            bind_sql("SELECT SUM(CASE WHEN i_flag = 'A' THEN 1 ELSE 0 END) AS a_count FROM items")
                .unwrap();
        match &q.select {
            BoundSelect::Aggregate { aggs, .. } => {
                assert!(matches!(
                    aggs[0].arg.as_ref().unwrap(),
                    Expr::Indicator(_, MapOp::EqConst, 0)
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bind_errors_are_typed() {
        use crate::error::SqlErrorKind as K;
        for (sql, kind) in [
            ("SELECT x FROM nope", K::Bind),
            ("SELECT nope FROM items", K::Bind),
            ("SELECT i_key FROM items WHERE orders_t.i_key = 1", K::Bind),
            ("SELECT i_key, i_qty AS i_key FROM items", K::Bind),
            ("SELECT i_qty FROM items GROUP BY i_flag", K::Bind),
            ("SELECT SUM(i_qty) AS s FROM items ORDER BY nope", K::Bind),
            ("SELECT i_key FROM items WHERE i_flag < 'B'", K::Unsupported),
            ("SELECT i_flag + 1 AS x FROM items", K::Unsupported),
            (
                "SELECT i_key FROM items JOIN items ON i_key = i_key",
                K::Unsupported,
            ),
            ("SELECT SUM(SUM(i_qty)) AS s FROM items", K::Unsupported),
            ("SELECT i_key FROM items WHERE 1 = 1", K::Unsupported),
            ("SELECT i_key FROM items ORDER BY i_key", K::Unsupported),
        ] {
            let err = bind_sql(sql).unwrap_err();
            assert_eq!(err.kind, kind, "{sql}: {err}");
        }
    }

    #[test]
    fn exists_binds_to_semi_join() {
        let q = bind_sql(
            "SELECT COUNT(*) AS n FROM items \
             WHERE i_qty > 5 AND EXISTS (SELECT o_key FROM orders_t \
                                         WHERE o_key = i_key AND o_val > 8)",
        )
        .unwrap();
        let ex = q.exists.as_ref().unwrap();
        assert_eq!(ex.table, "orders_t");
        assert_eq!(ex.outer_key, "i_key");
        assert_eq!(ex.inner_key, "o_key");
        assert_eq!(ex.conjuncts.len(), 1);
        assert_eq!(q.conjuncts.len(), 1);
    }

    #[test]
    fn date_strings_bind_against_date_columns() {
        let q = bind_sql("SELECT i_key FROM items WHERE i_date < '1970-08-01'").unwrap();
        match &q.conjuncts[0] {
            Predicate::Cmp { value, .. } => assert_eq!(*value, 212),
            other => panic!("{other:?}"),
        }
        assert!(bind_sql("SELECT i_key FROM items WHERE i_date < 'gibberish'").is_err());
    }
}
