//! End-to-end runtime tests: small queries executed under every model on
//! every driver profile, validated against host-computed references.

use adamant_core::executor::QueryInputs;
use adamant_core::prelude::*;
use adamant_device::device::DeviceId;
use adamant_device::error::DeviceError;
use adamant_device::profiles::DeviceProfile;
use adamant_device::sdk::SdkKind;
use adamant_task::params::{AggFunc, BitmapOp, CmpOp, MapOp};
use adamant_task::primitive::PrimitiveKind;
use adamant_task::registry::TaskRegistry;

fn executor_with(profile: DeviceProfile) -> (Executor, DeviceId) {
    let tasks = TaskRegistry::with_defaults(&[
        SdkKind::Cuda,
        SdkKind::OpenCl,
        SdkKind::OpenMp,
        SdkKind::Host,
    ]);
    let mut exec = Executor::new(
        tasks,
        ExecutorConfig {
            chunk_rows: 100,
            ..Default::default()
        },
    );
    let dev = exec.add_profile(&profile).unwrap();
    (exec, dev)
}

/// Q6-like: sum(price * disc) over rows passing three filters.
fn q6_like_graph(dev: DeviceId) -> PrimitiveGraph {
    let mut b = GraphBuilder::new();
    let date = b.scan_input("lineitem", "date");
    let disc = b.scan_input("lineitem", "disc");
    let qty = b.scan_input("lineitem", "qty");
    let price = b.scan_input("lineitem", "price");
    let bm_date = b.add(
        PrimitiveKind::FilterBitmap,
        NodeParams::Filter {
            cmp: CmpOp::Between,
            value: 100,
            hi: 200,
        },
        vec![date],
        1,
        dev,
        "filter_date",
    );
    let bm_disc = b.add(
        PrimitiveKind::FilterBitmap,
        NodeParams::Filter {
            cmp: CmpOp::Between,
            value: 5,
            hi: 7,
        },
        vec![disc],
        1,
        dev,
        "filter_disc",
    );
    let bm_qty = b.add(
        PrimitiveKind::FilterBitmap,
        NodeParams::Filter {
            cmp: CmpOp::Lt,
            value: 24,
            hi: 0,
        },
        vec![qty],
        1,
        dev,
        "filter_qty",
    );
    let bm1 = b.add(
        PrimitiveKind::BitmapOp,
        NodeParams::Bitmap { op: BitmapOp::And },
        vec![bm_date[0], bm_disc[0]],
        1,
        dev,
        "and1",
    );
    let bm = b.add(
        PrimitiveKind::BitmapOp,
        NodeParams::Bitmap { op: BitmapOp::And },
        vec![bm1[0], bm_qty[0]],
        1,
        dev,
        "and2",
    );
    let rev = b.add(
        PrimitiveKind::Map,
        NodeParams::Map {
            op: MapOp::Mul,
            constant: 0,
        },
        vec![price, disc],
        1,
        dev,
        "mul",
    );
    let sel = b.add(
        PrimitiveKind::Materialize,
        NodeParams::None,
        vec![rev[0], bm[0]],
        1,
        dev,
        "materialize",
    );
    let sum = b.add(
        PrimitiveKind::AggBlock,
        NodeParams::AggBlock { agg: AggFunc::Sum },
        vec![sel[0]],
        1,
        dev,
        "sum",
    );
    b.output("revenue", sum[0]);
    b.build().unwrap()
}

fn q6_inputs(n: usize) -> (QueryInputs, i64) {
    let (inputs, expected, _) = q6_inputs_full(n);
    (inputs, expected)
}

fn q6_inputs_full(n: usize) -> (QueryInputs, i64, i64) {
    let date: Vec<i64> = (0..n).map(|i| (i * 7 % 365) as i64).collect();
    let disc: Vec<i64> = (0..n).map(|i| (i % 11) as i64).collect();
    let qty: Vec<i64> = (0..n).map(|i| (i * 3 % 50) as i64).collect();
    let price: Vec<i64> = (0..n).map(|i| (1000 + i * 13 % 9000) as i64).collect();
    let mut expected = 0i64;
    let mut selected = 0i64;
    for i in 0..n {
        if (100..=200).contains(&date[i]) && (5..=7).contains(&disc[i]) && qty[i] < 24 {
            expected += price[i] * disc[i];
            selected += 1;
        }
    }
    let mut inputs = QueryInputs::new();
    inputs.bind("date", date);
    inputs.bind("disc", disc);
    inputs.bind("qty", qty);
    inputs.bind("price", price);
    (inputs, expected, selected)
}

#[test]
fn q6_like_all_models_all_profiles() {
    let n = 1000;
    for profile in [
        DeviceProfile::cuda_rtx2080ti(),
        DeviceProfile::opencl_rtx2080ti(),
        DeviceProfile::opencl_cpu_i7(),
        DeviceProfile::openmp_cpu_i7(),
    ] {
        for model in ExecutionModel::ALL {
            let (mut exec, dev) = executor_with(profile.clone());
            let graph = q6_like_graph(dev);
            let (inputs, expected, selected) = q6_inputs_full(n);
            let (out, stats) = exec.run(&graph, &inputs, model).unwrap();
            let acc = out.i64_column("revenue");
            assert_eq!(acc[0], expected, "model {model} on {} wrong", profile.name);
            assert_eq!(acc[1], selected, "row count mismatch");
            assert!(stats.total_ns > 0.0);
            if model != ExecutionModel::OperatorAtATime {
                assert_eq!(stats.chunks_processed, 10);
            }
        }
    }
}

#[test]
fn chunked_models_agree_with_oaat() {
    let (inputs, _) = q6_inputs(777); // ragged final chunk
    let mut results = Vec::new();
    for model in ExecutionModel::ALL {
        let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
        let graph = q6_like_graph(dev);
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        results.push(out.i64_column("revenue").to_vec());
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn join_query_across_models() {
    // build: keys 0..50 with payload key*100; probe: 200 rows of key i%60.
    let dev_id = DeviceId(0);
    let build_graph = |dev: DeviceId| {
        let mut b = GraphBuilder::new();
        let bk = b.scan_input("build", "bk");
        let bp = b.scan_input("build", "bp");
        let ht = b.add(
            PrimitiveKind::HashBuild,
            NodeParams::HashBuild {
                payload_cols: 1,
                expected: 64,
            },
            vec![bk, bp],
            1,
            dev,
            "build",
        );
        let pk = b.scan_input("probe", "pk");
        let probe = b.add(
            PrimitiveKind::HashProbe,
            NodeParams::HashProbe { payload_outs: 1 },
            vec![pk, ht[0]],
            2,
            dev,
            "probe",
        );
        let agg = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![probe[1]],
            1,
            dev,
            "sum_payload",
        );
        b.output("sum", agg[0]);
        b.build().unwrap()
    };
    let bk: Vec<i64> = (0..50).collect();
    let bp: Vec<i64> = (0..50).map(|k| k * 100).collect();
    let pk: Vec<i64> = (0..200).map(|i| (i % 60) as i64).collect();
    let expected: i64 = pk.iter().filter(|&&k| k < 50).map(|&k| k * 100).sum();

    for model in ExecutionModel::ALL {
        let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
        assert_eq!(dev, dev_id);
        let graph = build_graph(dev);
        let mut inputs = QueryInputs::new();
        inputs.bind("bk", bk.clone());
        inputs.bind("bp", bp.clone());
        inputs.bind("pk", pk.clone());
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        assert_eq!(out.i64_column("sum")[0], expected, "model {model}");
    }
}

#[test]
fn escaped_positions_are_rebased_globally() {
    // Filter positions as the graph output, streamed in chunks of 100:
    // chunk-relative positions must come back rebased.
    let (mut exec, dev) = executor_with(DeviceProfile::opencl_cpu_i7());
    let mut b = GraphBuilder::new();
    let x = b.scan_input("t", "x");
    let pos = b.add(
        PrimitiveKind::FilterPosition,
        NodeParams::Filter {
            cmp: CmpOp::Eq,
            value: 1,
            hi: 0,
        },
        vec![x],
        1,
        dev,
        "filter_pos",
    );
    b.output("positions", pos[0]);
    let graph = b.build().unwrap();
    let data: Vec<i64> = (0..350).map(|i| (i % 150 == 0) as i64).collect();
    let expected: Vec<u32> = vec![0, 150, 300];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data);
    let (out, stats) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert_eq!(out.get("positions").unwrap().as_u32().unwrap(), &expected);
    assert_eq!(stats.chunks_processed, 4);
}

#[test]
fn oaat_ooms_where_chunked_survives() {
    // The paper's Fig. 7 point: whole-input execution exceeds device
    // memory; chunked execution of the same query succeeds.
    let profile = DeviceProfile::cuda_rtx2080ti().with_memory(200_000, 100_000);
    let n = 10_000; // 4 columns * 80 KB = 320 KB > 200 KB device
    let (inputs, expected) = q6_inputs(n);

    let (mut exec, dev) = executor_with(profile.clone());
    let graph = q6_like_graph(dev);
    let err = exec
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::Device(DeviceError::OutOfMemory { .. })),
        "expected OOM, got {err}"
    );

    let (mut exec, dev) = executor_with(profile);
    let graph = q6_like_graph(dev);
    let (out, _) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert_eq!(out.i64_column("revenue")[0], expected);
}

#[test]
fn overlap_reduces_modeled_time() {
    let n = 20_000;
    let (inputs, _) = q6_inputs(n);
    let run_model = |model: ExecutionModel| {
        let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
        exec.set_chunk_rows(1000);
        let graph = q6_like_graph(dev);
        let (_, stats) = exec.run(&graph, &inputs, model).unwrap();
        stats
    };
    let chunked = run_model(ExecutionModel::Chunked);
    let pipelined = run_model(ExecutionModel::Pipelined);
    let four_phase = run_model(ExecutionModel::FourPhasePipelined);
    assert!(
        pipelined.total_ns < chunked.total_ns,
        "pipelined {} !< chunked {}",
        pipelined.total_ns,
        chunked.total_ns
    );
    assert!(
        four_phase.total_ns < chunked.total_ns,
        "4-phase {} !< chunked {}",
        four_phase.total_ns,
        chunked.total_ns
    );
}

#[test]
fn stats_accounting_is_consistent() {
    let (inputs, _) = q6_inputs(5_000);
    let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
    let graph = q6_like_graph(dev);
    let (_, stats) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert!(stats.bytes_h2d > 0);
    assert!(stats.bytes_d2h > 0); // final result retrieval
    assert!(stats.transfer_ns > 0.0);
    assert!(stats.compute_ns > 0.0);
    assert!(stats.primitive_total_ns() <= stats.total_ns);
    assert!(stats.overhead_ns() > 0.0);
    assert_eq!(stats.pipelines, 1);
    assert!(!stats.peak_device_bytes.is_empty());
    // Kernel time is attributed per node label; fused chains carry their
    // member labels inside `fused(...)`.
    assert!(stats
        .per_primitive_ns
        .keys()
        .any(|k| k.contains("materialize")));
    assert!(stats.per_primitive_ns.keys().any(|k| k.contains("sum")));
}

#[test]
fn missing_input_is_reported() {
    let (mut exec, dev) = executor_with(DeviceProfile::opencl_cpu_i7());
    let graph = q6_like_graph(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("date", vec![1]);
    let err = exec
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(matches!(err, ExecError::MissingInput(_)));
}

#[test]
fn scan_length_mismatch_is_reported() {
    let (mut exec, dev) = executor_with(DeviceProfile::opencl_cpu_i7());
    let graph = q6_like_graph(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("date", vec![1, 2]);
    inputs.bind("disc", vec![1]);
    inputs.bind("qty", vec![1, 2]);
    inputs.bind("price", vec![1, 2]);
    let err = exec
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(matches!(err, ExecError::InputLengthMismatch { .. }));
}

#[test]
fn sort_rejected_in_multichunk_stream() {
    let (mut exec, dev) = executor_with(DeviceProfile::opencl_cpu_i7());
    let mut b = GraphBuilder::new();
    let x = b.scan_input("t", "x");
    let perm = b.add(
        PrimitiveKind::Sort,
        NodeParams::Sort { desc_mask: 0 },
        vec![x],
        1,
        dev,
        "sort",
    );
    b.output("perm", perm[0]);
    let graph = b.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", (0..500).rev().collect());
    // 5 chunks of 100 -> rejected.
    let err = exec
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(matches!(err, ExecError::InvalidGraph(_)));
    // Single-chunk OAAT is fine.
    let (out, _) = exec
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap();
    let perm = out.get("perm").unwrap().as_u32().unwrap();
    assert_eq!(perm[0], 499);
    assert_eq!(perm[499], 0);
}

#[test]
fn empty_input_produces_empty_outputs() {
    let (mut exec, dev) = executor_with(DeviceProfile::opencl_cpu_i7());
    let mut b = GraphBuilder::new();
    let x = b.scan_input("t", "x");
    let pos = b.add(
        PrimitiveKind::FilterPosition,
        NodeParams::Filter {
            cmp: CmpOp::Gt,
            value: 0,
            hi: 0,
        },
        vec![x],
        1,
        dev,
        "f",
    );
    b.output("positions", pos[0]);
    let graph = b.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![]);
    let (out, stats) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert!(out.get("positions").unwrap().is_empty());
    assert_eq!(stats.chunks_processed, 0);
}

#[test]
fn variant_selection_runs() {
    let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
    let mut b = GraphBuilder::new();
    let x = b.scan_input("t", "x");
    let bm = b.add_variant(
        PrimitiveKind::FilterBitmap,
        NodeParams::Filter {
            cmp: CmpOp::Ge,
            value: 50,
            hi: 0,
        },
        vec![x],
        1,
        dev,
        Some("branchless".to_string()),
        "filter_branchless",
    );
    let m = b.add(
        PrimitiveKind::Materialize,
        NodeParams::None,
        vec![x, bm[0]],
        1,
        dev,
        "mat",
    );
    let s = b.add(
        PrimitiveKind::AggBlock,
        NodeParams::AggBlock {
            agg: AggFunc::Count,
        },
        vec![m[0]],
        1,
        dev,
        "count",
    );
    b.output("count", s[0]);
    let graph = b.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", (0..100).collect());
    let (out, _) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert_eq!(out.i64_column("count")[0], 50);
}

#[test]
fn unknown_variant_errors() {
    let (mut exec, dev) = executor_with(DeviceProfile::cuda_rtx2080ti());
    let mut b = GraphBuilder::new();
    let x = b.scan_input("t", "x");
    let bm = b.add_variant(
        PrimitiveKind::FilterBitmap,
        NodeParams::Filter {
            cmp: CmpOp::Ge,
            value: 0,
            hi: 0,
        },
        vec![x],
        1,
        dev,
        Some("does-not-exist".to_string()),
        "f",
    );
    b.output("bm", bm[0]);
    let graph = b.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![1, 2, 3]);
    let err = exec
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(matches!(err, ExecError::NoImplementation { .. }));
}

#[test]
fn cross_device_routing_works() {
    // Build on the CPU device, probe on the GPU device: the hub must move
    // the hash table across.
    let tasks = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::OpenCl]);
    let mut exec = Executor::new(
        tasks,
        ExecutorConfig {
            chunk_rows: 64,
            ..Default::default()
        },
    );
    let cpu = exec.add_profile(&DeviceProfile::opencl_cpu_i7()).unwrap();
    let gpu = exec.add_profile(&DeviceProfile::cuda_rtx2080ti()).unwrap();

    let mut b = GraphBuilder::new();
    let bk = b.scan_input("build", "bk");
    let ht = b.add(
        PrimitiveKind::HashBuild,
        NodeParams::HashBuild {
            payload_cols: 0,
            expected: 32,
        },
        vec![bk],
        1,
        cpu,
        "build@cpu",
    );
    let pk = b.scan_input("probe", "pk");
    let semi = b.add(
        PrimitiveKind::HashProbeSemi,
        NodeParams::None,
        vec![pk, ht[0]],
        1,
        gpu,
        "semi@gpu",
    );
    let mat = b.add(
        PrimitiveKind::Materialize,
        NodeParams::None,
        vec![pk, semi[0]],
        1,
        gpu,
        "mat@gpu",
    );
    let cnt = b.add(
        PrimitiveKind::AggBlock,
        NodeParams::AggBlock {
            agg: AggFunc::Count,
        },
        vec![mat[0]],
        1,
        gpu,
        "count@gpu",
    );
    b.output("matches", cnt[0]);
    let graph = b.build().unwrap();

    let mut inputs = QueryInputs::new();
    inputs.bind("bk", (0..40).collect());
    inputs.bind("pk", (0..100).collect());
    let (out, _) = exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert_eq!(out.i64_column("matches")[0], 40);
}
