//! # adamant-core
//!
//! The **runtime layer** of ADAMANT (paper §III-C and §IV) — the paper's
//! primary contribution. It interprets a [`graph::PrimitiveGraph`] (a query
//! plan over task-layer primitives, annotated with target devices), routes
//! data through the device interfaces, and executes the plan under one of
//! the execution models:
//!
//! * **operator-at-a-time** — whole inputs resident on the device (the
//!   baseline whose scalability Fig. 7 criticizes);
//! * **chunked** (Algorithm 1) — streams fixed-size chunks through each
//!   pipeline, bounding device memory;
//! * **pipelined** (Algorithm 2) — chunked plus a separate transfer thread
//!   overlapping copy with compute, synchronized by the
//!   `fetched_until`/`processed_until` counters;
//! * **4-phase** (Algorithm 3) — stage/copy-compute/delete phases with dual
//!   pinned staging buffers, in chunked and pipelined flavors.
//!
//! The executor produces exact query results (kernels really run) together
//! with an [`stats::ExecutionStats`] whose times come from the plugged
//! devices' cost models — the quantities the paper's figures report.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod executor;
pub mod fusion;
pub mod graph;
pub mod hub;
pub mod models;
pub mod pipeline;
pub mod residency;
pub mod result;
pub mod stats;
pub mod timeline;

pub use checkpoint::{CheckpointConfig, QueryCheckpoint};
pub use error::ExecError;
pub use executor::{CancelToken, Executor, ExecutorConfig, QueryInputs, RetryPolicy};
pub use fusion::{fuse_graph, FusionReport};
pub use graph::{
    DataRef, FusedOperand, FusedStageSpec, GraphBuilder, NodeId, NodeParams, PrimitiveGraph,
    PrimitiveNode,
};
pub use models::ExecutionModel;
pub use pipeline::{Pipeline, PipelineSet};
pub use residency::{ResidencyCache, ResidencyConfig, ResidencyCounters};
pub use result::{OutputData, QueryOutput};
pub use stats::ExecutionStats;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::checkpoint::{CheckpointConfig, QueryCheckpoint};
    pub use crate::error::ExecError;
    pub use crate::executor::{CancelToken, Executor, ExecutorConfig, QueryInputs, RetryPolicy};
    pub use crate::fusion::{fuse_graph, FusionReport};
    pub use crate::graph::{
        DataRef, FusedOperand, FusedStageSpec, GraphBuilder, NodeId, NodeParams, PrimitiveGraph,
        PrimitiveNode,
    };
    pub use crate::models::ExecutionModel;
    pub use crate::pipeline::{Pipeline, PipelineSet};
    pub use crate::residency::{ResidencyCache, ResidencyConfig, ResidencyCounters};
    pub use crate::result::{OutputData, QueryOutput};
    pub use crate::stats::ExecutionStats;
}
