//! Query outputs.

use adamant_device::buffer::BufferData;
use adamant_storage::bitmap::Bitmap;
use adamant_task::hashtable::AggHashTable;
use adamant_task::params::AggFunc;
use std::collections::BTreeMap;

/// One output value of a query, retrieved back to the host.
#[derive(Clone, Debug)]
pub enum OutputData {
    /// Numeric column.
    I64(Vec<i64>),
    /// Position list.
    U32(Vec<u32>),
    /// Bitmap (packed words; the logical row count is query-dependent).
    BitWords(Vec<u64>),
    /// An aggregation table exported as dense columns.
    AggTable {
        /// Group keys in first-seen order.
        keys: Vec<i64>,
        /// Carried payload columns.
        payloads: Vec<Vec<i64>>,
        /// Aggregate state columns.
        states: Vec<Vec<i64>>,
        /// The functions each state column belongs to.
        funcs: Vec<AggFunc>,
    },
    /// Raw bytes (custom structures).
    Raw(Vec<u8>),
}

impl OutputData {
    /// Converts retrieved device data into host form.
    pub fn from_buffer(data: BufferData) -> OutputData {
        match data {
            BufferData::I64(v) => OutputData::I64(v),
            BufferData::F64(v) => OutputData::I64(v.into_iter().map(|x| x as i64).collect()),
            BufferData::U32(v) => OutputData::U32(v),
            BufferData::BitWords(v) => OutputData::BitWords(v),
            BufferData::Raw(v) => OutputData::Raw(v),
            BufferData::Generic(g) => {
                if let Some(t) = g.as_any().downcast_ref::<AggHashTable>() {
                    let (keys, payloads, states) = t.export();
                    OutputData::AggTable {
                        keys,
                        payloads,
                        states,
                        funcs: t.agg_funcs().to_vec(),
                    }
                } else {
                    OutputData::Raw(Vec::new())
                }
            }
        }
    }

    /// The numeric column, if this output is one.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            OutputData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The position list, if this output is one.
    pub fn as_u32(&self) -> Option<&[u32]> {
        match self {
            OutputData::U32(v) => Some(v),
            _ => None,
        }
    }

    /// Interprets a bitmap output over `rows` rows.
    pub fn as_bitmap(&self, rows: usize) -> Option<Bitmap> {
        match self {
            OutputData::BitWords(words) => Some(Bitmap::from_words(words.clone(), rows)),
            _ => None,
        }
    }

    /// Number of rows / entries in the output.
    pub fn len(&self) -> usize {
        match self {
            OutputData::I64(v) => v.len(),
            OutputData::U32(v) => v.len(),
            OutputData::BitWords(v) => v.len() * 64,
            OutputData::AggTable { keys, .. } => keys.len(),
            OutputData::Raw(v) => v.len(),
        }
    }

    /// True when the output holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Named outputs of one query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryOutput {
    columns: BTreeMap<String, OutputData>,
}

impl QueryOutput {
    /// Creates an empty output set.
    pub fn new() -> Self {
        QueryOutput::default()
    }

    /// Inserts an output.
    pub fn insert(&mut self, name: impl Into<String>, data: OutputData) {
        self.columns.insert(name.into(), data);
    }

    /// Looks up an output by name.
    pub fn get(&self, name: &str) -> Option<&OutputData> {
        self.columns.get(name)
    }

    /// A numeric output column by name (panics with a clear message if
    /// missing or mistyped — convenience for tests and examples).
    pub fn i64_column(&self, name: &str) -> &[i64] {
        self.get(name)
            .unwrap_or_else(|| panic!("no output named `{name}`"))
            .as_i64()
            .unwrap_or_else(|| panic!("output `{name}` is not a numeric column"))
    }

    /// Output names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when no outputs were produced.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_from_buffers() {
        let o = OutputData::from_buffer(BufferData::I64(vec![1, 2]));
        assert_eq!(o.as_i64(), Some(&[1i64, 2][..]));
        let o = OutputData::from_buffer(BufferData::U32(vec![5]));
        assert_eq!(o.as_u32(), Some(&[5u32][..]));
        let o = OutputData::from_buffer(BufferData::BitWords(vec![0b101]));
        let bm = o.as_bitmap(3).unwrap();
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn agg_table_conversion() {
        let mut t = AggHashTable::with_capacity(4, vec![AggFunc::Sum], 1);
        t.update(1, &[10], &[5]);
        t.update(1, &[10], &[6]);
        let o = OutputData::from_buffer(BufferData::Generic(Box::new(t)));
        match o {
            OutputData::AggTable {
                keys,
                payloads,
                states,
                funcs,
            } => {
                assert_eq!(keys, vec![1]);
                assert_eq!(payloads[0], vec![10]);
                assert_eq!(states[0], vec![11]);
                assert_eq!(funcs, vec![AggFunc::Sum]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_output_accessors() {
        let mut q = QueryOutput::new();
        q.insert("revenue", OutputData::I64(vec![42]));
        assert_eq!(q.i64_column("revenue"), &[42]);
        assert_eq!(q.names(), vec!["revenue"]);
        assert!(q.get("nope").is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn missing_column_panics_clearly() {
        QueryOutput::new().i64_column("ghost");
    }
}
