//! Query checkpoints: consistent host-side snapshots of partial progress.
//!
//! Every heavyweight recovery path used to restart the query from row 0 —
//! a fault at 95% progress forfeited 95% of the work. A [`QueryCheckpoint`]
//! captures, at pipeline-breaker and chunk-interval boundaries, everything
//! needed to resume from the last consistent boundary instead:
//!
//! * the number of pipelines already completed;
//! * the in-progress pipeline's high-water scan offset (rows whose results
//!   are already host-accumulated) and the chunk count behind it;
//! * every host accumulation (cloned, with its contiguity watermark);
//! * host copies of every materialized breaker accumulator still resident
//!   on a device (retrieved over the verified transfer path, so capture
//!   pays real modeled D2H cost);
//! * a staging manifest naming what must be re-placed on survivors.
//!
//! Checkpoints are **device-agnostic**: no [`DeviceId`] appears in the
//! snapshot. On resume the post-re-placement graph annotation decides where
//! each entry lands, so a snapshot taken before a device died restores
//! cleanly onto whatever survivors remain. The whole snapshot is guarded by
//! an FNV-1a checksum over a canonical serialization; a snapshot that fails
//! [`QueryCheckpoint::validate`] (e.g. scripted corruption via
//! `FaultPlan::corrupt_checkpoint`) is discarded and recovery degrades to
//! the old full restart — never a wrong answer.
//!
//! [`DeviceId`]: adamant_device::device::DeviceId

use crate::graph::DataRef;
use crate::hub::HostAccum;
use adamant_device::buffer::BufferData;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Configuration of the checkpoint subsystem (disabled by default).
///
/// Capture sites are chunk boundaries (every
/// [`CheckpointConfig::chunk_interval`]-th chunk is *considered*) and
/// pipeline-breaker boundaries (always considered). A considered boundary
/// actually captures only when the cost-model policy agrees: the modeled
/// re-execution cost accumulated since the last snapshot must exceed the
/// estimated capture cost times [`CheckpointConfig::cost_factor`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointConfig {
    /// Master switch; `false` keeps the legacy restart-from-row-0 behavior.
    pub enabled: bool,
    /// Consider a snapshot every `chunk_interval` streamed chunks (minimum
    /// 1 = every chunk boundary).
    pub chunk_interval: usize,
    /// Capture when `work_since_last_snapshot > capture_cost_estimate *
    /// cost_factor`. Lower values checkpoint more eagerly; `0.0` captures
    /// at every considered boundary.
    pub cost_factor: f64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: false,
            chunk_interval: 1,
            cost_factor: 2.0,
        }
    }
}

impl CheckpointConfig {
    /// An enabled config with the default interval and cost factor.
    pub fn enabled() -> Self {
        CheckpointConfig {
            enabled: true,
            ..CheckpointConfig::default()
        }
    }

    /// Sets the chunk interval between considered snapshot boundaries.
    pub fn chunk_interval(mut self, every: usize) -> Self {
        self.chunk_interval = every.max(1);
        self
    }

    /// Sets the re-execution-cost-to-capture-cost factor.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn cost_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "cost factor must be finite and >= 0"
        );
        self.cost_factor = factor;
        self
    }
}

/// One consistent snapshot of query progress, host-side and checksummed.
#[derive(Debug)]
pub struct QueryCheckpoint {
    /// Pipelines fully completed when the snapshot was taken; resume skips
    /// them entirely.
    pub pipelines_done: usize,
    /// Scan rows of the in-progress streaming pipeline whose results are
    /// inside the snapshot (0 when captured at a pipeline boundary). The
    /// resumed pipeline streams from this offset.
    pub resume_offset: usize,
    /// Streamed chunks whose results the snapshot holds (what a resume
    /// skips re-executing).
    pub chunks_done: usize,
    /// Host accumulations: `(ref, cloned accumulation, contiguity
    /// watermark)`, sorted by ref for deterministic checksums.
    pub host: Vec<(DataRef, HostAccum, usize)>,
    /// Host copies of device-resident breaker accumulators, sorted by ref.
    /// Device-agnostic: the resume re-places each onto the producing node's
    /// post-recovery device.
    pub resident: Vec<(DataRef, BufferData)>,
    /// Human-readable staging manifest: what the resume must re-place.
    pub manifest: Vec<String>,
    /// Total snapshot payload bytes (host accumulations + resident copies).
    pub bytes: u64,
    /// FNV-1a checksum over the canonical serialization of everything
    /// above; [`QueryCheckpoint::validate`] recomputes and compares.
    pub checksum: u64,
}

fn eat(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

fn eat_ref(h: &mut u64, r: &DataRef) {
    match r {
        DataRef::Input(i) => {
            eat(h, &[0]);
            eat(h, &(*i as u64).to_le_bytes());
            eat(h, &0u64.to_le_bytes());
        }
        DataRef::Output { node, port } => {
            eat(h, &[1]);
            eat(h, &(node.0 as u64).to_le_bytes());
            eat(h, &(*port as u64).to_le_bytes());
        }
    }
}

impl QueryCheckpoint {
    /// Computes the canonical FNV-1a checksum of the snapshot's content
    /// (everything except the stored `checksum` itself).
    pub fn compute_checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        eat(&mut h, &(self.pipelines_done as u64).to_le_bytes());
        eat(&mut h, &(self.resume_offset as u64).to_le_bytes());
        eat(&mut h, &(self.chunks_done as u64).to_le_bytes());
        eat(&mut h, &(self.host.len() as u64).to_le_bytes());
        for (r, accum, watermark) in &self.host {
            eat_ref(&mut h, r);
            eat(&mut h, &(*watermark as u64).to_le_bytes());
            eat(&mut h, &accum.to_buffer().checksum().to_le_bytes());
        }
        eat(&mut h, &(self.resident.len() as u64).to_le_bytes());
        for (r, payload) in &self.resident {
            eat_ref(&mut h, r);
            eat(&mut h, &payload.checksum().to_le_bytes());
        }
        eat(&mut h, &(self.manifest.len() as u64).to_le_bytes());
        for entry in &self.manifest {
            eat(&mut h, entry.as_bytes());
            eat(&mut h, &[0xff]);
        }
        h
    }

    /// Seals the snapshot: stores the canonical checksum and the payload
    /// byte total. Called once by the capture path after assembly.
    pub fn seal(&mut self) {
        self.bytes = self
            .host
            .iter()
            .map(|(_, a, _)| a.to_buffer().byte_len())
            .chain(self.resident.iter().map(|(_, p)| p.byte_len()))
            .sum();
        self.checksum = self.compute_checksum();
    }

    /// Whether the snapshot still matches its sealed checksum. A resume
    /// only trusts a validating snapshot; anything else degrades to a full
    /// restart.
    pub fn validate(&self) -> bool {
        self.compute_checksum() == self.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn sample() -> QueryCheckpoint {
        let mut c = QueryCheckpoint {
            pipelines_done: 1,
            resume_offset: 512,
            chunks_done: 2,
            host: vec![(
                DataRef::Output {
                    node: NodeId(3),
                    port: 0,
                },
                HostAccum::Numeric(vec![1, 2, 3]),
                512,
            )],
            resident: vec![(
                DataRef::Output {
                    node: NodeId(1),
                    port: 0,
                },
                BufferData::I64(vec![10, 20]),
            )],
            manifest: vec!["resident Output { node: NodeId(1), port: 0 }".into()],
            bytes: 0,
            checksum: 0,
        };
        c.seal();
        c
    }

    #[test]
    fn sealed_snapshot_validates() {
        let c = sample();
        assert!(c.validate());
        assert_eq!(c.bytes, 3 * 8 + 2 * 8);
    }

    #[test]
    fn content_tamper_fails_validation() {
        let mut c = sample();
        match &mut c.resident[0].1 {
            BufferData::I64(v) => v[0] ^= 1,
            _ => unreachable!(),
        }
        assert!(!c.validate());
    }

    #[test]
    fn checksum_tamper_fails_validation() {
        let mut c = sample();
        c.checksum ^= 1;
        assert!(!c.validate());
    }

    #[test]
    fn metadata_is_part_of_the_checksum() {
        let mut c = sample();
        c.resume_offset += 1;
        assert!(!c.validate());
        let mut c = sample();
        c.manifest.push("extra".into());
        assert!(!c.validate());
    }

    #[test]
    fn config_defaults_are_off_and_builders_clamp() {
        let d = CheckpointConfig::default();
        assert!(!d.enabled);
        let c = CheckpointConfig::enabled()
            .chunk_interval(0)
            .cost_factor(0.5);
        assert!(c.enabled);
        assert_eq!(c.chunk_interval, 1);
        assert_eq!(c.cost_factor, 0.5);
    }
}
