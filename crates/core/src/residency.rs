//! Cross-query device-residency cache.
//!
//! Every run used to re-ship its input columns to the device from scratch
//! (`load_whole_input` places the whole column per run), so steady-state
//! traffic paid the cold transfer cost forever. The [`ResidencyCache`] pins
//! hot input columns device-side *across* queries: the hub consults it
//! before any transfer, serves hits without touching the bus, and stages
//! chunks out of a pinned column with a device-internal copy instead of a
//! fresh host→device upload.
//!
//! # Pin / evict lifecycle
//!
//! * **Pin** — on a miss the hub asks the cache to reserve space
//!   ([`ResidencyCache::begin_pin`]). The reservation is charged against the
//!   device pool's *admission* ledger — the same per-device budget the
//!   multi-query scheduler's `ReservationLedger` draws from — so cache pins
//!   and admitted queries can never jointly overcommit a device. The hub
//!   then uploads the column through its checksummed `place_verified` path
//!   and commits ([`ResidencyCache::commit_pin`]) or aborts
//!   ([`ResidencyCache::abort_pin`]) the entry.
//! * **Hit** — a valid entry (fingerprint match, buffer still in the pool)
//!   is served in place; nothing crosses the bus.
//! * **Evict** — pins are evicted in LRU order (ties broken by the lowest
//!   modeled re-transfer cost, then name) whenever the per-device budget or
//!   the admission ledger needs room. Eviction frees the device buffer and
//!   releases the admission charge, so admission can always reclaim pinned
//!   bytes — pins yield, queries are never starved (no deadlock).
//! * **Invalidate** — fault recovery (rollback of a failed attempt on a
//!   device, quarantine, circuit-breaker trips) drops the device's entries
//!   instead of trusting — or leaking — them.
//!
//! Cache-owned buffer ids live in their own id range (`1 << 48` up) so they
//! can never collide with the hub's per-run ids, which restart at 1 each
//! run.

use adamant_device::buffer::BufferId;
use adamant_device::device::DeviceId;
use adamant_device::registry::DeviceRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// First buffer id the cache allocates from — far above any per-run hub id.
const CACHE_ID_BASE: u64 = 1 << 48;

/// Configuration for the [`ResidencyCache`].
#[derive(Clone, Copy, Debug)]
pub struct ResidencyConfig {
    max_bytes_per_device: u64,
}

impl ResidencyConfig {
    /// A cache allowed to pin up to `max_bytes_per_device` bytes of input
    /// columns on each device.
    pub fn new(max_bytes_per_device: u64) -> Self {
        ResidencyConfig {
            max_bytes_per_device,
        }
    }

    /// The per-device pin budget in bytes.
    pub fn max_bytes_per_device(&self) -> u64 {
        self.max_bytes_per_device
    }
}

/// Counters the executor drains into `ExecutionStats` after each run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResidencyCounters {
    /// Inputs served from a pin created by an *earlier* run (first touch per
    /// run per `(device, input)`).
    pub hits: usize,
    /// First-touch lookups that found no usable pin.
    pub misses: usize,
    /// Entries evicted to make room (budget or admission pressure).
    pub evictions: usize,
    /// Entries dropped by fault recovery or staleness detection.
    pub invalidations: usize,
    /// Modeled host→device nanoseconds the cache avoided (whole-input hits
    /// and chunk stagings served device-internally).
    pub saved_transfer_ns: f64,
}

#[derive(Clone, Debug)]
struct Entry {
    id: BufferId,
    bytes: u64,
    /// Input fingerprint: element count + FNV-1a over the column bytes. A
    /// rebound input with different contents must never serve a stale hit.
    len: usize,
    fingerprint: u64,
    /// Recency stamp for LRU ordering.
    last_used: u64,
    /// Modeled cost of re-uploading this column, the eviction tie-breaker:
    /// among equally old entries the cheapest to restore goes first.
    transfer_cost_ns: f64,
    /// Generation (run number) the entry was pinned in — hits only count
    /// once the pin survives into a later run.
    pinned_gen: u64,
}

/// FNV-1a over the little-endian bytes of a column (deterministic, cheap,
/// no dependencies).
fn fingerprint(column: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in column {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The cross-query device-residency cache. Owned by the executor between
/// runs and lent to the hub during one; see the module docs for the
/// lifecycle.
#[derive(Debug)]
pub struct ResidencyCache {
    config: ResidencyConfig,
    next_id: u64,
    seq: u64,
    generation: u64,
    entries: BTreeMap<(DeviceId, String), Entry>,
    /// `(device, input)` pairs already counted toward hit/miss this run.
    seen_this_run: BTreeSet<(DeviceId, String)>,
    /// Buffers freed by eviction/invalidation since the last
    /// [`ResidencyCache::take_freed`] drain — the hub purges any per-run
    /// residency entries still pointing at them.
    freed: Vec<(DeviceId, BufferId)>,
    counters: ResidencyCounters,
    pinned: BTreeMap<DeviceId, u64>,
}

impl ResidencyCache {
    /// Creates an empty cache with the given per-device budget.
    pub fn new(config: ResidencyConfig) -> Self {
        ResidencyCache {
            config,
            next_id: CACHE_ID_BASE,
            seq: 0,
            generation: 0,
            entries: BTreeMap::new(),
            seen_this_run: BTreeSet::new(),
            freed: Vec::new(),
            counters: ResidencyCounters::default(),
            pinned: BTreeMap::new(),
        }
    }

    /// The configured budget.
    pub fn config(&self) -> ResidencyConfig {
        self.config
    }

    /// Number of pinned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently pinned on `device`.
    pub fn pinned_bytes_on(&self, device: DeviceId) -> u64 {
        self.pinned.get(&device).copied().unwrap_or(0)
    }

    /// Bytes currently pinned across all devices.
    pub fn total_pinned_bytes(&self) -> u64 {
        self.pinned.values().sum()
    }

    /// Marks the start of a new run: bumps the hit-accounting generation and
    /// forgets which inputs this run already touched.
    pub fn begin_run(&mut self) {
        self.generation += 1;
        self.seen_this_run.clear();
    }

    /// Looks up a valid pin of `(device, name)` matching `column`,
    /// counting a cross-run hit or a miss on the first touch per run.
    ///
    /// A stale entry (fingerprint mismatch, or its buffer vanished from the
    /// pool — e.g. a device reset) is invalidated on the spot, releasing its
    /// admission charge, and reported as a miss.
    pub fn lookup(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        name: &str,
        column: &[i64],
    ) -> Option<BufferId> {
        let key = (device, name.to_string());
        let valid = match self.entries.get(&key) {
            Some(e) => {
                e.len == column.len()
                    && e.fingerprint == fingerprint(column)
                    && devices
                        .get(device)
                        .map(|d| d.pool().contains(e.id))
                        .unwrap_or(false)
            }
            None => false,
        };
        if !valid && self.entries.contains_key(&key) {
            self.remove_entry(devices, &key, true);
        }
        let first_touch = self.seen_this_run.insert(key.clone());
        if !valid {
            if first_touch {
                self.counters.misses += 1;
            }
            return None;
        }
        self.seq += 1;
        let gen = self.generation;
        let entry = self.entries.get_mut(&key).expect("validated above");
        entry.last_used = self.seq;
        if first_touch && entry.pinned_gen < gen {
            self.counters.hits += 1;
        }
        Some(entry.id)
    }

    /// Records modeled host→device nanoseconds a cache-served transfer
    /// avoided.
    pub fn note_saved_transfer_ns(&mut self, ns: f64) {
        self.counters.saved_transfer_ns += ns;
    }

    /// Bytes a pin of `(device, name)` matching `column` holds — 0 when
    /// absent or stale. Read-only (no hit/miss accounting, no invalidation);
    /// placement uses it to discount transfer cost for cache-warm devices.
    pub fn resident_bytes(&self, device: DeviceId, name: &str, column: &[i64]) -> u64 {
        match self.entries.get(&(device, name.to_string())) {
            Some(e) if e.len == column.len() && e.fingerprint == fingerprint(column) => e.bytes,
            _ => 0,
        }
    }

    /// Reserves room to pin `column` on `device`: evicts LRU entries until
    /// the column fits the per-device budget *and* the pool's admission
    /// ledger accepts the charge, then allocates a cache-owned buffer id.
    ///
    /// Returns `None` (bypass — the caller uploads uncached) when the column
    /// exceeds the budget outright or admission cannot take it even with
    /// every own pin evicted. On `Some(id)` the admission charge is held;
    /// the caller must follow up with [`ResidencyCache::commit_pin`] or
    /// [`ResidencyCache::abort_pin`].
    pub fn begin_pin(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        column: &[i64],
    ) -> Option<BufferId> {
        let bytes = (column.len() as u64) * 8;
        if bytes == 0 || bytes > self.config.max_bytes_per_device {
            return None;
        }
        while self.pinned_bytes_on(device) + bytes > self.config.max_bytes_per_device {
            if self.evict_lru_on(devices, device) == 0 {
                return None;
            }
        }
        loop {
            let reserved = devices
                .get_mut(device)
                .ok()?
                .pool_mut()
                .admission_reserve(bytes);
            match reserved {
                Ok(()) => break,
                Err(_) => {
                    if self.evict_lru_on(devices, device) == 0 {
                        return None;
                    }
                }
            }
        }
        self.next_id += 1;
        Some(BufferId(self.next_id))
    }

    /// Commits a pin whose upload succeeded.
    pub fn commit_pin(
        &mut self,
        device: DeviceId,
        name: &str,
        column: &[i64],
        id: BufferId,
        transfer_cost_ns: f64,
    ) {
        let bytes = (column.len() as u64) * 8;
        self.seq += 1;
        self.entries.insert(
            (device, name.to_string()),
            Entry {
                id,
                bytes,
                len: column.len(),
                fingerprint: fingerprint(column),
                last_used: self.seq,
                transfer_cost_ns,
                pinned_gen: self.generation,
            },
        );
        *self.pinned.entry(device).or_insert(0) += bytes;
    }

    /// Unwinds a pin whose upload failed: releases the admission charge and
    /// frees whatever partial buffer the upload left behind.
    pub fn abort_pin(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        id: BufferId,
        bytes: u64,
    ) {
        if let Ok(dev) = devices.get_mut(device) {
            dev.pool_mut().admission_release(bytes);
            if dev.pool().contains(id) {
                let _ = dev.delete_memory(id);
            }
        }
    }

    /// Evicts the least-recently-used entry on `device` (ties broken by
    /// lowest modeled re-transfer cost, then name). Returns the bytes freed
    /// (0 when nothing was pinned there).
    pub fn evict_lru_on(&mut self, devices: &mut DeviceRegistry, device: DeviceId) -> u64 {
        let victim = self
            .entries
            .iter()
            .filter(|((d, _), _)| *d == device)
            .min_by(|(ka, a), (kb, b)| {
                a.last_used
                    .cmp(&b.last_used)
                    .then(a.transfer_cost_ns.total_cmp(&b.transfer_cost_ns))
                    .then(ka.1.cmp(&kb.1))
            })
            .map(|(k, _)| k.clone());
        match victim {
            Some(key) => {
                self.counters.evictions += 1;
                self.remove_entry(devices, &key, false)
            }
            None => 0,
        }
    }

    /// Evicts pins on `device` until its admission ledger can take `bytes`
    /// more (or no pins remain). Returns the bytes freed — the scheduler's
    /// `ReservationLedger` calls this before giving up on a reservation, so
    /// cache pins always yield to admission instead of starving it.
    pub fn evict_for_admission(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        bytes: u64,
    ) -> u64 {
        let mut total = 0u64;
        loop {
            let available = devices
                .get(device)
                .map(|d| d.pool().admission_available())
                .unwrap_or(u64::MAX);
            if available >= bytes {
                return total;
            }
            let freed = self.evict_lru_on(devices, device);
            if freed == 0 {
                return total;
            }
            total += freed;
        }
    }

    /// Drops every entry on `device` (fault recovery: rollback on that
    /// device, quarantine, a circuit-breaker trip). Returns the bytes freed.
    pub fn invalidate_device(&mut self, devices: &mut DeviceRegistry, device: DeviceId) -> u64 {
        let keys: Vec<_> = self
            .entries
            .keys()
            .filter(|(d, _)| *d == device)
            .cloned()
            .collect();
        let mut total = 0;
        for key in keys {
            total += self.remove_entry(devices, &key, true);
        }
        total
    }

    /// Writes off every pin on a permanently dead device **without calling
    /// into it**: entries and the pinned-bytes ledger are dropped, and the
    /// freed ids are logged for the hub, but no `delete_memory` or
    /// admission release touches the corpse — its pool accounting is
    /// reconciled by the device write-off, not by the cache. Returns the
    /// pinned bytes written off.
    pub fn write_off_device(&mut self, device: DeviceId) -> u64 {
        let keys: Vec<_> = self
            .entries
            .keys()
            .filter(|(d, _)| *d == device)
            .cloned()
            .collect();
        let mut total = 0;
        for key in keys {
            let Some(entry) = self.entries.remove(&key) else {
                continue;
            };
            self.counters.invalidations += 1;
            self.freed.push((device, entry.id));
            total += entry.bytes;
        }
        self.pinned.remove(&device);
        total
    }

    /// Drops every entry on every device, freeing all pinned buffers and
    /// admission charges (engine teardown). Returns the bytes freed.
    pub fn clear(&mut self, devices: &mut DeviceRegistry) -> u64 {
        let keys: Vec<_> = self.entries.keys().cloned().collect();
        let mut total = 0;
        for key in keys {
            total += self.remove_entry(devices, &key, true);
        }
        total
    }

    /// Buffers freed since the last drain (the hub purges stale per-run
    /// residency entries pointing at them).
    pub fn take_freed(&mut self) -> Vec<(DeviceId, BufferId)> {
        std::mem::take(&mut self.freed)
    }

    /// Takes (and resets) the per-run counters.
    pub fn take_counters(&mut self) -> ResidencyCounters {
        std::mem::take(&mut self.counters)
    }

    /// Removes one entry: frees its device buffer (tolerating buffers a
    /// device reset already wiped), releases its admission charge, and logs
    /// the freed id for the hub.
    fn remove_entry(
        &mut self,
        devices: &mut DeviceRegistry,
        key: &(DeviceId, String),
        invalidation: bool,
    ) -> u64 {
        let Some(entry) = self.entries.remove(key) else {
            return 0;
        };
        if invalidation {
            self.counters.invalidations += 1;
        }
        let device = key.0;
        if let Some(p) = self.pinned.get_mut(&device) {
            *p = p.saturating_sub(entry.bytes);
        }
        if let Ok(dev) = devices.get_mut(device) {
            dev.pool_mut().admission_release(entry.bytes);
            if dev.pool().contains(entry.id) {
                let _ = dev.delete_memory(entry.id);
            }
        }
        self.freed.push((device, entry.id));
        entry.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::profiles::DeviceProfile;

    fn one_device() -> (DeviceRegistry, DeviceId) {
        let mut reg = DeviceRegistry::new();
        let d = reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(0))));
        (reg, d)
    }

    fn pin(
        cache: &mut ResidencyCache,
        devices: &mut DeviceRegistry,
        dev: DeviceId,
        name: &str,
        col: &[i64],
    ) -> BufferId {
        let id = cache.begin_pin(devices, dev, col).expect("fits budget");
        devices
            .get_mut(dev)
            .unwrap()
            .place_data(id, adamant_device::buffer::BufferData::I64(col.to_vec()), 0)
            .unwrap();
        cache.commit_pin(dev, name, col, id, 1_000.0);
        id
    }

    #[test]
    fn pin_then_cross_run_hit() {
        let (mut reg, dev) = one_device();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(1 << 20));
        let col: Vec<i64> = (0..128).collect();
        cache.begin_run();
        assert!(cache.lookup(&mut reg, dev, "l_qty", &col).is_none());
        let id = pin(&mut cache, &mut reg, dev, "l_qty", &col);
        // Same run: served, but not a cross-run hit.
        assert_eq!(cache.lookup(&mut reg, dev, "l_qty", &col), Some(id));
        let c1 = cache.take_counters();
        assert_eq!((c1.hits, c1.misses), (0, 1));
        // Next run: a hit, counted once despite repeated touches.
        cache.begin_run();
        assert_eq!(cache.lookup(&mut reg, dev, "l_qty", &col), Some(id));
        assert_eq!(cache.lookup(&mut reg, dev, "l_qty", &col), Some(id));
        let c2 = cache.take_counters();
        assert_eq!((c2.hits, c2.misses), (1, 0));
    }

    #[test]
    fn stale_fingerprint_is_invalidated() {
        let (mut reg, dev) = one_device();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(1 << 20));
        let col: Vec<i64> = (0..64).collect();
        cache.begin_run();
        pin(&mut cache, &mut reg, dev, "x", &col);
        let reserved = reg.get(dev).unwrap().pool().admission_reserved();
        assert_eq!(reserved, 64 * 8);
        cache.begin_run();
        let changed: Vec<i64> = (1..65).collect();
        assert!(cache.lookup(&mut reg, dev, "x", &changed).is_none());
        assert!(cache.is_empty(), "stale entry dropped");
        assert_eq!(reg.get(dev).unwrap().pool().admission_reserved(), 0);
        assert_eq!(reg.get(dev).unwrap().pool().used(), 0);
        let c = cache.take_counters();
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn budget_pressure_evicts_lru_first() {
        let (mut reg, dev) = one_device();
        // Budget fits exactly two 64-element columns.
        let mut cache = ResidencyCache::new(ResidencyConfig::new(2 * 64 * 8));
        let a: Vec<i64> = (0..64).collect();
        let b: Vec<i64> = (100..164).collect();
        let c: Vec<i64> = (200..264).collect();
        cache.begin_run();
        pin(&mut cache, &mut reg, dev, "a", &a);
        pin(&mut cache, &mut reg, dev, "b", &b);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.lookup(&mut reg, dev, "a", &a).is_some());
        pin(&mut cache, &mut reg, dev, "c", &c);
        assert!(cache.lookup(&mut reg, dev, "a", &a).is_some());
        assert!(cache.lookup(&mut reg, dev, "b", &b).is_none(), "b evicted");
        assert!(cache.lookup(&mut reg, dev, "c", &c).is_some());
        assert_eq!(cache.take_counters().evictions, 1);
        assert_eq!(cache.total_pinned_bytes(), 2 * 64 * 8);
    }

    #[test]
    fn admission_pressure_yields_pins() {
        let (mut reg, dev) = one_device();
        let capacity = reg.get(dev).unwrap().pool().capacity();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(1 << 20));
        let col: Vec<i64> = (0..1024).collect();
        cache.begin_run();
        pin(&mut cache, &mut reg, dev, "x", &col);
        // A reservation for 100% of capacity cannot coexist with the pin —
        // evict_for_admission reclaims it.
        assert!(reg
            .get_mut(dev)
            .unwrap()
            .pool_mut()
            .admission_reserve(capacity)
            .is_err());
        let freed = cache.evict_for_admission(&mut reg, dev, capacity);
        assert_eq!(freed, 1024 * 8);
        reg.get_mut(dev)
            .unwrap()
            .pool_mut()
            .admission_reserve(capacity)
            .unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_device_frees_everything() {
        let (mut reg, dev) = one_device();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(1 << 20));
        cache.begin_run();
        let a: Vec<i64> = (0..32).collect();
        let b: Vec<i64> = (0..48).collect();
        let ida = pin(&mut cache, &mut reg, dev, "a", &a);
        let idb = pin(&mut cache, &mut reg, dev, "b", &b);
        let freed = cache.invalidate_device(&mut reg, dev);
        assert_eq!(freed, (32 + 48) * 8);
        assert!(cache.is_empty());
        assert_eq!(reg.get(dev).unwrap().pool().used(), 0);
        let mut drained = cache.take_freed();
        drained.sort_unstable();
        let mut expected = vec![(dev, ida), (dev, idb)];
        expected.sort_unstable();
        assert_eq!(drained, expected);
    }

    #[test]
    fn write_off_device_never_touches_the_corpse() {
        use adamant_device::fault::FaultPlan;
        let (mut reg, dev) = one_device();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(1 << 20));
        cache.begin_run();
        let col: Vec<i64> = (0..32).collect();
        let id = pin(&mut cache, &mut reg, dev, "a", &col);
        // Kill the device: any data-plane call would now fail.
        reg.get_mut(dev)
            .unwrap()
            .set_fault_plan(FaultPlan::none().die_on_exec(1).die_at_ns(0.0));
        let freed = cache.write_off_device(dev);
        assert_eq!(freed, 32 * 8, "pinned bytes written off");
        assert!(cache.is_empty());
        assert_eq!(cache.pinned_bytes_on(dev), 0);
        assert_eq!(cache.take_freed(), vec![(dev, id)]);
        assert_eq!(cache.take_counters().invalidations, 1);
    }

    #[test]
    fn oversized_column_bypasses() {
        let (mut reg, dev) = one_device();
        let mut cache = ResidencyCache::new(ResidencyConfig::new(64));
        let col: Vec<i64> = (0..1024).collect();
        assert!(cache.begin_pin(&mut reg, dev, &col).is_none());
        assert!(cache.is_empty());
    }
}
