//! Makespan computation for the execution models.
//!
//! Devices record *durations* per operation; the execution model decides how
//! those durations overlap. Chunked execution serializes transfer and
//! compute; pipelined/4-phase overlap the copy engine with the compute
//! engine (paper Figs. 6 and 8). This module turns per-chunk
//! `(transfer, compute)` pairs into a total elapsed time under each policy.

/// Per-chunk cost pair in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkCost {
    /// Time on the copy engine (H2D + D2H) for this chunk.
    pub transfer_ns: f64,
    /// Time on the compute engine for this chunk.
    pub compute_ns: f64,
}

/// Serial execution: every chunk waits for its transfer, the next transfer
/// waits for the previous compute (Algorithm 1's `router(); execute()` loop).
pub fn serial_makespan(chunks: &[ChunkCost]) -> f64 {
    chunks.iter().map(|c| c.transfer_ns + c.compute_ns).sum()
}

/// Overlapped execution with `staging_buffers` in-flight chunks.
///
/// * `compute_i` starts at `max(transfer_end_i, compute_end_{i-1})`;
/// * `transfer_i` starts at `max(transfer_end_{i-1},
///   compute_end_{i - staging_buffers})` — a chunk's staging slot is only
///   free once the chunk `staging_buffers` earlier has been processed
///   (the dual-memory alternation of Fig. 8 is `staging_buffers == 2`).
///
/// The paper's Algorithm 2 trackers (`fetched_until`/`processed_until`)
/// enforce exactly these constraints at runtime.
pub fn overlapped_makespan(chunks: &[ChunkCost], staging_buffers: usize) -> f64 {
    assert!(staging_buffers >= 1);
    let n = chunks.len();
    let mut transfer_end = vec![0.0f64; n];
    let mut compute_end = vec![0.0f64; n];
    for i in 0..n {
        let prev_transfer = if i > 0 { transfer_end[i - 1] } else { 0.0 };
        let slot_free = if i >= staging_buffers {
            compute_end[i - staging_buffers]
        } else {
            0.0
        };
        let t_start = prev_transfer.max(slot_free);
        transfer_end[i] = t_start + chunks[i].transfer_ns;
        let prev_compute = if i > 0 { compute_end[i - 1] } else { 0.0 };
        let c_start = transfer_end[i].max(prev_compute);
        compute_end[i] = c_start + chunks[i].compute_ns;
    }
    compute_end.last().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: f64, x: f64) -> ChunkCost {
        ChunkCost {
            transfer_ns: t,
            compute_ns: x,
        }
    }

    #[test]
    fn serial_sums_everything() {
        assert_eq!(serial_makespan(&[c(10.0, 5.0), c(10.0, 5.0)]), 30.0);
        assert_eq!(serial_makespan(&[]), 0.0);
    }

    #[test]
    fn overlap_hides_smaller_lane() {
        // Equal transfer/compute: overlap approaches max(sum_t, sum_c) + one
        // pipeline fill.
        let chunks = vec![c(10.0, 10.0); 10];
        let serial = serial_makespan(&chunks);
        let overlapped = overlapped_makespan(&chunks, 2);
        assert_eq!(serial, 200.0);
        assert_eq!(overlapped, 110.0); // 10 (fill) + 10 * 10
    }

    #[test]
    fn transfer_bound_case() {
        // Transfer dominates: makespan ≈ total transfer + last compute.
        let chunks = vec![c(100.0, 1.0); 5];
        let m = overlapped_makespan(&chunks, 2);
        assert_eq!(m, 501.0);
    }

    #[test]
    fn compute_bound_case() {
        let chunks = vec![c(1.0, 100.0); 5];
        let m = overlapped_makespan(&chunks, 2);
        assert_eq!(m, 501.0);
    }

    #[test]
    fn single_buffer_degenerates_towards_serial() {
        // One staging buffer: transfer_{i} waits compute_{i-1}; fully serial.
        let chunks = vec![c(10.0, 10.0); 4];
        assert_eq!(overlapped_makespan(&chunks, 1), serial_makespan(&chunks));
    }

    #[test]
    fn more_buffers_never_slower() {
        let chunks: Vec<ChunkCost> = (0..20)
            .map(|i| c(10.0 + (i % 3) as f64 * 5.0, 8.0 + (i % 5) as f64 * 4.0))
            .collect();
        let two = overlapped_makespan(&chunks, 2);
        let four = overlapped_makespan(&chunks, 4);
        let serial = serial_makespan(&chunks);
        assert!(two <= serial);
        assert!(four <= two + 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(overlapped_makespan(&[], 2), 0.0);
        assert_eq!(overlapped_makespan(&[c(3.0, 4.0)], 2), 7.0);
    }
}
