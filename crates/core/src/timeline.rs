//! Makespan computation for the execution models.
//!
//! Devices record *durations* per operation; the execution model decides how
//! those durations overlap. Chunked execution serializes transfer and
//! compute; pipelined/4-phase overlap the copy engine with the compute
//! engine (paper Figs. 6 and 8). This module turns per-chunk
//! `(transfer, compute)` pairs into a total elapsed time under each policy.

/// Per-chunk cost pair in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkCost {
    /// Time on the copy engine (H2D + D2H) for this chunk.
    pub transfer_ns: f64,
    /// Time on the compute engine for this chunk.
    pub compute_ns: f64,
}

/// Serial execution: every chunk waits for its transfer, the next transfer
/// waits for the previous compute (Algorithm 1's `router(); execute()` loop).
pub fn serial_makespan(chunks: &[ChunkCost]) -> f64 {
    chunks.iter().map(|c| c.transfer_ns + c.compute_ns).sum()
}

/// Overlapped execution with `staging_buffers` in-flight chunks.
///
/// * `compute_i` starts at `max(transfer_end_i, compute_end_{i-1})`;
/// * `transfer_i` starts at `max(transfer_end_{i-1},
///   compute_end_{i - staging_buffers})` — a chunk's staging slot is only
///   free once the chunk `staging_buffers` earlier has been processed
///   (the dual-memory alternation of Fig. 8 is `staging_buffers == 2`).
///
/// The paper's Algorithm 2 trackers (`fetched_until`/`processed_until`)
/// enforce exactly these constraints at runtime.
pub fn overlapped_makespan(chunks: &[ChunkCost], staging_buffers: usize) -> f64 {
    assert!(staging_buffers >= 1);
    let n = chunks.len();
    let mut transfer_end = vec![0.0f64; n];
    let mut compute_end = vec![0.0f64; n];
    for i in 0..n {
        let prev_transfer = if i > 0 { transfer_end[i - 1] } else { 0.0 };
        let slot_free = if i >= staging_buffers {
            compute_end[i - staging_buffers]
        } else {
            0.0
        };
        let t_start = prev_transfer.max(slot_free);
        transfer_end[i] = t_start + chunks[i].transfer_ns;
        let prev_compute = if i > 0 { compute_end[i - 1] } else { 0.0 };
        let c_start = transfer_end[i].max(prev_compute);
        compute_end[i] = c_start + chunks[i].compute_ns;
    }
    compute_end.last().copied().unwrap_or(0.0)
}

/// Weighted fair queuing over the shared simulated timeline.
///
/// Each stream (a tenant, in the scheduler) carries a weight and a virtual
/// *pass* value. The next slice of device time goes to the active stream
/// with the smallest pass; charging a slice of duration `d` advances that
/// stream's pass by `d / weight`, so a weight-2 stream is eligible twice as
/// often as a weight-1 stream and receives ≈2× the device time under
/// sustained load. A stream that goes idle and returns re-enters at the
/// minimum active pass (it does not bank credit while idle — the classic
/// start-time fair queuing rule that keeps the discipline starvation-free).
///
/// Suspension is distinct from idling: a *suspended* stream still has work
/// but is being preempted by the scheduler, so it keeps its pass frozen.
/// [`WfqClock::resume`] does not advance it to the active floor the way
/// [`WfqClock::activate`] does — the stream resumes behind its competitors
/// and catches up, exactly compensating the service it was denied.
///
/// Fully deterministic: ties break on the lowest stream index.
#[derive(Clone, Debug, Default)]
pub struct WfqClock {
    weights: Vec<f64>,
    passes: Vec<f64>,
    active: Vec<bool>,
    suspended: Vec<bool>,
}

impl WfqClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        WfqClock::default()
    }

    /// Registers a stream with the given weight (floored at a small positive
    /// value so a zero weight cannot stall the clock). Returns its index.
    pub fn add_stream(&mut self, weight: f64) -> usize {
        self.weights.push(weight.max(1e-9));
        self.passes.push(0.0);
        self.active.push(false);
        self.suspended.push(false);
        self.weights.len() - 1
    }

    /// Updates a stream's weight (floored like [`WfqClock::add_stream`]).
    /// Takes effect on the next charge; the accumulated pass is kept, so a
    /// re-weighted tenant neither gains nor loses banked service.
    pub fn set_weight(&mut self, idx: usize, weight: f64) {
        self.weights[idx] = weight.max(1e-9);
    }

    /// A stream's current weight.
    pub fn weight(&self, idx: usize) -> f64 {
        self.weights[idx]
    }

    /// Marks a stream active (it has work queued). A stream re-activating
    /// after idling is brought forward to the minimum active pass.
    pub fn activate(&mut self, idx: usize) {
        if self.active[idx] {
            return;
        }
        let floor = self
            .passes
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(&p, _)| p)
            .fold(f64::INFINITY, f64::min);
        if floor.is_finite() {
            self.passes[idx] = self.passes[idx].max(floor);
        }
        self.active[idx] = true;
    }

    /// Marks a stream idle (no work left). Clears any suspension: an idle
    /// stream re-enters through [`WfqClock::activate`]'s floor rule.
    pub fn deactivate(&mut self, idx: usize) {
        self.active[idx] = false;
        self.suspended[idx] = false;
    }

    /// Suspends a stream *without* deactivating it: the stream still holds
    /// work (preempted, not idle), keeps its pass frozen, and is skipped by
    /// [`WfqClock::next_stream`] until [`WfqClock::resume`].
    pub fn suspend(&mut self, idx: usize) {
        self.suspended[idx] = true;
    }

    /// Lifts a suspension. Unlike [`WfqClock::activate`], the pass is NOT
    /// advanced to the active floor — the preempted stream re-enters behind
    /// its competitors and catches up the service it was denied.
    pub fn resume(&mut self, idx: usize) {
        self.suspended[idx] = false;
    }

    /// Whether a stream is currently suspended.
    pub fn is_suspended(&self, idx: usize) -> bool {
        self.suspended[idx]
    }

    /// The active stream that should receive the next slice: minimum pass,
    /// lowest index on ties, suspended streams skipped. `None` when every
    /// stream is idle or suspended.
    pub fn next_stream(&self) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (i, (&p, &a)) in self.passes.iter().zip(&self.active).enumerate() {
            if !a || self.suspended[i] {
                continue;
            }
            match best {
                Some((bp, _)) if bp <= p => {}
                _ => best = Some((p, i)),
            }
        }
        best.map(|(_, i)| i)
    }

    /// Charges a served slice of `duration_ns` to stream `idx`.
    pub fn charge(&mut self, idx: usize, duration_ns: f64) {
        self.passes[idx] += duration_ns.max(0.0) / self.weights[idx];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: f64, x: f64) -> ChunkCost {
        ChunkCost {
            transfer_ns: t,
            compute_ns: x,
        }
    }

    #[test]
    fn serial_sums_everything() {
        assert_eq!(serial_makespan(&[c(10.0, 5.0), c(10.0, 5.0)]), 30.0);
        assert_eq!(serial_makespan(&[]), 0.0);
    }

    #[test]
    fn overlap_hides_smaller_lane() {
        // Equal transfer/compute: overlap approaches max(sum_t, sum_c) + one
        // pipeline fill.
        let chunks = vec![c(10.0, 10.0); 10];
        let serial = serial_makespan(&chunks);
        let overlapped = overlapped_makespan(&chunks, 2);
        assert_eq!(serial, 200.0);
        assert_eq!(overlapped, 110.0); // 10 (fill) + 10 * 10
    }

    #[test]
    fn transfer_bound_case() {
        // Transfer dominates: makespan ≈ total transfer + last compute.
        let chunks = vec![c(100.0, 1.0); 5];
        let m = overlapped_makespan(&chunks, 2);
        assert_eq!(m, 501.0);
    }

    #[test]
    fn compute_bound_case() {
        let chunks = vec![c(1.0, 100.0); 5];
        let m = overlapped_makespan(&chunks, 2);
        assert_eq!(m, 501.0);
    }

    #[test]
    fn single_buffer_degenerates_towards_serial() {
        // One staging buffer: transfer_{i} waits compute_{i-1}; fully serial.
        let chunks = vec![c(10.0, 10.0); 4];
        assert_eq!(overlapped_makespan(&chunks, 1), serial_makespan(&chunks));
    }

    #[test]
    fn more_buffers_never_slower() {
        let chunks: Vec<ChunkCost> = (0..20)
            .map(|i| c(10.0 + (i % 3) as f64 * 5.0, 8.0 + (i % 5) as f64 * 4.0))
            .collect();
        let two = overlapped_makespan(&chunks, 2);
        let four = overlapped_makespan(&chunks, 4);
        let serial = serial_makespan(&chunks);
        assert!(two <= serial);
        assert!(four <= two + 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(overlapped_makespan(&[], 2), 0.0);
        assert_eq!(overlapped_makespan(&[c(3.0, 4.0)], 2), 7.0);
    }

    #[test]
    fn wfq_shares_proportionally_to_weight() {
        let mut clock = WfqClock::new();
        let heavy = clock.add_stream(2.0);
        let light = clock.add_stream(1.0);
        clock.activate(heavy);
        clock.activate(light);
        let mut served = [0.0f64; 2];
        for _ in 0..300 {
            let s = clock.next_stream().unwrap();
            clock.charge(s, 10.0);
            served[s] += 10.0;
        }
        let ratio = served[heavy] / served[light];
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "2:1 weights should yield ~2x service, got {ratio}"
        );
    }

    #[test]
    fn wfq_idle_stream_does_not_bank_credit() {
        let mut clock = WfqClock::new();
        let a = clock.add_stream(1.0);
        let b = clock.add_stream(1.0);
        clock.activate(a);
        // `a` runs alone for a long time...
        for _ in 0..100 {
            let s = clock.next_stream().unwrap();
            assert_eq!(s, a);
            clock.charge(s, 10.0);
        }
        // ...then `b` arrives. It must not monopolize the device to "catch
        // up" the 1000 ns it was absent for: service alternates from here.
        clock.activate(b);
        let mut b_streak = 0usize;
        let mut max_streak = 0usize;
        for _ in 0..50 {
            let s = clock.next_stream().unwrap();
            clock.charge(s, 10.0);
            if s == b {
                b_streak += 1;
                max_streak = max_streak.max(b_streak);
            } else {
                b_streak = 0;
            }
        }
        assert!(
            max_streak <= 2,
            "late arrival must not monopolize: streak {max_streak}"
        );
    }

    #[test]
    fn wfq_set_weight_takes_effect_immediately() {
        let mut clock = WfqClock::new();
        let a = clock.add_stream(1.0);
        let b = clock.add_stream(1.0);
        clock.activate(a);
        clock.activate(b);
        // Re-weight `a` to 2.0 before any service: it must now receive ≈2×.
        clock.set_weight(a, 2.0);
        assert_eq!(clock.weight(a), 2.0);
        let mut served = [0.0f64; 2];
        for _ in 0..300 {
            let s = clock.next_stream().unwrap();
            clock.charge(s, 10.0);
            served[s] += 10.0;
        }
        let ratio = served[a] / served[b];
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "updated weight must drive service, got {ratio}"
        );
        // Floor applies to updates too: zero weight cannot stall the clock.
        clock.set_weight(b, 0.0);
        clock.charge(b, 1.0);
        assert!(clock.weight(b) > 0.0);
    }

    #[test]
    fn wfq_suspended_stream_is_skipped_and_catches_up_on_resume() {
        let mut clock = WfqClock::new();
        let a = clock.add_stream(1.0);
        let b = clock.add_stream(1.0);
        clock.activate(a);
        clock.activate(b);
        // Preempt `a`: all service goes to `b`, `a`'s pass stays frozen.
        clock.suspend(a);
        assert!(clock.is_suspended(a));
        for _ in 0..10 {
            let s = clock.next_stream().unwrap();
            assert_eq!(s, b, "suspended stream must never be served");
            clock.charge(s, 10.0);
        }
        // Resume without the activate() floor: `a` is behind and catches up
        // exactly the 100 ns it was denied before `b` is served again.
        clock.resume(a);
        assert!(!clock.is_suspended(a));
        let mut a_catchup = 0.0;
        loop {
            let s = clock.next_stream().unwrap();
            if s != a {
                break;
            }
            clock.charge(s, 10.0);
            a_catchup += 10.0;
        }
        // 100 ns of catch-up brings the passes level; the tie then breaks
        // on the lowest index, so `a` gets exactly one extra slice.
        assert_eq!(
            a_catchup, 110.0,
            "resumed stream must catch up the denied service"
        );
        // Suspending everything leaves the clock with no eligible stream.
        clock.suspend(a);
        clock.suspend(b);
        assert_eq!(clock.next_stream(), None);
        // Deactivation clears suspension: re-entry goes through activate().
        clock.deactivate(a);
        assert!(!clock.is_suspended(a));
    }

    #[test]
    fn wfq_deactivate_and_ties_are_deterministic() {
        let mut clock = WfqClock::new();
        let a = clock.add_stream(1.0);
        let b = clock.add_stream(1.0);
        clock.activate(a);
        clock.activate(b);
        assert_eq!(clock.next_stream(), Some(a), "ties break on lowest index");
        clock.deactivate(a);
        assert_eq!(clock.next_stream(), Some(b));
        clock.deactivate(b);
        assert_eq!(clock.next_stream(), None);
        // Zero-weight streams are floored, not divide-by-zero.
        let z = clock.add_stream(0.0);
        clock.activate(z);
        clock.charge(z, 1.0);
        assert_eq!(clock.next_stream(), Some(z));
    }
}
