//! Pipeline splitting.
//!
//! ADAMANT "is aware of pipeline breakers and materializes their
//! intermediate results into the device memory. These pipeline breakers mark
//! the end of a query pipeline." (§III-B2). The runtime splits the primitive
//! graph into pipelines and treats each as an execution group.
//!
//! A *streaming* pipeline consumes one scan's columns chunk-wise; a
//! *full-buffer* pipeline (e.g. the post-aggregation ORDER BY stage)
//! consumes only materialized data and runs once on whole buffers.

use crate::error::{ExecError, Result};
use crate::graph::{DataRef, NodeId, PrimitiveGraph};

/// One pipeline: an execution group of primitives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pipeline {
    /// Pipeline index in execution order.
    pub index: usize,
    /// The scan streamed through this pipeline (`None` = full-buffer).
    pub scan: Option<String>,
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
}

impl Pipeline {
    /// Whether this pipeline streams chunks (vs. a single full pass).
    pub fn is_streaming(&self) -> bool {
        self.scan.is_some()
    }
}

/// The pipelines of a graph, in execution order.
#[derive(Clone, Debug)]
pub struct PipelineSet {
    /// Pipelines in execution order.
    pub pipelines: Vec<Pipeline>,
    /// `node_pipeline[node] = pipeline index`.
    pub node_pipeline: Vec<usize>,
}

impl PipelineSet {
    /// Splits a graph into pipelines.
    ///
    /// Walking nodes in topological order, each node joins the open
    /// pipeline of the scan it streams; pipeline breakers close their
    /// pipeline. Nodes whose every input is materialized (external
    /// whole-inputs, breaker outputs, outputs of already-closed pipelines)
    /// join the open full-buffer pipeline.
    pub fn split(graph: &PrimitiveGraph) -> Result<PipelineSet> {
        let mut pipelines: Vec<Pipeline> = Vec::new();
        let mut node_pipeline: Vec<usize> = Vec::with_capacity(graph.nodes().len());
        // Open pipeline per scan name; open full-buffer pipeline.
        let mut open: std::collections::BTreeMap<String, usize> = Default::default();
        let mut open_full: Option<usize> = None;

        for node in graph.nodes() {
            // Determine the streaming source of this node, if any.
            let mut stream_scan: Option<String> = None;
            for &input in &node.inputs {
                let contrib = match input {
                    DataRef::Input(i) => graph.inputs()[i].scan.clone(),
                    DataRef::Output { node: src, .. } => {
                        let src_node = graph.node(src);
                        if src_node.kind.is_pipeline_breaker() {
                            None // materialized
                        } else {
                            // Streams if its pipeline is still open.
                            let pidx = node_pipeline[src.0];
                            let p = &pipelines[pidx];
                            if open.values().any(|&v| v == pidx) || open_full == Some(pidx) {
                                p.scan.clone()
                            } else {
                                None
                            }
                        }
                    }
                };
                if let Some(scan) = contrib {
                    match &stream_scan {
                        None => stream_scan = Some(scan),
                        Some(existing) if *existing == scan => {}
                        Some(existing) => {
                            return Err(ExecError::InvalidGraph(format!(
                                "node `{}` streams two scans at once: `{existing}` and `{scan}`",
                                node.label
                            )))
                        }
                    }
                }
            }

            let pidx = match &stream_scan {
                Some(scan) => *open.entry(scan.clone()).or_insert_with(|| {
                    pipelines.push(Pipeline {
                        index: pipelines.len(),
                        scan: Some(scan.clone()),
                        nodes: Vec::new(),
                    });
                    pipelines.len() - 1
                }),
                None => match open_full {
                    Some(p) => p,
                    None => {
                        pipelines.push(Pipeline {
                            index: pipelines.len(),
                            scan: None,
                            nodes: Vec::new(),
                        });
                        open_full = Some(pipelines.len() - 1);
                        pipelines.len() - 1
                    }
                },
            };
            pipelines[pidx].nodes.push(node.id);
            node_pipeline.push(pidx);

            if node.kind.is_pipeline_breaker() {
                // Close the pipeline this node belongs to.
                if let Some(scan) = &stream_scan {
                    open.remove(scan);
                } else if open_full == Some(pidx) {
                    open_full = None;
                }
            }
        }
        Ok(PipelineSet {
            pipelines,
            node_pipeline,
        })
    }

    /// Number of pipelines.
    pub fn len(&self) -> usize {
        self.pipelines.len()
    }

    /// True when the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.pipelines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, NodeParams};
    use adamant_device::device::DeviceId;
    use adamant_task::params::{AggFunc, CmpOp};
    use adamant_task::primitive::PrimitiveKind;

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn single_pipeline_q6_shape() {
        // filter -> materialize -> agg_block: one streaming pipeline.
        let mut b = GraphBuilder::new();
        let price = b.scan_input("lineitem", "price");
        let bm = b.add(
            PrimitiveKind::FilterBitmap,
            NodeParams::Filter {
                cmp: CmpOp::Lt,
                value: 10,
                hi: 0,
            },
            vec![price],
            1,
            dev(),
            "filter",
        );
        let vals = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![price, bm[0]],
            1,
            dev(),
            "mat",
        );
        let acc = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![vals[0]],
            1,
            dev(),
            "sum",
        );
        b.output("sum", acc[0]);
        let g = b.build().unwrap();
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.pipelines[0].scan.as_deref(), Some("lineitem"));
        assert_eq!(ps.pipelines[0].nodes.len(), 3);
        assert!(ps.pipelines[0].is_streaming());
    }

    #[test]
    fn join_shape_two_pipelines_plus_post() {
        // build-side pipeline, probe-side pipeline, post stage.
        let mut b = GraphBuilder::new();
        let ck = b.scan_input("customer", "c_custkey");
        let ht = b.add(
            PrimitiveKind::HashBuild,
            NodeParams::HashBuild {
                payload_cols: 0,
                expected: 100,
            },
            vec![ck],
            1,
            dev(),
            "build",
        );
        let ok = b.scan_input("orders", "o_custkey");
        let probe = b.add(
            PrimitiveKind::HashProbeSemi,
            NodeParams::None,
            vec![ok, ht[0]],
            1,
            dev(),
            "semi",
        );
        let mat = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![ok, probe[0]],
            1,
            dev(),
            "mat",
        );
        let agg = b.add(
            PrimitiveKind::HashAgg,
            NodeParams::HashAgg {
                payload_cols: 0,
                aggs: vec![AggFunc::Count],
                expected_groups: 8,
            },
            vec![mat[0], mat[0]],
            1,
            dev(),
            "agg",
        );
        let exported = b.add(
            PrimitiveKind::AggExport,
            NodeParams::AggExport {
                payload_cols: 0,
                agg_count: 1,
            },
            vec![agg[0]],
            2,
            dev(),
            "export",
        );
        b.output("keys", exported[0]);
        b.output("counts", exported[1]);
        let g = b.build().unwrap();
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.pipelines[0].scan.as_deref(), Some("customer"));
        assert_eq!(ps.pipelines[1].scan.as_deref(), Some("orders"));
        assert_eq!(ps.pipelines[2].scan, None);
        assert!(!ps.pipelines[2].is_streaming());
        // The export node is in the full-buffer pipeline.
        assert_eq!(ps.node_pipeline[4], 2);
    }

    #[test]
    fn breaker_closes_then_new_pipeline_same_scan() {
        // Two consecutive aggregations over the same scan re-open it.
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let a1 = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![x],
            1,
            dev(),
            "sum1",
        );
        let a2 = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Max },
            vec![x],
            1,
            dev(),
            "max",
        );
        b.output("s", a1[0]);
        b.output("m", a2[0]);
        let g = b.build().unwrap();
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.pipelines[0].scan.as_deref(), Some("t"));
        assert_eq!(ps.pipelines[1].scan.as_deref(), Some("t"));
    }

    #[test]
    fn rejects_two_streams_into_one_node() {
        let mut b = GraphBuilder::new();
        let a = b.scan_input("t1", "a");
        let c = b.scan_input("t2", "c");
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: adamant_task::params::MapOp::Add,
                constant: 0,
            },
            vec![a, c],
            1,
            dev(),
            "bad",
        );
        b.output("r", m[0]);
        let g = b.build().unwrap();
        assert!(PipelineSet::split(&g).is_err());
    }
}
