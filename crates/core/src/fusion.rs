//! Graph fusion: merging producer→consumer primitive chains into single
//! fused nodes (DESIGN.md §16).
//!
//! Every edge of the primitive graph normally materializes its intermediate
//! through the hub — a buffer id, a pool charge, launch overhead and (for
//! escaping values) a transfer. For streamable chains like
//! `filter → materialize → agg` that intermediate exists only to be consumed
//! immediately by the next primitive on the same device over the same chunk.
//! The fusion pass rewrites such chains into one `FUSED` / `FUSED_AGG` node
//! whose `NodeParams::Fused` carries the original stages; the interpreter
//! kernel (task layer, registered through the ordinary plug-in registry)
//! runs them back to back in kernel-local memory.
//!
//! ## Eligibility
//!
//! An edge `p → c` fuses when **all** of the following hold:
//!
//! * `p` is an interior-fusible primitive (`FILTER_BITMAP`,
//!   `FILTER_BITMAP_COL`, `BITMAP_OP`, `MAP`, `MATERIALIZE`) with a single
//!   output port and the default implementation variant;
//! * `c` is interior-fusible **or** a terminal aggregation (`AGG_BLOCK`,
//!   `HASH_AGG`), again default-variant, single-output;
//! * both nodes are annotated onto the **same device**;
//! * `c` is the **sole consumer** of `p`'s output and that output is not a
//!   graph output;
//! * both nodes derive the **same stream scan** under pipeline splitting
//!   (same chunk grid — fused chunks line up exactly with unfused chunks,
//!   which keeps checkpoints, `ResumeCursor` rows and watchdog budgets on
//!   the same boundaries with fusion on or off).
//!
//! Regions grow greedily along eligible edges; sole-consumer plus DAG
//! topological order guarantee every region is convex with a unique
//! terminal, so the rewrite is a local substitution. Aggregating terminals
//! produce `FUSED_AGG` (a pipeline breaker, like the aggregation it wraps);
//! anything else produces `FUSED`.

use crate::graph::{
    DataRef, FusedOperand, FusedStageSpec, NodeId, NodeParams, PrimitiveGraph, PrimitiveNode,
};
use adamant_device::cost::{CostClass, CostModel};
use adamant_task::container::DataContainer;
use adamant_task::primitive::PrimitiveKind;
use adamant_task::semantics::DataSemantic;

/// What the fusion pass did to a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionReport {
    /// Original nodes merged away into fused nodes (stage count summed over
    /// all chains).
    pub nodes_fused: usize,
    /// Fused nodes created (one per merged chain).
    pub fused_chains: usize,
}

/// Whether a primitive may appear as an interior (non-terminal) stage.
fn interior_fusible(kind: PrimitiveKind) -> bool {
    matches!(
        kind,
        PrimitiveKind::FilterBitmap
            | PrimitiveKind::FilterBitmapCol
            | PrimitiveKind::BitmapOp
            | PrimitiveKind::Map
            | PrimitiveKind::Materialize
    )
}

/// Whether a primitive may terminate a fused chain.
fn terminal_fusible(kind: PrimitiveKind) -> bool {
    interior_fusible(kind) || matches!(kind, PrimitiveKind::AggBlock | PrimitiveKind::HashAgg)
}

/// The semantic a fused stage's in-kernel result would have carried as a
/// materialized edge.
pub fn stage_output_semantic(kind: PrimitiveKind) -> DataSemantic {
    match kind {
        PrimitiveKind::FilterBitmap | PrimitiveKind::FilterBitmapCol | PrimitiveKind::BitmapOp => {
            DataSemantic::Bitmap
        }
        PrimitiveKind::Map | PrimitiveKind::Materialize | PrimitiveKind::AggBlock => {
            DataSemantic::Numeric
        }
        PrimitiveKind::HashAgg => DataSemantic::HashTable,
        _ => DataSemantic::Generic,
    }
}

/// Bytes of interior intermediates a fused node elides per `rows`-row
/// execution — the buffers the unfused chain would have materialized through
/// the hub (the same sizing formula `prepare_output_buffer` uses).
pub fn elided_bytes(params: &NodeParams, rows: usize) -> u64 {
    match params {
        NodeParams::Fused { stages, .. } => stages[..stages.len() - 1]
            .iter()
            .map(|s| DataContainer::estimate_output_bytes(stage_output_semantic(s.kind), rows))
            .sum(),
        _ => 0,
    }
}

/// Modeled nanoseconds a fused execution saved over running the same stages
/// unfused: per-stage launches plus undiscounted bodies, minus the fused
/// price (`CostModel::fused_kernel_ns`). `stage_stats` is the per-stage
/// `(class, elements)` breakdown the kernel reported.
pub fn fused_saved_ns(
    cost: &CostModel,
    stages: &[FusedStageSpec],
    stage_stats: &[(CostClass, u64)],
    fused_arg_count: usize,
) -> f64 {
    let unfused: f64 = stages
        .iter()
        .zip(stage_stats)
        .map(|(spec, &(class, elements))| {
            // What the standalone launch would have passed: operand buffers
            // plus one output buffer plus the stage's scalar params.
            let args = spec.operands.len() + 1 + spec.params.to_scalars().len();
            cost.kernel_ns(class, elements, args)
        })
        .sum();
    (unfused - cost.fused_kernel_ns(stage_stats, fused_arg_count)).max(0.0)
}

/// Derives each node's stream scan exactly as [`crate::pipeline::PipelineSet::split`]
/// would. Returns `None` when derivation fails (the split will surface the
/// error; fusion simply stands down).
fn derive_scans(graph: &PrimitiveGraph) -> Option<Vec<Option<String>>> {
    let mut scans: Vec<Option<String>> = Vec::with_capacity(graph.nodes().len());
    let mut node_pipeline: Vec<usize> = Vec::with_capacity(graph.nodes().len());
    let mut pipelines: Vec<Option<String>> = Vec::new();
    let mut open: std::collections::BTreeMap<String, usize> = Default::default();
    let mut open_full: Option<usize> = None;

    for node in graph.nodes() {
        let mut stream_scan: Option<String> = None;
        for &input in &node.inputs {
            let contrib = match input {
                DataRef::Input(i) => graph.inputs()[i].scan.clone(),
                DataRef::Output { node: src, .. } => {
                    let src_node = graph.node(src);
                    if src_node.kind.is_pipeline_breaker() {
                        None
                    } else {
                        let pidx = node_pipeline[src.0];
                        if open.values().any(|&v| v == pidx) || open_full == Some(pidx) {
                            pipelines[pidx].clone()
                        } else {
                            None
                        }
                    }
                }
            };
            if let Some(scan) = contrib {
                match &stream_scan {
                    None => stream_scan = Some(scan),
                    Some(existing) if *existing == scan => {}
                    Some(_) => return None, // conflicting scans: split will error
                }
            }
        }
        let pidx = match &stream_scan {
            Some(scan) => *open.entry(scan.clone()).or_insert_with(|| {
                pipelines.push(Some(scan.clone()));
                pipelines.len() - 1
            }),
            None => match open_full {
                Some(p) => p,
                None => {
                    pipelines.push(None);
                    open_full = Some(pipelines.len() - 1);
                    pipelines.len() - 1
                }
            },
        };
        node_pipeline.push(pidx);
        if node.kind.is_pipeline_breaker() {
            if let Some(scan) = &stream_scan {
                open.remove(scan);
            } else if open_full == Some(pidx) {
                open_full = None;
            }
        }
        scans.push(stream_scan);
    }
    Some(scans)
}

/// Runs the fusion pass in place. Returns what was merged; a graph with no
/// eligible edges comes back untouched with a zero report.
pub fn fuse_graph(graph: &mut PrimitiveGraph) -> FusionReport {
    let n = graph.nodes().len();
    let scans = match derive_scans(graph) {
        Some(s) => s,
        None => return FusionReport::default(),
    };
    let counts = graph.consumer_counts();

    // merged_into[p] = the consumer p's output folds into.
    let mut merged_into: Vec<Option<usize>> = vec![None; n];
    for c in graph.nodes() {
        if !terminal_fusible(c.kind) || c.variant.is_some() || c.output_count != 1 {
            continue;
        }
        for &input in &c.inputs {
            let DataRef::Output { node: src, port: 0 } = input else {
                continue;
            };
            let p = graph.node(src);
            if !interior_fusible(p.kind)
                || p.variant.is_some()
                || p.output_count != 1
                || p.device != c.device
                || counts.get(&input).copied().unwrap_or(0) != 1
                || scans[src.0] != scans[c.id.0]
            {
                continue;
            }
            merged_into[src.0] = Some(c.id.0);
        }
    }

    // Component root (terminal) per node: follow merged_into to the end.
    let root_of = |mut i: usize| {
        while let Some(next) = merged_into[i] {
            i = next;
        }
        i
    };
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        members[root_of(i)].push(i); // topo order preserved: i ascending
    }

    let mut report = FusionReport::default();
    let mut new_nodes: Vec<PrimitiveNode> = Vec::new();
    let mut ref_map: std::collections::BTreeMap<DataRef, DataRef> = Default::default();
    for i in 0..graph.inputs().len() {
        ref_map.insert(DataRef::Input(i), DataRef::Input(i));
    }
    let map_ref = |m: &std::collections::BTreeMap<DataRef, DataRef>, r: DataRef| {
        *m.get(&r)
            .expect("fusion rewrite: reference escapes a fused region")
    };

    for old in graph.nodes() {
        let root = root_of(old.id.0);
        let region = &members[root];
        if region.len() < 2 {
            // Untouched node: copy with remapped inputs.
            let id = NodeId(new_nodes.len());
            for port in 0..old.output_count {
                ref_map.insert(
                    DataRef::Output { node: old.id, port },
                    DataRef::Output { node: id, port },
                );
            }
            let mut copied = old.clone();
            copied.id = id;
            copied.inputs = old.inputs.iter().map(|&r| map_ref(&ref_map, r)).collect();
            new_nodes.push(copied);
            continue;
        }
        if old.id.0 != root {
            continue; // interior member: vanishes into the fused node
        }

        // Terminal member: emit the fused node at this position.
        let stage_index = |src: usize| region.iter().position(|&m| m == src);
        let mut externals: Vec<DataRef> = Vec::new();
        let mut stages: Vec<FusedStageSpec> = Vec::with_capacity(region.len());
        for &m in region {
            let node = &graph.nodes()[m];
            let operands = node
                .inputs
                .iter()
                .map(|&r| {
                    if let DataRef::Output { node: src, port: 0 } = r {
                        if let Some(j) = stage_index(src.0) {
                            if region[j] != m {
                                return FusedOperand::Stage(j);
                            }
                        }
                    }
                    let pos = externals.iter().position(|&e| e == r).unwrap_or_else(|| {
                        externals.push(r);
                        externals.len() - 1
                    });
                    FusedOperand::External(pos)
                })
                .collect();
            stages.push(FusedStageSpec {
                kind: node.kind,
                params: Box::new(node.params.clone()),
                operands,
            });
        }
        let terminal_kind = graph.nodes()[root].kind;
        let kind = if matches!(
            terminal_kind,
            PrimitiveKind::AggBlock | PrimitiveKind::HashAgg
        ) {
            PrimitiveKind::FusedAgg
        } else {
            PrimitiveKind::Fused
        };
        let output_semantic = graph.semantic_of(DataRef::Output {
            node: NodeId(root),
            port: 0,
        });
        let label = format!(
            "fused({})",
            region
                .iter()
                .map(|&m| graph.nodes()[m].label.as_str())
                .collect::<Vec<_>>()
                .join("+")
        );
        let id = NodeId(new_nodes.len());
        ref_map.insert(
            DataRef::Output {
                node: old.id,
                port: 0,
            },
            DataRef::Output { node: id, port: 0 },
        );
        let inputs = externals.iter().map(|&r| map_ref(&ref_map, r)).collect();
        new_nodes.push(PrimitiveNode {
            id,
            kind,
            params: NodeParams::Fused {
                stages,
                output_semantic,
            },
            inputs,
            output_count: 1,
            device: old.device,
            variant: None,
            label,
        });
        report.nodes_fused += region.len();
        report.fused_chains += 1;
    }

    let new_outputs = graph
        .outputs()
        .iter()
        .map(|(name, r)| (name.clone(), map_ref(&ref_map, *r)))
        .collect();
    graph.nodes = new_nodes;
    graph.outputs = new_outputs;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::pipeline::PipelineSet;
    use adamant_device::device::DeviceId;
    use adamant_task::params::{AggFunc, CmpOp, MapOp};

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    fn q6_like() -> PrimitiveGraph {
        // filter -> materialize -> agg_block over one scan.
        let mut b = GraphBuilder::new();
        let price = b.scan_input("lineitem", "price");
        let bm = b.add(
            PrimitiveKind::FilterBitmap,
            NodeParams::Filter {
                cmp: CmpOp::Lt,
                value: 10,
                hi: 0,
            },
            vec![price],
            1,
            dev(),
            "filter",
        );
        let vals = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![price, bm[0]],
            1,
            dev(),
            "mat",
        );
        let acc = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![vals[0]],
            1,
            dev(),
            "sum",
        );
        b.output("sum", acc[0]);
        b.build().unwrap()
    }

    #[test]
    fn fuses_filter_mat_agg_into_one_breaker() {
        let mut g = q6_like();
        let report = fuse_graph(&mut g);
        assert_eq!(report.fused_chains, 1);
        assert_eq!(report.nodes_fused, 3);
        assert_eq!(g.nodes().len(), 1);
        let node = &g.nodes()[0];
        assert_eq!(node.kind, PrimitiveKind::FusedAgg);
        assert!(node.kind.is_pipeline_breaker());
        let NodeParams::Fused {
            stages,
            output_semantic,
        } = &node.params
        else {
            panic!("expected fused params");
        };
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].operands, vec![FusedOperand::External(0)]);
        assert_eq!(
            stages[1].operands,
            vec![FusedOperand::External(0), FusedOperand::Stage(0)]
        );
        assert_eq!(stages[2].operands, vec![FusedOperand::Stage(1)]);
        assert_eq!(*output_semantic, DataSemantic::Numeric);
        // One external input (the shared scan column), deduped.
        assert_eq!(node.inputs, vec![DataRef::Input(0)]);
        // The graph output now points at the fused node.
        assert_eq!(
            g.outputs()[0].1,
            DataRef::Output {
                node: NodeId(0),
                port: 0
            }
        );
        // The fused graph still splits into one streaming pipeline.
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.pipelines[0].scan.as_deref(), Some("lineitem"));
        // Elided bytes: filter bitmap + materialized column, not the acc.
        let rows = 1000;
        let expect = DataContainer::estimate_output_bytes(DataSemantic::Bitmap, rows)
            + DataContainer::estimate_output_bytes(DataSemantic::Numeric, rows);
        assert_eq!(elided_bytes(&node.params, rows), expect);
    }

    #[test]
    fn shared_producer_blocks_fusion() {
        // The filter bitmap feeds two consumers: not sole-consumed, no fuse
        // across that edge; mat+agg still fuse.
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let bm = b.add(
            PrimitiveKind::FilterBitmap,
            NodeParams::Filter {
                cmp: CmpOp::Lt,
                value: 5,
                hi: 0,
            },
            vec![x],
            1,
            dev(),
            "f",
        );
        let m1 = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![x, bm[0]],
            1,
            dev(),
            "m1",
        );
        let m2 = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![x, bm[0]],
            1,
            dev(),
            "m2",
        );
        let a1 = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![m1[0]],
            1,
            dev(),
            "a1",
        );
        let a2 = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Max },
            vec![m2[0]],
            1,
            dev(),
            "a2",
        );
        b.output("s", a1[0]);
        b.output("m", a2[0]);
        let mut g = b.build().unwrap();
        let report = fuse_graph(&mut g);
        // The shared filter output is not sole-consumed, so neither edge out
        // of it fuses. m1+a1 fuse; m2+a2 do NOT: a1 is a pipeline breaker
        // that closes the "t" stream pipeline before a2 is reached, so a2
        // derives scan None while m2 derives Some("t") — exactly the
        // split-order semantics the eligibility rule replicates.
        assert_eq!(report.fused_chains, 1);
        assert_eq!(report.nodes_fused, 2);
        assert_eq!(g.nodes().len(), 4);
        assert_eq!(g.nodes()[0].kind, PrimitiveKind::FilterBitmap);
        assert_eq!(g.nodes()[1].kind, PrimitiveKind::Materialize);
        assert_eq!(g.nodes()[2].kind, PrimitiveKind::FusedAgg);
        assert_eq!(g.nodes()[3].kind, PrimitiveKind::AggBlock);
        // The fused node reads the surviving filter's output as external.
        assert!(g.nodes()[2].inputs.contains(&DataRef::Output {
            node: NodeId(0),
            port: 0
        }));
        // The rewritten graph still splits cleanly.
        PipelineSet::split(&g).unwrap();
    }

    #[test]
    fn graph_output_blocks_fusion() {
        // A chain whose intermediate is also a graph output must keep it
        // materialized.
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::MulConst,
                constant: 2,
            },
            vec![x],
            1,
            dev(),
            "dbl",
        );
        let a = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![m[0]],
            1,
            dev(),
            "sum",
        );
        b.output("doubled", m[0]);
        b.output("sum", a[0]);
        let mut g = b.build().unwrap();
        let report = fuse_graph(&mut g);
        assert_eq!(report.fused_chains, 0);
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn cross_device_edge_blocks_fusion() {
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::MulConst,
                constant: 2,
            },
            vec![x],
            1,
            DeviceId(0),
            "dbl",
        );
        let a = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![m[0]],
            1,
            DeviceId(1),
            "sum",
        );
        b.output("sum", a[0]);
        let mut g = b.build().unwrap();
        assert_eq!(fuse_graph(&mut g).fused_chains, 0);
    }

    #[test]
    fn variant_blocks_fusion() {
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let m = b.add_variant(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::MulConst,
                constant: 2,
            },
            vec![x],
            1,
            dev(),
            Some("blocked".into()),
            "dbl",
        );
        let a = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![m[0]],
            1,
            dev(),
            "sum",
        );
        b.output("sum", a[0]);
        let mut g = b.build().unwrap();
        assert_eq!(fuse_graph(&mut g).fused_chains, 0);
    }

    #[test]
    fn breaker_producer_never_fuses() {
        // prefix_sum is a breaker: its consumer cannot fuse over it.
        let mut b = GraphBuilder::new();
        let x = b.scan_input("t", "x");
        let ps = b.add(
            PrimitiveKind::PrefixSum,
            NodeParams::None,
            vec![x],
            1,
            dev(),
            "psum",
        );
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::AddConst,
                constant: 1,
            },
            vec![ps[0]],
            1,
            dev(),
            "inc",
        );
        b.output("r", m[0]);
        let mut g = b.build().unwrap();
        assert_eq!(fuse_graph(&mut g).fused_chains, 0);
    }

    #[test]
    fn scalar_program_round_trips_through_kernel_decoding() {
        let mut g = q6_like();
        fuse_graph(&mut g);
        let scalars = g.nodes()[0].params.to_scalars();
        // [3, filter(2,1op,0,3p,...), mat(5,2ops,0,-1,0p), agg(8,1op,-2,1p,..)]
        assert_eq!(scalars[0], 3);
        assert_eq!(scalars[1], PrimitiveKind::FilterBitmap.op_code());
        let saved = fused_saved_ns(
            &CostModel::default(),
            match &g.nodes()[0].params {
                NodeParams::Fused { stages, .. } => stages,
                _ => unreachable!(),
            },
            &[
                (CostClass::FilterBitmap, 1000),
                (CostClass::MaterializeBitmap, 1000),
                (CostClass::ReduceLike, 500),
            ],
            2 + scalars.len(),
        );
        assert!(saved > 0.0, "fusion must model a saving, got {saved}");
    }
}
