//! Execution statistics — the quantities the paper's figures report.

use adamant_device::health::HealthSnapshot;
use std::collections::BTreeMap;

/// Statistics of one query execution.
///
/// All `*_ns` fields are **modeled** times from the device cost models
/// (deterministic, hardware-independent); `wall_ns` is the real wall clock
/// of the simulation itself.
#[derive(Clone, Debug, Default)]
pub struct ExecutionStats {
    /// Execution model name.
    pub model: String,
    /// Total modeled elapsed time (makespan under the model's overlap
    /// policy). The y-axis of Fig. 11.
    pub total_ns: f64,
    /// Modeled time spent on transfers (serial sum, both directions).
    pub transfer_ns: f64,
    /// Modeled time spent in kernels (serial sum).
    pub compute_ns: f64,
    /// Modeled time in allocation/free/transform/compile operations.
    pub other_ns: f64,
    /// Modeled kernel time per node label (Fig. 10's "sum of processing
    /// time of the individual primitives").
    pub per_primitive_ns: BTreeMap<String, f64>,
    /// Bytes moved host→device.
    pub bytes_h2d: u64,
    /// Bytes moved device→host.
    pub bytes_d2h: u64,
    /// Peak device-memory usage per device name (Fig. 7-right).
    pub peak_device_bytes: BTreeMap<String, u64>,
    /// Device-memory usage after each primitive execution, in order
    /// (`(label, bytes)`), for the Fig. 7-right footprint trace.
    pub memory_trace: Vec<(String, u64)>,
    /// Number of chunks processed across all streaming pipelines.
    pub chunks_processed: usize,
    /// Number of pipelines executed.
    pub pipelines: usize,
    /// Pipeline attempts that failed and were retried (any recovery kind).
    pub retries: usize,
    /// Retries where the streaming chunk size was halved after a device
    /// out-of-memory error.
    pub chunk_backoffs: usize,
    /// Retries where a pipeline was re-placed onto a fallback device after
    /// a persistent kernel failure or missing implementation.
    pub fallback_placements: usize,
    /// Chunk-size regrowths: the backed-off streaming chunk size was doubled
    /// back toward the configured value after sustained success.
    pub chunk_regrowths: usize,
    /// Device circuit breakers tripped (`Closed → Open`, or a failed
    /// `HalfOpen` probe re-opening) during this run.
    pub breaker_trips: usize,
    /// Times a quarantined device was skipped: pipelines moved off `Open`
    /// devices at placement time plus hub transfers re-sourced away from
    /// quarantined holders.
    pub quarantine_skips: usize,
    /// `HalfOpen` probes that succeeded and restored a device to `Closed`.
    pub probe_successes: usize,
    /// Per-`(device, kernel)` circuit breakers tripped during this run (a
    /// kernel quarantined without quarantining its device).
    pub kernel_breaker_trips: usize,
    /// `HalfOpen` kernel probes that succeeded and restored a
    /// `(device, kernel)` breaker to `Closed`.
    pub kernel_probe_successes: usize,
    /// Runs aborted because the simulated-timeline deadline was exceeded.
    pub deadline_aborts: usize,
    /// Chunk executions whose modeled duration overran the watchdog budget
    /// (the cost model's fault-free expectation times the configured
    /// multiplier).
    pub watchdog_fires: usize,
    /// Hedged duplicate chunk executions launched on an alternate device
    /// after a watchdog fired.
    pub hedged_launches: usize,
    /// Hedged duplicates that finished ahead of the straggling primary and
    /// supplied the chunk's modeled completion time.
    pub hedge_wins: usize,
    /// Host↔device transfers retransmitted after an end-to-end checksum
    /// mismatch (silent corruption caught and repaired by the hub).
    pub corruption_retransmits: usize,
    /// Inputs served from a cross-query residency-cache pin created by an
    /// earlier run (first touch per run per `(device, input)`).
    pub cache_hits: usize,
    /// First-touch residency-cache lookups that found no usable pin.
    pub cache_misses: usize,
    /// Residency-cache entries evicted for budget or admission pressure.
    pub cache_evictions: usize,
    /// Residency-cache entries dropped by fault recovery or staleness.
    pub cache_invalidations: usize,
    /// Bytes the residency cache holds pinned device-side after this run.
    pub cache_pinned_bytes: u64,
    /// Modeled host→device nanoseconds the residency cache avoided (whole
    /// hits plus chunk stagings served device-internally).
    pub cache_saved_transfer_ns: f64,
    /// Rollback `delete_memory` failures that were *not* the tolerated
    /// died-mid-allocation case — real double-free/accounting bugs that
    /// would previously have been swallowed silently.
    pub rollback_delete_errors: usize,
    /// Devices that died permanently mid-run (first `Gone` observed) and
    /// were unplugged by the membership recovery path.
    pub device_deaths: usize,
    /// Buffers written off a dead device's hub bookkeeping without calling
    /// into it (the corpse keeps no reachable state).
    pub buffers_written_off: usize,
    /// Bytes of input lost with a dead device that were re-staged onto
    /// survivors from host copies during recovery.
    pub restaged_bytes: u64,
    /// Devices hot-added (through the health registry's `HalfOpen` probe
    /// ramp) since the previous run.
    pub hot_adds: usize,
    /// Query checkpoints captured (pipeline-boundary + chunk-interval
    /// snapshots the cost policy accepted).
    pub checkpoints_taken: usize,
    /// Payload bytes across all captured snapshots (host accumulations plus
    /// retrieved breaker-accumulator copies).
    pub checkpoint_bytes: u64,
    /// Recoveries that resumed from a validated checkpoint instead of
    /// restarting from row 0.
    pub resumes: usize,
    /// Streamed chunks a resume skipped re-executing (work the latest
    /// checkpoint preserved).
    pub chunks_skipped_on_resume: usize,
    /// Recoveries that wanted to resume but found the latest checkpoint
    /// failing validation (or impossible to restore) and degraded to a full
    /// restart from row 0.
    pub resume_validation_failures: usize,
    /// Original graph nodes the fusion pass merged into fused nodes (stage
    /// count summed over all fused chains).
    pub nodes_fused: usize,
    /// Fused chains the fusion pass created (one fused node each).
    pub fused_chains: usize,
    /// Bytes of non-breaker intermediate output buffers this run actually
    /// materialized through the hub (sizing per
    /// `DataContainer::estimate_output_bytes`, whole-mode per node, streaming
    /// per chunk).
    pub intermediate_bytes: u64,
    /// Bytes of interior intermediates fused chains *avoided* materializing
    /// — what the same run would have added to `intermediate_bytes` with
    /// fusion off.
    pub intermediates_elided_bytes: u64,
    /// Modeled nanoseconds fused kernels saved over executing their stages
    /// as individual launches (per-stage launch overhead plus undiscounted
    /// bodies, minus the fused price).
    pub fusion_saved_transfer_ns: f64,
    /// Modeled duration of each interleavable slice of device time this run
    /// produced, in execution order: one entry per streamed chunk, one per
    /// whole-mode node. The multi-query scheduler replays these on the
    /// shared timeline; not exported to JSON (unbounded length).
    pub slice_ns: Vec<f64>,
    /// Per-device health snapshot (breaker state, failure counts, current
    /// placement penalty) at the end of this run, keyed by device name.
    /// Deterministic ordering for reproducible reports.
    pub device_health: BTreeMap<String, HealthSnapshot>,
    /// Faults injected per device name during this run (only devices with a
    /// non-zero count appear). Deterministic ordering for reproducible
    /// reports.
    pub device_faults: BTreeMap<String, u64>,
    /// Real wall-clock nanoseconds of the simulated run.
    pub wall_ns: u64,
}

impl ExecutionStats {
    /// Sum of per-primitive kernel times.
    pub fn primitive_total_ns(&self) -> f64 {
        self.per_primitive_ns.values().sum()
    }

    /// The abstraction-layer overhead of Fig. 10: total execution time minus
    /// the sum of the individual primitives' processing times.
    pub fn overhead_ns(&self) -> f64 {
        (self.total_ns - self.primitive_total_ns()).max(0.0)
    }

    /// Overhead as a fraction of total time.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_ns > 0.0 {
            self.overhead_ns() / self.total_ns
        } else {
            0.0
        }
    }

    /// Total modeled time in milliseconds (convenience for reports).
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Adds a kernel-time sample for a node label.
    pub fn record_primitive(&mut self, label: &str, ns: f64) {
        *self
            .per_primitive_ns
            .entry(label.to_string())
            .or_insert(0.0) += ns;
    }

    /// Serializes the stats to a JSON object string (hand-rolled — the
    /// experiment harness archives run records without a format crate).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let per_primitive: Vec<String> = self
            .per_primitive_ns
            .iter()
            .map(|(k, v)| format!("\"{}\":{:.1}", esc(k), v))
            .collect();
        let peaks: Vec<String> = self
            .peak_device_bytes
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
            .collect();
        let faults: Vec<String> = self
            .device_faults
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
            .collect();
        let health: Vec<String> = self
            .device_health
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{}\":{{\"state\":\"{}\",\"kernel_failures\":{},\"ooms\":{},\
                     \"retry_penalty_ns\":{:.1},\"open_kernels\":{},\
                     \"latency_overruns\":{},\"corruptions\":{}}}",
                    esc(k),
                    h.state.label(),
                    h.kernel_failures,
                    h.ooms,
                    h.retry_penalty_ns,
                    h.open_kernels,
                    h.latency_overruns,
                    h.corruptions,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"model\":\"{}\",\"total_ns\":{:.1},\"transfer_ns\":{:.1},",
                "\"compute_ns\":{:.1},\"other_ns\":{:.1},\"overhead_ns\":{:.1},",
                "\"bytes_h2d\":{},\"bytes_d2h\":{},\"chunks\":{},\"pipelines\":{},",
                "\"retries\":{},\"chunk_backoffs\":{},\"fallback_placements\":{},",
                "\"chunk_regrowths\":{},\"breaker_trips\":{},\"quarantine_skips\":{},",
                "\"probe_successes\":{},\"kernel_breaker_trips\":{},",
                "\"kernel_probe_successes\":{},\"deadline_aborts\":{},",
                "\"watchdog_fires\":{},\"hedged_launches\":{},\"hedge_wins\":{},",
                "\"corruption_retransmits\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},",
                "\"cache_invalidations\":{},\"cache_pinned_bytes\":{},",
                "\"cache_saved_transfer_ns\":{:.1},\"rollback_delete_errors\":{},",
                "\"device_deaths\":{},\"buffers_written_off\":{},",
                "\"restaged_bytes\":{},\"hot_adds\":{},",
                "\"checkpoints_taken\":{},\"checkpoint_bytes\":{},\"resumes\":{},",
                "\"chunks_skipped_on_resume\":{},\"resume_validation_failures\":{},",
                "\"nodes_fused\":{},\"fused_chains\":{},\"intermediate_bytes\":{},",
                "\"intermediates_elided_bytes\":{},\"fusion_saved_transfer_ns\":{:.1},",
                "\"wall_ns\":{},\"per_primitive_ns\":{{{}}},\"peak_device_bytes\":{{{}}},",
                "\"device_faults\":{{{}}},\"device_health\":{{{}}}}}"
            ),
            esc(&self.model),
            self.total_ns,
            self.transfer_ns,
            self.compute_ns,
            self.other_ns,
            self.overhead_ns(),
            self.bytes_h2d,
            self.bytes_d2h,
            self.chunks_processed,
            self.pipelines,
            self.retries,
            self.chunk_backoffs,
            self.fallback_placements,
            self.chunk_regrowths,
            self.breaker_trips,
            self.quarantine_skips,
            self.probe_successes,
            self.kernel_breaker_trips,
            self.kernel_probe_successes,
            self.deadline_aborts,
            self.watchdog_fires,
            self.hedged_launches,
            self.hedge_wins,
            self.corruption_retransmits,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_invalidations,
            self.cache_pinned_bytes,
            self.cache_saved_transfer_ns,
            self.rollback_delete_errors,
            self.device_deaths,
            self.buffers_written_off,
            self.restaged_bytes,
            self.hot_adds,
            self.checkpoints_taken,
            self.checkpoint_bytes,
            self.resumes,
            self.chunks_skipped_on_resume,
            self.resume_validation_failures,
            self.nodes_fused,
            self.fused_chains,
            self.intermediate_bytes,
            self.intermediates_elided_bytes,
            self.fusion_saved_transfer_ns,
            self.wall_ns,
            per_primitive.join(","),
            peaks.join(","),
            faults.join(","),
            health.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let mut s = ExecutionStats {
            total_ns: 100.0,
            ..Default::default()
        };
        s.record_primitive("filter", 30.0);
        s.record_primitive("agg", 40.0);
        s.record_primitive("filter", 10.0);
        assert_eq!(s.primitive_total_ns(), 80.0);
        assert_eq!(s.overhead_ns(), 20.0);
        assert!((s.overhead_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.per_primitive_ns["filter"], 40.0);
    }

    #[test]
    fn overhead_clamps_at_zero() {
        let mut s = ExecutionStats {
            total_ns: 10.0,
            ..Default::default()
        };
        s.record_primitive("k", 50.0);
        assert_eq!(s.overhead_ns(), 0.0);
        let empty = ExecutionStats::default();
        assert_eq!(empty.overhead_fraction(), 0.0);
    }

    #[test]
    fn unit_helpers() {
        let s = ExecutionStats {
            total_ns: 2_500_000.0,
            ..Default::default()
        };
        assert!((s.total_ms() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut s = ExecutionStats {
            model: "chunked".into(),
            total_ns: 123.0,
            bytes_h2d: 42,
            ..Default::default()
        };
        s.record_primitive("filter \"x\"", 10.0);
        s.peak_device_bytes.insert("gpu0".into(), 2048);
        s.retries = 3;
        s.chunk_backoffs = 2;
        s.fallback_placements = 1;
        s.chunk_regrowths = 4;
        s.breaker_trips = 1;
        s.quarantine_skips = 2;
        s.probe_successes = 1;
        s.kernel_breaker_trips = 2;
        s.kernel_probe_successes = 1;
        s.deadline_aborts = 1;
        s.watchdog_fires = 3;
        s.hedged_launches = 2;
        s.hedge_wins = 1;
        s.corruption_retransmits = 4;
        s.cache_hits = 6;
        s.cache_misses = 2;
        s.cache_evictions = 1;
        s.cache_invalidations = 3;
        s.cache_pinned_bytes = 4096;
        s.cache_saved_transfer_ns = 987.6;
        s.rollback_delete_errors = 1;
        s.device_deaths = 1;
        s.buffers_written_off = 5;
        s.restaged_bytes = 8192;
        s.hot_adds = 2;
        s.checkpoints_taken = 3;
        s.checkpoint_bytes = 512;
        s.resumes = 1;
        s.chunks_skipped_on_resume = 7;
        s.resume_validation_failures = 1;
        s.nodes_fused = 3;
        s.fused_chains = 1;
        s.intermediate_bytes = 16384;
        s.intermediates_elided_bytes = 12288;
        s.fusion_saved_transfer_ns = 456.7;
        s.device_faults.insert("gpu0".into(), 5);
        s.device_health.insert(
            "gpu0".into(),
            HealthSnapshot {
                state: adamant_device::health::BreakerState::Open { cooldown_left: 2 },
                kernel_failures: 2,
                ooms: 1,
                retry_penalty_ns: 123.45,
                open_kernels: 1,
                latency_overruns: 6,
                corruptions: 7,
            },
        );
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"model\":\"chunked\""));
        assert!(json.contains("\"bytes_h2d\":42"));
        assert!(json.contains("\"gpu0\":2048"));
        assert!(json.contains("\"retries\":3"));
        assert!(json.contains("\"chunk_backoffs\":2"));
        assert!(json.contains("\"fallback_placements\":1"));
        assert!(json.contains("\"chunk_regrowths\":4"));
        assert!(json.contains("\"breaker_trips\":1"));
        assert!(json.contains("\"quarantine_skips\":2"));
        assert!(json.contains("\"probe_successes\":1"));
        assert!(json.contains("\"kernel_breaker_trips\":2"));
        assert!(json.contains("\"kernel_probe_successes\":1"));
        assert!(json.contains("\"deadline_aborts\":1"));
        assert!(json.contains("\"watchdog_fires\":3"));
        assert!(json.contains("\"hedged_launches\":2"));
        assert!(json.contains("\"hedge_wins\":1"));
        assert!(json.contains("\"corruption_retransmits\":4"));
        assert!(json.contains("\"cache_hits\":6"));
        assert!(json.contains("\"cache_misses\":2"));
        assert!(json.contains("\"cache_evictions\":1"));
        assert!(json.contains("\"cache_invalidations\":3"));
        assert!(json.contains("\"cache_pinned_bytes\":4096"));
        assert!(json.contains("\"cache_saved_transfer_ns\":987.6"));
        assert!(json.contains("\"rollback_delete_errors\":1"));
        assert!(json.contains("\"device_deaths\":1"));
        assert!(json.contains("\"buffers_written_off\":5"));
        assert!(json.contains("\"restaged_bytes\":8192"));
        assert!(json.contains("\"hot_adds\":2"));
        assert!(json.contains("\"checkpoints_taken\":3"));
        assert!(json.contains("\"checkpoint_bytes\":512"));
        assert!(json.contains("\"resumes\":1"));
        assert!(json.contains("\"chunks_skipped_on_resume\":7"));
        assert!(json.contains("\"resume_validation_failures\":1"));
        assert!(json.contains("\"nodes_fused\":3"));
        assert!(json.contains("\"fused_chains\":1"));
        assert!(json.contains("\"intermediate_bytes\":16384"));
        assert!(json.contains("\"intermediates_elided_bytes\":12288"));
        assert!(json.contains("\"fusion_saved_transfer_ns\":456.7"));
        assert!(json.contains("\"device_faults\":{\"gpu0\":5}"));
        assert!(json.contains(
            "\"device_health\":{\"gpu0\":{\"state\":\"open\",\"kernel_failures\":2,\
             \"ooms\":1,\"retry_penalty_ns\":123.5,\"open_kernels\":1,\
             \"latency_overruns\":6,\"corruptions\":7}}"
        ));
        // Quotes in labels are escaped.
        assert!(json.contains("filter \\\"x\\\""));
        // Balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
