//! The query executor: binds a primitive graph to devices and runs it under
//! an execution model.
//!
//! One engine implements all five models (paper §IV), parameterized by
//! [`crate::models::ModelConfig`]: operator-at-a-time places
//! whole inputs; the chunked family streams scan chunks through each
//! pipeline, optionally staging in pinned memory (4-phase) and optionally
//! overlapping the copy with compute on a real transfer thread synchronized
//! by `fetched_until`/`processed_until` counters (Algorithm 2).

use crate::checkpoint::{CheckpointConfig, QueryCheckpoint};
use crate::error::{ExecError, Result};
use crate::graph::{DataRef, NodeId, PrimitiveGraph, PrimitiveNode};
use crate::hub::{DataTransferHub, HostAccum};
use crate::models::{ExecutionModel, ModelConfig};
use crate::pipeline::{Pipeline, PipelineSet};
use crate::residency::{ResidencyCache, ResidencyConfig};
use crate::result::{OutputData, QueryOutput};
use crate::stats::ExecutionStats;
use crate::timeline::{overlapped_makespan, ChunkCost};
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::clock::Lane;
use adamant_device::device::{Device, DeviceId};
use adamant_device::health::{DeviceHealthRegistry, FailureVerdict, HealthPolicy};
use adamant_device::kernel::ExecuteSpec;
use adamant_device::profiles::DeviceProfile;
use adamant_device::registry::DeviceRegistry;
use adamant_storage::column::Column;
use adamant_task::primitive::PrimitiveKind;
use adamant_task::registry::TaskRegistry;
use adamant_task::semantics::DataSemantic;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Rows per chunk for the chunked execution models (the paper uses
    /// 2^25 four-byte values; scale together with your data).
    pub chunk_rows: usize,
    /// How the executor recovers from device faults mid-query.
    pub retry: RetryPolicy,
    /// Simulated-timeline budget per query, in modeled nanoseconds. The
    /// streaming loops check it between chunks and the recovery loop before
    /// each attempt; exceeding it unwinds the attempt like the OOM path and
    /// returns [`ExecError::DeadlineExceeded`]. `None` disables the check.
    pub deadline_ns: Option<f64>,
    /// Straggler watchdog: a streamed chunk whose modeled duration exceeds
    /// this multiple of its fault-free cost-model expectation trips the
    /// watchdog — the overrun is fed to the health registry's latency
    /// tracking, and a hedged duplicate of the chunk is raced on the best
    /// alternate device (first completion wins; the loser's allocations are
    /// reclaimed). `None` disables watchdogs and hedging.
    pub watchdog_multiplier: Option<f64>,
    /// Partial-progress checkpoints: when enabled, the executor snapshots
    /// query progress at pipeline-breaker and chunk-interval boundaries and
    /// heavyweight recovery (device death, exhausted retries) resumes from
    /// the last validated snapshot instead of restarting from row 0.
    pub checkpoints: CheckpointConfig,
    /// Whether the fusion pass rewrites eligible primitive chains into fused
    /// nodes before pipeline splitting (DESIGN.md §16). On by default;
    /// results are reference-exact either way.
    pub fusion: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            chunk_rows: 1 << 20,
            retry: RetryPolicy::default(),
            deadline_ns: None,
            watchdog_multiplier: Some(3.0),
            checkpoints: CheckpointConfig::default(),
            fusion: true,
        }
    }
}

/// Recovery policy for pipeline execution.
///
/// A failed pipeline attempt is rolled back (buffers freed, partial host
/// accumulations discarded) and retried according to the error class:
///
/// * device out-of-memory → the streaming chunk size is halved before the
///   retry (down to [`RetryPolicy::min_chunk_rows`]);
/// * a kernel that fails twice in a row on the same device → the
///   pipeline's nodes on that device are re-placed onto another device
///   with the primitive installed;
/// * a missing implementation → immediate re-placement (or the original
///   error when no capable device exists).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per pipeline, including the first (so 1 disables
    /// recovery entirely).
    pub max_attempts: usize,
    /// Whether pipelines may be re-placed onto a fallback device.
    pub allow_fallback: bool,
    /// Smallest chunk size the out-of-memory backoff will reach.
    pub min_chunk_rows: usize,
    /// After this many consecutive successful chunks at a backed-off size,
    /// the streaming chunk size doubles back toward the configured
    /// `chunk_rows` (never above it). `0` disables regrowth.
    pub regrow_after_chunks: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            allow_fallback: true,
            min_chunk_rows: 1,
            regrow_after_chunks: 4,
        }
    }
}

/// Cooperative cancellation token for [`Executor::run_with_cancel`].
///
/// Clone it, hand one copy to the run and keep the other; calling
/// [`CancelToken::cancel`] from anywhere (another thread, a timeout watcher)
/// makes the run unwind at its next between-chunks check and return
/// [`ExecError::Cancelled`] with all buffers released.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-run deadline + cancellation bundle threaded through the execution
/// loops.
struct RunControl {
    deadline_ns: Option<f64>,
    cancel: CancelToken,
}

impl RunControl {
    /// Cooperative check: called between chunks, between whole-mode nodes
    /// and before each recovery attempt, with the modeled time spent so far.
    fn check(&self, spent_ns: f64, stats: &mut ExecutionStats) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if let Some(budget_ns) = self.deadline_ns {
            if spent_ns > budget_ns {
                stats.deadline_aborts += 1;
                return Err(ExecError::DeadlineExceeded {
                    budget_ns,
                    spent_ns,
                });
            }
        }
        Ok(())
    }
}

/// Deterministic chunk-size schedule for one streaming attempt.
///
/// A failed chunk unwinds the whole attempt, so every chunk an attempt
/// processes succeeded and "after K consecutive successful chunks" is a
/// pure function of the chunk index: starting from a (possibly backed-off)
/// `start`, the size doubles every `regrow_after` chunks, capped at the
/// configured size. The transfer thread and the execute thread evaluate
/// the same schedule independently — no shared mutable size — so chunk
/// boundaries, and every stat derived from them, are identical under any
/// thread interleaving.
#[derive(Clone, Copy)]
struct ChunkSchedule {
    start: usize,
    configured: usize,
    regrow_after: usize,
}

impl ChunkSchedule {
    /// Rows for the `chunk`-th (0-based) chunk of the attempt.
    fn rows_for(&self, chunk: usize) -> usize {
        let mut size = self.start.max(1);
        if self.regrow_after == 0 {
            return size;
        }
        for _ in 0..(chunk / self.regrow_after) {
            if size >= self.configured {
                break;
            }
            size = (size * 2).min(self.configured);
        }
        size
    }

    /// True when `chunk` is the first chunk of a regrown group (each
    /// doubling is counted once, and only if a chunk actually runs at the
    /// new size).
    fn regrows_at(&self, chunk: usize) -> bool {
        chunk > 0 && self.rows_for(chunk) > self.rows_for(chunk - 1)
    }
}

/// Host columns bound to graph inputs, shareable with the transfer thread.
#[derive(Clone, Debug, Default)]
pub struct QueryInputs {
    cols: BTreeMap<String, Arc<Vec<i64>>>,
}

impl QueryInputs {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        QueryInputs::default()
    }

    /// Binds a raw vector.
    pub fn bind(&mut self, name: impl Into<String>, values: Vec<i64>) {
        self.cols.insert(name.into(), Arc::new(values));
    }

    /// Binds a storage column (widened to `i64`; dictionary columns bind
    /// their codes).
    pub fn bind_column(&mut self, name: impl Into<String>, column: &Column) -> Result<()> {
        self.cols
            .insert(name.into(), Arc::new(column.to_i64_vec()?));
        Ok(())
    }

    /// Looks up a bound column.
    pub fn get(&self, name: &str) -> Option<&Arc<Vec<i64>>> {
        self.cols.get(name)
    }

    /// Number of bound columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Iterates bound `(name, column)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Vec<i64>>)> {
        self.cols.iter().map(|(n, c)| (n.as_str(), c))
    }
}

/// The ADAMANT executor: plugged devices + task registry + configuration,
/// plus the cross-query [`DeviceHealthRegistry`] that feeds placement.
pub struct Executor {
    devices: DeviceRegistry,
    tasks: TaskRegistry,
    config: ExecutorConfig,
    health: DeviceHealthRegistry,
    last_stats: Option<ExecutionStats>,
    residency: Option<ResidencyCache>,
    /// Devices hot-added since the last run; drained into
    /// [`ExecutionStats::hot_adds`] by the next run.
    pending_hot_adds: usize,
}

impl Executor {
    /// Creates an executor around a task registry.
    pub fn new(tasks: TaskRegistry, config: ExecutorConfig) -> Self {
        Executor {
            devices: DeviceRegistry::new(),
            tasks,
            config,
            health: DeviceHealthRegistry::default(),
            last_stats: None,
            residency: None,
            pending_hot_adds: 0,
        }
    }

    /// Plugs a device and installs every matching kernel on it.
    pub fn add_device(&mut self, device: Box<dyn Device>) -> Result<DeviceId> {
        let id = self.devices.add(device);
        let dev = self.devices.get_mut(id)?;
        self.tasks.install_on(dev.as_mut())?;
        Ok(id)
    }

    /// Convenience: builds and plugs a device from a profile.
    pub fn add_profile(&mut self, profile: &DeviceProfile) -> Result<DeviceId> {
        // The id baked into the built device matches the one the registry
        // will assign. Ids are never reused after a removal, so this must
        // come from the registry, not from counting live devices.
        let next = self.devices.peek_next_id();
        self.add_device(Box::new(profile.build(next)))
    }

    /// Hot-adds a device between runs. Unlike [`Executor::add_device`], the
    /// newcomer enters through the health registry in `HalfOpen`, so it
    /// earns traffic via the existing probe ramp (one probe pipeline per
    /// query until a success closes the breaker) instead of instantly
    /// absorbing load the engine knows nothing about. Placement and the
    /// cost model pick it up on the next run without any rebuild.
    pub fn attach_device(&mut self, device: Box<dyn Device>) -> Result<DeviceId> {
        let id = self.devices.add(device);
        let dev = self.devices.get_mut(id)?;
        self.tasks.install_on(dev.as_mut())?;
        self.health.admit_half_open(id);
        self.pending_hot_adds += 1;
        Ok(id)
    }

    /// Convenience: builds and hot-adds a device from a profile (see
    /// [`Executor::attach_device`]).
    pub fn attach_profile(&mut self, profile: &DeviceProfile) -> Result<DeviceId> {
        let next = self.devices.peek_next_id();
        self.attach_device(Box::new(profile.build(next)))
    }

    /// Administratively unplugs a healthy device between runs, returning
    /// it. Residency pins on it are evicted cleanly (buffers freed,
    /// admission charges released — the device is alive, unlike the
    /// mid-query death path), and its health records are dropped so no
    /// ghost entries survive into reports.
    pub fn detach_device(&mut self, id: DeviceId) -> Option<Box<dyn Device>> {
        if let Some(cache) = self.residency.as_mut() {
            cache.invalidate_device(&mut self.devices, id);
            cache.take_freed();
        }
        self.health.forget_device(id);
        self.devices.remove(id)
    }

    /// The plugged devices.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Mutable device access (benches tweak cost models between runs).
    pub fn devices_mut(&mut self) -> &mut DeviceRegistry {
        &mut self.devices
    }

    /// The task registry.
    pub fn tasks(&self) -> &TaskRegistry {
        &self.tasks
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Sets the chunk size (rows).
    pub fn set_chunk_rows(&mut self, rows: usize) {
        self.config.chunk_rows = rows.max(1);
    }

    /// Sets the recovery policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.config.retry = retry;
    }

    /// Sets (or clears) the per-query simulated-timeline deadline.
    pub fn set_deadline_ns(&mut self, deadline_ns: Option<f64>) {
        self.config.deadline_ns = deadline_ns;
    }

    /// Sets (or disables, with `None`) the straggler-watchdog multiplier.
    ///
    /// Values below `1.0` would trip on every chunk, so they are clamped up
    /// to `1.0`.
    pub fn set_watchdog_multiplier(&mut self, multiplier: Option<f64>) {
        self.config.watchdog_multiplier = multiplier.map(|m| m.max(1.0));
    }

    /// Replaces the health policy (breaker thresholds, cool-down length).
    /// Recorded health is kept.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health.set_policy(policy);
    }

    /// The cross-query device health registry, read-only.
    pub fn health(&self) -> &DeviceHealthRegistry {
        &self.health
    }

    /// Mutable health registry access (tests force breaker states; callers
    /// may `reset()` it between experiments).
    pub fn health_mut(&mut self) -> &mut DeviceHealthRegistry {
        &mut self.health
    }

    /// Statistics of the most recent run, kept even when the run failed —
    /// the only way to observe breaker trips and deadline aborts of a query
    /// that returned an error.
    pub fn last_run_stats(&self) -> Option<&ExecutionStats> {
        self.last_stats.as_ref()
    }

    /// Installs a fault plan on one device (testing / chaos runs).
    pub fn set_fault_plan(
        &mut self,
        device: DeviceId,
        plan: adamant_device::FaultPlan,
    ) -> Result<()> {
        self.devices.get_mut(device)?.set_fault_plan(plan);
        Ok(())
    }

    /// Enables the cross-query residency cache: hot input columns stay
    /// pinned device-side between runs (up to `config.max_bytes_per_device`
    /// per device), with LRU-by-modeled-transfer-cost eviction. Replaces
    /// any previous cache, freeing its pins.
    pub fn set_residency_cache(&mut self, config: ResidencyConfig) {
        self.clear_residency();
        self.residency = Some(ResidencyCache::new(config));
    }

    /// The residency cache, if enabled (read-only; counters and pins).
    pub fn residency_cache(&self) -> Option<&ResidencyCache> {
        self.residency.as_ref()
    }

    /// Drops the residency cache and frees every pinned buffer it holds,
    /// releasing the admission bytes reserved against each device pool.
    pub fn clear_residency(&mut self) {
        if let Some(mut cache) = self.residency.take() {
            cache.clear(&mut self.devices);
        }
    }

    /// Evicts residency pins on `device` until at least `bytes` of
    /// admission budget is available (or no pins remain). Returns the bytes
    /// freed. The scheduler's reservation ledger calls this before failing
    /// an admission so cache pins always yield to query reservations —
    /// pins can starve, admissions cannot.
    pub fn evict_residency_for_admission(&mut self, device: DeviceId, bytes: u64) -> u64 {
        match self.residency.as_mut() {
            Some(cache) => cache.evict_for_admission(&mut self.devices, device, bytes),
            None => 0,
        }
    }

    /// Bytes of residency pins on `device` that admission pressure could
    /// reclaim.
    pub fn residency_evictable_bytes(&self, device: DeviceId) -> u64 {
        self.residency
            .as_ref()
            .map_or(0, |c| c.pinned_bytes_on(device))
    }

    /// Bytes of `inputs` already resident on `device` via the cache —
    /// transfers the next run of this query would not pay. Placement uses
    /// this to discount modeled transfer cost for cache-warm devices.
    pub fn residency_resident_bytes(&self, device: DeviceId, inputs: &QueryInputs) -> u64 {
        let Some(cache) = self.residency.as_ref() else {
            return 0;
        };
        inputs
            .iter()
            .map(|(name, col)| cache.resident_bytes(device, name, col))
            .sum()
    }

    /// Executes `graph` over `inputs` under `model`.
    ///
    /// Returns exact query outputs plus the modeled execution statistics.
    pub fn run(
        &mut self,
        graph: &PrimitiveGraph,
        inputs: &QueryInputs,
        model: ExecutionModel,
    ) -> Result<(QueryOutput, ExecutionStats)> {
        self.run_with_cancel(graph, inputs, model, &CancelToken::new())
    }

    /// Like [`Executor::run`], under a [`CancelToken`]: cancelling from
    /// another thread unwinds the run between chunks (buffers released, ids
    /// untracked) and returns [`ExecError::Cancelled`].
    pub fn run_with_cancel(
        &mut self,
        graph: &PrimitiveGraph,
        inputs: &QueryInputs,
        model: ExecutionModel,
        cancel: &CancelToken,
    ) -> Result<(QueryOutput, ExecutionStats)> {
        self.run_with_deadline(graph, inputs, model, cancel, self.config.deadline_ns)
    }

    /// Like [`Executor::run_with_cancel`] with a per-query deadline override
    /// replacing [`ExecutorConfig::deadline_ns`] for this run only. The
    /// multi-query scheduler uses this to pass each query's *remaining*
    /// budget rather than a global one.
    pub fn run_with_deadline(
        &mut self,
        graph: &PrimitiveGraph,
        inputs: &QueryInputs,
        model: ExecutionModel,
        cancel: &CancelToken,
        deadline_ns: Option<f64>,
    ) -> Result<(QueryOutput, ExecutionStats)> {
        let wall = Instant::now();
        // Work on a private copy: recovery may re-place nodes onto fallback
        // devices, and the caller's graph must not change under them.
        let mut graph = graph.clone();
        // Fuse eligible chains before splitting: fused nodes enter pipeline
        // assignment, placement, checkpointing and the watchdog as ordinary
        // primitives, so every downstream policy prices the fused unit.
        let fusion_report = if self.config.fusion {
            crate::fusion::fuse_graph(&mut graph)
        } else {
            crate::fusion::FusionReport::default()
        };
        let pipelines = PipelineSet::split(&graph)?;
        self.validate_inputs(&graph, inputs)?;

        // Fresh clocks and peak watermarks for this run; snapshot the fault
        // counters so the stats report this run's injections only.
        let mut fault_base: BTreeMap<DeviceId, u64> = BTreeMap::new();
        for id in self.devices.ids() {
            let dev = self.devices.get_mut(id)?;
            dev.clock_mut().reset();
            fault_base.insert(id, dev.fault_counters().total());
        }

        let cfg = model.config();
        let mut hub = DataTransferHub::new();
        // The hub verifies every host↔device transfer end-to-end; a corrupted
        // transfer gets as many retransmissions as the retry policy grants
        // attempts before the error surfaces to the recovery loop.
        hub.set_retransmit_budget(
            u32::try_from(self.config.retry.max_attempts).unwrap_or(u32::MAX),
        );
        let mut stats = ExecutionStats {
            model: model.name().to_string(),
            pipelines: pipelines.len(),
            hot_adds: std::mem::take(&mut self.pending_hot_adds),
            nodes_fused: fusion_report.nodes_fused,
            fused_chains: fusion_report.fused_chains,
            ..Default::default()
        };
        // Health-aware placement repair: move pipelines off quarantined
        // devices, admit at most one half-open probe, and tell the hub which
        // devices to avoid as transfer sources.
        self.apply_health_placement(&mut graph, &pipelines, &mut stats);
        hub.set_quarantined(self.health.quarantined_ids().into_iter().collect());
        // Lend the cross-query residency cache to this run's hub. Pins on
        // quarantined devices are invalidated up front — a tripped device's
        // contents are not trusted, and holding the pins would leak their
        // admission charge if the device later resets.
        if let Some(mut cache) = self.residency.take() {
            for dev in self.health.quarantined_ids() {
                cache.invalidate_device(&mut self.devices, dev);
            }
            hub.install_cache(cache);
        }
        let control = RunControl {
            deadline_ns,
            cancel: cancel.clone(),
        };
        let mut tally = Tally::default();
        let escaping = escaping_refs(&graph, &pipelines);

        // Graph-level restart loop: a permanent device death (`Gone`)
        // unwinds the whole run — the corpse's buffers are written off, the
        // survivors rolled back, pipelines re-placed — and the query either
        // resumes from the last validated checkpoint (when enabled and one
        // exists) or restarts from row 0 on the remaining devices. The bound
        // is recomputed from the live registry after every death: each
        // restart retires exactly one device, so the loop still terminates,
        // but devices hot-added via `attach_device` since the run began
        // extend the budget instead of being silently ignored.
        let mut ckpt = CheckpointState::new(self.config.checkpoints);
        let mut restarts_left = self.devices.len();
        let run_result = loop {
            let attempt = (|| -> Result<QueryOutput> {
                let cursor = ckpt.cursor.take();
                let skip = cursor.as_ref().map_or(0, |c| c.pipelines_done);
                for (pi, pipeline) in pipelines.pipelines.iter().enumerate() {
                    if pi < skip {
                        continue;
                    }
                    let resume = cursor
                        .as_ref()
                        .filter(|c| pi == skip && c.resume_offset > 0);
                    self.run_pipeline_with_recovery(
                        &mut graph, pipeline, inputs, cfg, &mut hub, &mut stats, &mut tally,
                        &escaping, &control, &mut ckpt, resume,
                    )?;
                    ckpt.pipelines_done = pi + 1;
                    // Pipeline-breaker boundary: always a considered capture
                    // site; the cost policy decides whether to snapshot.
                    self.maybe_capture_checkpoint(&mut hub, &mut stats, &mut tally, &mut ckpt, 0)?;
                }
                self.collect_outputs(&graph, &mut hub, &mut stats, &mut tally)
            })();
            match attempt {
                Err(err) if gone_device(&err).is_some() && restarts_left > 0 => {
                    let dead = gone_device(&err).expect("checked above");
                    match self.handle_device_loss(
                        dead,
                        &mut graph,
                        &pipelines,
                        &mut hub,
                        &mut stats,
                        &mut fault_base,
                        &mut tally,
                        &mut ckpt,
                    ) {
                        Ok(()) => {
                            restarts_left = self.devices.len();
                            continue;
                        }
                        Err(e) => break Err(e),
                    }
                }
                other => break other,
            }
        };

        // Peaks, byte counts and per-run fault deltas before cleanup.
        for id in self.devices.ids() {
            let dev = self.devices.get(id)?;
            stats
                .peak_device_bytes
                .insert(dev.info().name.clone(), dev.pool().peak());
            stats.bytes_h2d += dev.clock().bytes_h2d();
            stats.bytes_d2h += dev.clock().bytes_d2h();
            let base = fault_base.get(&id).copied().unwrap_or(0);
            let delta = dev.fault_counters().total().saturating_sub(base);
            if delta > 0 {
                stats.device_faults.insert(dev.info().name.clone(), delta);
            }
        }
        stats.quarantine_skips += hub.take_quarantine_skips();
        // Silent-corruption accounting: every checksum-mismatch retransmit
        // the hub performed is charged to the offending device's health.
        for (dev, n) in hub.take_corruption_retransmits() {
            stats.corruption_retransmits += n as usize;
            for _ in 0..n {
                self.health.record_corruption(dev);
            }
        }
        stats.rollback_delete_errors += hub.take_rollback_delete_errors();
        // Delete phase: free everything this run created. Cache pins are not
        // run-created and survive into the next run.
        hub.delete_all(&mut self.devices);
        if let Some(mut cache) = hub.take_cache() {
            let c = cache.take_counters();
            stats.cache_hits += c.hits;
            stats.cache_misses += c.misses;
            stats.cache_evictions += c.evictions;
            stats.cache_invalidations += c.invalidations;
            stats.cache_saved_transfer_ns += c.saved_transfer_ns;
            stats.cache_pinned_bytes = cache.total_pinned_bytes();
            self.residency = Some(cache);
        }
        for id in self.devices.ids() {
            tally.drain_serial(self.devices.get_mut(id)?.as_mut(), &mut stats);
        }

        stats.total_ns = tally.serial_ns + tally.overlap_ns;
        stats.wall_ns = wall.elapsed().as_nanos() as u64;

        // Tick breaker cool-downs and snapshot post-query health, whether
        // the run succeeded or not.
        self.health.on_query_completed();
        let mut names: BTreeMap<DeviceId, String> = BTreeMap::new();
        for id in self.devices.ids() {
            names.insert(id, self.devices.get(id)?.info().name.clone());
        }
        for (id, snap) in self.health.snapshot() {
            let name = names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("dev#{}", id.0));
            stats.device_health.insert(name, snap);
        }
        self.last_stats = Some(stats.clone());
        let output = run_result?;
        Ok((output, stats))
    }

    /// Pre-run placement repair from cross-query health: every pipeline
    /// placed on a quarantined device — or whose kernels are quarantined
    /// *on* that device — is moved to a healthy capable device when one
    /// exists; a `HalfOpen` device (or `(device, kernel)` breaker) keeps
    /// exactly one pipeline as its recovery probe and sheds the rest.
    ///
    /// Probe placement is latency-aware: among the pipelines placed on a
    /// half-open device, the one with the **cheapest** modeled probe cost
    /// (fewest nodes riding on the suspect device, weighted by its
    /// recovery-aware placement cost including the latency penalty) carries
    /// the probe, so the least work is at risk if the device is still sick.
    fn apply_health_placement(
        &mut self,
        graph: &mut PrimitiveGraph,
        pipelines: &PipelineSet,
        stats: &mut ExecutionStats,
    ) {
        // Pre-pass: pick, per half-open device, the cheapest pipeline to
        // carry its recovery probe (ties broken by earliest pipeline).
        let est_bytes = (self.config.chunk_rows.max(1) * 8) as u64;
        let mut probe_choice: HashMap<DeviceId, (f64, usize)> = HashMap::new();
        for (pi, pipeline) in pipelines.pipelines.iter().enumerate() {
            for &n in &pipeline.nodes {
                let dev = graph.node(n).device;
                if !(self.health.is_half_open(dev) && self.health.probe_candidate(dev)) {
                    continue;
                }
                let nodes_on_dev = pipeline
                    .nodes
                    .iter()
                    .filter(|&&m| graph.node(m).device == dev)
                    .count();
                let unit = match self.devices.get(dev) {
                    Ok(d) => d
                        .placement_cost_ns(
                            est_bytes,
                            self.health.retry_penalty_ns(dev) + self.health.latency_penalty_ns(dev),
                        )
                        .max(1.0),
                    Err(_) => 1.0,
                };
                let cost = nodes_on_dev as f64 * unit;
                let entry = probe_choice.entry(dev).or_insert((cost, pi));
                if cost < entry.0 {
                    *entry = (cost, pi);
                }
            }
        }
        let mut probe_granted: HashSet<DeviceId> = HashSet::new();
        let mut kernel_probe_granted: HashSet<(DeviceId, String)> = HashSet::new();
        for (pi, pipeline) in pipelines.pipelines.iter().enumerate() {
            let mut devs: Vec<DeviceId> = pipeline
                .nodes
                .iter()
                .map(|&n| graph.node(n).device)
                .collect();
            devs.sort_unstable();
            devs.dedup();
            for dev in devs {
                let kernels = self.kernels_on_device(graph, pipeline, dev);
                let avoid = if self.devices.get(dev).is_err() {
                    // The plan targets a device that is no longer plugged
                    // (it died in an earlier run, or was detached): move the
                    // work to a live device rather than failing the lookup
                    // mid-pipeline.
                    true
                } else if self.health.is_quarantined(dev) {
                    true
                } else if self.health.is_half_open(dev) {
                    if self.health.probe_candidate(dev)
                        && probe_choice.get(&dev).map(|&(_, p)| p) == Some(pi)
                        && probe_granted.insert(dev)
                    {
                        // This pipeline is the device's one probe this query:
                        // the cheapest eligible pipeline from the pre-pass.
                        self.health.begin_probe(dev);
                        false
                    } else {
                        // Already probing via an earlier pipeline: shed the
                        // extra load until the probe verdict is in.
                        true
                    }
                } else if kernels
                    .iter()
                    .any(|k| self.health.kernel_known_broken(dev, k))
                {
                    // A kernel this pipeline needs is quarantined here; the
                    // device itself stays available for other pipelines.
                    true
                } else {
                    // Grant at most one probe per half-open (device, kernel)
                    // breaker; shed pipelines needing a kernel whose probe is
                    // already in flight elsewhere.
                    let mut shed = false;
                    for k in &kernels {
                        let key = (dev, k.clone());
                        if self.health.kernel_probe_candidate(dev, k)
                            && !kernel_probe_granted.contains(&key)
                        {
                            kernel_probe_granted.insert(key);
                            self.health.begin_kernel_probe(dev, k);
                        } else if matches!(
                            self.health.kernel_state(dev, k),
                            Some(adamant_device::health::BreakerState::HalfOpen)
                        ) {
                            shed = true;
                        }
                    }
                    shed
                };
                if avoid {
                    if let Ok(true) = self.repoint_pipeline(graph, pipeline, dev) {
                        stats.quarantine_skips += 1;
                    }
                    // No healthy capable candidate: leave the placement and
                    // let the run try its luck (graceful degradation beats
                    // refusing to run at all).
                }
            }
        }
    }

    /// Kernel names the pipeline's nodes placed on `dev` resolve to there
    /// (deduplicated, sorted for determinism).
    fn kernels_on_device(
        &self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        dev: DeviceId,
    ) -> Vec<String> {
        let Ok(device) = self.devices.get(dev) else {
            return Vec::new();
        };
        let sdk = device.info().sdk;
        let mut kernels: Vec<String> = pipeline
            .nodes
            .iter()
            .filter(|&&n| graph.node(n).device == dev)
            .filter_map(|&n| {
                let node = graph.node(n);
                self.tasks
                    .resolve(node.kind, sdk, node.variant.as_deref())
                    .map(|c| c.kernel_name())
            })
            .collect();
        kernels.sort_unstable();
        kernels.dedup();
        kernels
    }

    /// Runs one pipeline with bounded fault recovery (the tentpole of the
    /// executor's hardening): a failed attempt is unwound — buffers freed
    /// back to the pre-attempt mark, partial host accumulations discarded —
    /// and retried according to [`RetryPolicy`] and the error class.
    #[allow(clippy::too_many_arguments)]
    fn run_pipeline_with_recovery(
        &mut self,
        graph: &mut PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        cfg: ModelConfig,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        escaping: &HashSet<DataRef>,
        control: &RunControl,
        ckpt: &mut CheckpointState,
        resume: Option<&ResumeCursor>,
    ) -> Result<()> {
        let retry = self.config.retry;
        let mut chunk_rows = self.config.chunk_rows;
        // Consecutive kernel failures on the same device: one is treated as
        // transient, two trigger a fallback placement.
        let mut kernel_fault_streak: Option<(DeviceId, usize)> = None;
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            control.check(tally.serial_ns + tally.overlap_ns, stats)?;
            // Devices this attempt runs on (re-placement changes them), for
            // the health registry's attempt/success accounting.
            let mut attempt_devs: Vec<DeviceId> = pipeline
                .nodes
                .iter()
                .map(|&n| graph.node(n).device)
                .collect();
            attempt_devs.sort_unstable();
            attempt_devs.dedup();
            for &d in &attempt_devs {
                self.health.record_attempt(d);
            }
            let lanes_before = stats.transfer_ns + stats.compute_ns + stats.other_ns;
            let mark = hub.mark();
            let result = if pipeline.is_streaming() && cfg.chunked {
                self.run_streaming(
                    graph, pipeline, inputs, cfg, chunk_rows, hub, stats, tally, escaping, control,
                    ckpt, resume,
                )
            } else {
                self.run_whole(graph, pipeline, inputs, hub, stats, tally, control)
            };
            let err = match result {
                Err(e) if gone_device(&e).is_some() => {
                    // Permanent device death: pipeline-scope recovery must
                    // not touch the corpse (rollback would call into it and
                    // a health verdict would record a ghost), so surface it
                    // untouched to the run-level membership recovery.
                    return Err(e);
                }
                Ok(()) => {
                    for &d in &attempt_devs {
                        if self.health.record_success(d) {
                            stats.probe_successes += 1;
                        }
                        // Every kernel the successful pipeline resolved on
                        // this device ran clean: reset its streak and settle
                        // any in-flight kernel probe.
                        for k in self.kernels_on_device(graph, pipeline, d) {
                            if self.health.record_kernel_success(d, &k) {
                                stats.kernel_probe_successes += 1;
                            }
                        }
                    }
                    return Ok(());
                }
                Err(e) => e,
            };

            // Unwind the attempt. The modeled time already spent is real
            // (wasted work is charged); the buffers and partial host
            // accumulations are not.
            for id in self.devices.ids() {
                tally.drain_serial(self.devices.get_mut(id)?.as_mut(), stats);
            }
            hub.rollback_to(&mut self.devices, mark);
            for r in escaping {
                if let DataRef::Output { node, .. } = r {
                    if pipeline.nodes.contains(node) {
                        hub.discard_host(*r);
                    }
                }
            }
            // A resumed pipeline retries from the checkpoint boundary, not
            // row 0: reinstate the snapshot's host prefix (content and
            // contiguity watermark) that the discard just dropped, so the
            // next attempt's accumulations continue from `resume_offset`.
            if let Some(c) = resume {
                hub.restore_host(&c.host);
            }

            // Feed the failure back into the health registry: what the
            // attempt burned (the stats lanes kept accumulating through the
            // chunk loop and the unwind drain) is its observed retry cost.
            let wasted_ns =
                (stats.transfer_ns + stats.compute_ns + stats.other_ns - lanes_before).max(0.0);
            let verdict = match &err {
                ExecError::KernelFailed { device, source, .. } if is_oom(source) => {
                    FailureVerdict {
                        device_tripped: self.health.record_oom(*device, wasted_ns),
                        kernel_tripped: false,
                    }
                }
                ExecError::KernelFailed { device, kernel, .. } => self
                    .health
                    .record_kernel_failure(*device, kernel, wasted_ns),
                ExecError::TransferCorrupted { device, .. } => {
                    // The retransmit loop already logged each mismatch; the
                    // exhausted budget itself counts as one more strike.
                    self.health.record_corruption(*device);
                    FailureVerdict::default()
                }
                ExecError::Device(de) if is_oom(de) => {
                    // A bare device OOM does not say which device; charge the
                    // pipeline's first device (deterministic, and pipelines
                    // are single-device in all built-in plans).
                    FailureVerdict {
                        device_tripped: match attempt_devs.first() {
                            Some(&d) => self.health.record_oom(d, wasted_ns),
                            None => false,
                        },
                        kernel_tripped: false,
                    }
                }
                _ => FailureVerdict::default(),
            };
            if verdict.device_tripped {
                stats.breaker_trips += 1;
            }
            if verdict.kernel_tripped {
                stats.kernel_breaker_trips += 1;
            }
            // Residency pins on the failing devices are part of the fault
            // domain: an OOM retry needs the memory back, a tripped breaker
            // or corrupted link means the device's contents are not trusted.
            // Invalidate instead of leaking them into the next attempt.
            let cache_affected = verdict.device_tripped
                || matches!(&err, ExecError::TransferCorrupted { .. })
                || matches!(&err, ExecError::Device(de) if is_oom(de))
                || matches!(&err,
                    ExecError::KernelFailed { source, .. } if is_oom(source));
            if cache_affected {
                for &d in &attempt_devs {
                    hub.evict_cache_on(&mut self.devices, d);
                }
            }

            if attempt >= retry.max_attempts.max(1) {
                return Err(err);
            }

            let can_halve = pipeline.is_streaming()
                && cfg.chunked
                && chunk_rows > retry.min_chunk_rows.max(1)
                && !pipeline_is_order_sensitive(graph, pipeline);
            match &err {
                ExecError::Device(de) if is_oom(de) => {
                    // Out of memory while staging or allocating: shrink the
                    // streaming chunk so the working set fits. When halving
                    // is impossible (whole-buffer pipeline, already at the
                    // floor, order-sensitive primitives that must see the
                    // scan in one chunk) a plain retry still clears
                    // transient allocation faults.
                    if can_halve {
                        chunk_rows = (chunk_rows / 2).max(retry.min_chunk_rows.max(1));
                        stats.chunk_backoffs += 1;
                    }
                }
                ExecError::KernelFailed { device, source, .. } if is_oom(source) => {
                    // A kernel ran out of memory mid-execution: same backoff
                    // as an allocation failure.
                    let _ = device;
                    if can_halve {
                        chunk_rows = (chunk_rows / 2).max(retry.min_chunk_rows.max(1));
                        stats.chunk_backoffs += 1;
                    }
                }
                ExecError::KernelFailed { device, .. } => {
                    let streak = match kernel_fault_streak {
                        Some((d, n)) if d == *device => n + 1,
                        _ => 1,
                    };
                    kernel_fault_streak = Some((*device, streak));
                    if streak >= 2 {
                        // Persistent per-device failure: move the pipeline's
                        // work off this device if another one can take it.
                        if !retry.allow_fallback
                            || !self.repoint_pipeline(graph, pipeline, *device)?
                        {
                            return Err(err);
                        }
                        stats.fallback_placements += 1;
                        kernel_fault_streak = None;
                    }
                }
                ExecError::TransferCorrupted { device, .. } => {
                    // The link to this device failed checksum verification
                    // through the whole retransmit budget: treat it like a
                    // broken device and move the pipeline elsewhere.
                    if !retry.allow_fallback || !self.repoint_pipeline(graph, pipeline, *device)? {
                        return Err(err);
                    }
                    stats.fallback_placements += 1;
                }
                ExecError::NoImplementation { .. } => {
                    // A placement bug, not a transient fault: retrying on
                    // the same device can never succeed, so fall back
                    // immediately or fail fast.
                    let bad = self.find_unresolvable_device(graph, pipeline);
                    match bad {
                        Some(dev)
                            if retry.allow_fallback
                                && self.repoint_pipeline(graph, pipeline, dev)? =>
                        {
                            stats.fallback_placements += 1;
                        }
                        _ => return Err(err),
                    }
                }
                // Graph validation problems, missing inputs, internal
                // invariant violations: retrying cannot help.
                _ => return Err(err),
            }
            stats.retries += 1;
        }
    }

    /// Full-engine recovery from a permanent device death (the membership
    /// tentpole). In order:
    ///
    /// 1. the corpse's modeled time, byte counts, pool peak and fault delta
    ///    are captured into the stats (the post-run sweep only sees
    ///    survivors);
    /// 2. every hub buffer and residency pin on it is written off without
    ///    calling into it, and its pool/admission accounting zeroed so the
    ///    no-leak invariant still holds;
    /// 3. the whole attempt is unwound on the survivors (buffers freed,
    ///    host accumulations discarded) so re-staging starts from pristine
    ///    host copies;
    /// 4. health records are dropped, the device unplugged, and every
    ///    pipeline still pointing at it re-placed onto the best survivor;
    /// 5. when checkpoints are enabled and the latest snapshot validates,
    ///    its host accumulations and completed-pipeline breaker copies are
    ///    restored onto the (re-placed) survivors and a resume cursor is
    ///    armed, so the restart skips everything the snapshot holds; any
    ///    validation or restore failure counts a typed stat and degrades to
    ///    the legacy full restart from row 0 — never a wrong answer.
    ///
    /// Errors with the original `Gone` when no survivor can take the work.
    #[allow(clippy::too_many_arguments)]
    fn handle_device_loss(
        &mut self,
        dead: DeviceId,
        graph: &mut PrimitiveGraph,
        pipelines: &PipelineSet,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        fault_base: &mut BTreeMap<DeviceId, u64>,
        tally: &mut Tally,
        ckpt: &mut CheckpointState,
    ) -> Result<()> {
        stats.device_deaths += 1;
        if let Ok(dev) = self.devices.get_mut(dead) {
            // Host-side accessors still work on the corpse; capture its
            // contribution before it is unplugged.
            tally.drain_serial(dev.as_mut(), stats);
            stats.bytes_h2d += dev.clock().bytes_h2d();
            stats.bytes_d2h += dev.clock().bytes_d2h();
            stats
                .peak_device_bytes
                .insert(dev.info().name.clone(), dev.pool().peak());
            let base = fault_base.get(&dead).copied().unwrap_or(0);
            let delta = dev.fault_counters().total().saturating_sub(base);
            if delta > 0 {
                stats.device_faults.insert(dev.info().name.clone(), delta);
            }
        }
        let (buffers, lost_bytes) = hub.write_off_device(&mut self.devices, dead);
        stats.buffers_written_off += buffers;
        stats.restaged_bytes += lost_bytes;
        hub.rollback_to(&mut self.devices, 0);
        hub.discard_all_host();
        self.health.forget_device(dead);
        fault_base.remove(&dead);
        self.devices.remove(dead);
        if self.devices.is_empty() {
            return Err(ExecError::Device(
                adamant_device::error::DeviceError::Gone { device: dead },
            ));
        }
        for pipeline in &pipelines.pipelines {
            let on_dead = pipeline.nodes.iter().any(|&n| graph.node(n).device == dead);
            if on_dead && !self.repoint_pipeline(graph, pipeline, dead)? {
                return Err(ExecError::Device(
                    adamant_device::error::DeviceError::Gone { device: dead },
                ));
            }
        }
        // Membership is settled; default to a full restart unless a
        // checkpoint restores cleanly below.
        ckpt.cursor = None;
        ckpt.pipelines_done = 0;
        ckpt.chunks_done = 0;
        if !ckpt.cfg.enabled {
            return Ok(());
        }
        let valid = match &ckpt.latest {
            Some(cp) if cp.validate() => true,
            Some(_) => {
                // Corrupted snapshot (e.g. scripted via
                // `FaultPlan::corrupt_checkpoint`): drop it and restart from
                // row 0 rather than resume from untrusted state.
                stats.resume_validation_failures += 1;
                ckpt.latest = None;
                false
            }
            None => false,
        };
        if !valid {
            return Ok(());
        }
        let cp = ckpt.latest.as_ref().expect("validated above");
        // Split the snapshot's resident copies: accumulators of *completed*
        // pipelines are restored here (later pipelines consume them
        // read-only), while the in-progress pipeline's own accumulators are
        // carried in the cursor and seeded per attempt by `run_streaming` —
        // they are mutated in place by every chunk, so they must live inside
        // the attempt's rollback scope or a retry would double-count.
        let in_progress: &[NodeId] = pipelines
            .pipelines
            .get(cp.pipelines_done)
            .map_or(&[], |p| p.nodes.as_slice());
        let restored = (|| -> Result<()> {
            hub.restore_host(&cp.host);
            for (r, payload) in &cp.resident {
                let target = match r {
                    DataRef::Output { node, .. } if !in_progress.contains(node) => {
                        graph.node(*node).device
                    }
                    _ => continue,
                };
                hub.restore_resident(&mut self.devices, *r, target, payload)?;
            }
            Ok(())
        })();
        match restored {
            Ok(()) => {
                stats.resumes += 1;
                stats.chunks_skipped_on_resume += cp.chunks_done;
                ckpt.pipelines_done = cp.pipelines_done;
                ckpt.chunks_done = cp.chunks_done;
                ckpt.cursor = Some(ResumeCursor {
                    pipelines_done: cp.pipelines_done,
                    resume_offset: cp.resume_offset,
                    host: cp.host.clone(),
                    seed: cp
                        .resident
                        .iter()
                        .filter(|(r, _)| {
                            matches!(r, DataRef::Output { node, .. }
                                if in_progress.contains(node))
                        })
                        .map(|(r, p)| (*r, p.clone()))
                        .collect(),
                });
                Ok(())
            }
            Err(_) => {
                // Re-staging the snapshot failed (e.g. a second device died
                // or OOMed mid-restore). Unwind whatever landed and fall
                // back to the full restart; if a survivor really is gone the
                // restart will hit its `Gone` and run-level recovery handles
                // that death in turn.
                hub.rollback_to(&mut self.devices, 0);
                hub.discard_all_host();
                stats.resume_validation_failures += 1;
                ckpt.latest = None;
                Ok(())
            }
        }
    }

    /// Modeled cost of capturing a checkpoint right now: one verified D2H
    /// retrieval per device-resident breaker accumulator, priced by each
    /// holder's own cost model (host accumulations are already host-side
    /// and cost nothing to snapshot).
    fn estimate_capture_ns(&self, hub: &DataTransferHub) -> f64 {
        let mut total = 0.0;
        for (r, dev, id) in hub.resident_refs() {
            if !matches!(r, DataRef::Output { .. }) {
                continue;
            }
            if let Ok(d) = self.devices.get(dev) {
                if let Ok(buf) = d.pool().get(id) {
                    total += d.placement_cost_ns(buf.footprint(), 0.0);
                }
            }
        }
        total
    }

    /// Considered checkpoint boundary: captures a snapshot when the
    /// cost-model policy agrees — the modeled re-execution cost accumulated
    /// since the last snapshot must exceed the estimated capture cost times
    /// [`CheckpointConfig::cost_factor`]. `resume_offset` is the in-progress
    /// pipeline's high-water scan row (0 at pipeline boundaries).
    fn maybe_capture_checkpoint(
        &mut self,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        ckpt: &mut CheckpointState,
        resume_offset: usize,
    ) -> Result<()> {
        if !ckpt.cfg.enabled {
            return Ok(());
        }
        let est = self.estimate_capture_ns(hub);
        let lanes = stats.transfer_ns + stats.compute_ns + stats.other_ns;
        if lanes - ckpt.lanes_mark <= est * ckpt.cfg.cost_factor {
            return Ok(());
        }
        self.capture_checkpoint(hub, stats, tally, ckpt, resume_offset)
    }

    /// Captures one consistent snapshot. The candidate is fully assembled
    /// and sealed before it replaces `ckpt.latest`, so a device death in
    /// the middle of a capture (any retrieval may return `Gone`) leaves the
    /// previous snapshot intact — recovery then resumes from the older but
    /// still consistent boundary. Capture transfers pay real modeled D2H
    /// cost, drained into the stats here so the surrounding chunk loop's
    /// per-chunk attribution stays clean.
    fn capture_checkpoint(
        &mut self,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        ckpt: &mut CheckpointState,
        resume_offset: usize,
    ) -> Result<()> {
        let host = hub.snapshot_host();
        let mut resident: Vec<(DataRef, BufferData)> = Vec::new();
        let mut manifest: Vec<String> = Vec::new();
        for (r, dev, id) in hub.resident_refs() {
            // Inputs re-stage from pristine host columns for free; only
            // materialized intermediates need host copies.
            if !matches!(r, DataRef::Output { .. }) {
                continue;
            }
            let payload = hub.retrieve_verified(&mut self.devices, dev, id, None, 0)?;
            manifest.push(format!("place {:?} ({} B)", r, payload.byte_len()));
            resident.push((r, payload));
        }
        for (r, _, watermark) in &host {
            manifest.push(format!("host {:?} @{}", r, watermark));
        }
        let mut cp = QueryCheckpoint {
            pipelines_done: ckpt.pipelines_done,
            resume_offset,
            chunks_done: ckpt.chunks_done,
            host,
            resident,
            manifest,
            bytes: 0,
            checksum: 0,
        };
        cp.seal();
        for id in self.devices.ids() {
            tally.drain_serial(self.devices.get_mut(id)?.as_mut(), stats);
            // Scripted checkpoint corruption: a device's fault plan may
            // damage the snapshot in flight. The stored checksum no longer
            // matches the content, so the resume-time validation rejects it
            // and recovery degrades to a full restart — never resumes from
            // (or produces) corrupt state.
            if self.devices.get_mut(id)?.corrupt_checkpoint_capture() {
                cp.checksum ^= 1;
            }
        }
        stats.checkpoints_taken += 1;
        stats.checkpoint_bytes += cp.bytes;
        ckpt.lanes_mark = stats.transfer_ns + stats.compute_ns + stats.other_ns;
        ckpt.latest = Some(cp);
        Ok(())
    }

    /// Moves every node of `pipeline` currently placed on `failed` onto the
    /// best other device that implements all of them, consulting the health
    /// registry. Candidates where any moving kernel is already known broken
    /// are never chosen; quarantined devices only as a last resort; among
    /// the healthy candidates the recovery-aware placement cost (modeled
    /// staging transfer plus expected retry penalty) picks the winner,
    /// lowest id on ties. Returns whether a re-placement happened.
    fn repoint_pipeline(
        &self,
        graph: &mut PrimitiveGraph,
        pipeline: &Pipeline,
        failed: DeviceId,
    ) -> Result<bool> {
        let moving: Vec<_> = pipeline
            .nodes
            .iter()
            .copied()
            .filter(|&n| graph.node(n).device == failed)
            .collect();
        if moving.is_empty() {
            return Ok(false);
        }
        let est_bytes = (self.config.chunk_rows.max(1) * 8) as u64;
        let mut healthy: Vec<(f64, DeviceId)> = Vec::new();
        let mut last_resort: Vec<DeviceId> = Vec::new();
        for cand in self.devices.ids() {
            if cand == failed {
                continue;
            }
            let dev = self.devices.get(cand)?;
            let sdk = dev.info().sdk;
            let capable = moving.iter().all(|&n| {
                let node = graph.node(n);
                match self.tasks.resolve(node.kind, sdk, node.variant.as_deref()) {
                    Some(c) => !self.health.kernel_known_broken(cand, &c.kernel_name()),
                    None => false,
                }
            });
            if !capable {
                continue;
            }
            if self.health.is_quarantined(cand) {
                last_resort.push(cand);
            } else {
                // Slow devices lose placement ties: the latency EWMA the
                // watchdog feeds joins the expected-retry penalty.
                let penalty =
                    self.health.retry_penalty_ns(cand) + self.health.latency_penalty_ns(cand);
                healthy.push((dev.placement_cost_ns(est_bytes, penalty), cand));
            }
        }
        let target = healthy
            .into_iter()
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id)| id)
            .or_else(|| last_resort.into_iter().min());
        match target {
            Some(cand) => {
                for &n in &moving {
                    graph.nodes[n.0].device = cand;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The first device in `pipeline` whose SDK lacks an implementation for
    /// one of its nodes, if any.
    fn find_unresolvable_device(
        &self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
    ) -> Option<DeviceId> {
        for &n in &pipeline.nodes {
            let node = graph.node(n);
            let sdk = self.devices.get(node.device).ok()?.info().sdk;
            if self
                .tasks
                .resolve(node.kind, sdk, node.variant.as_deref())
                .is_none()
            {
                return Some(node.device);
            }
        }
        None
    }

    // ---- validation -----------------------------------------------------

    fn validate_inputs(&self, graph: &PrimitiveGraph, inputs: &QueryInputs) -> Result<()> {
        let mut scan_lens: HashMap<&str, usize> = HashMap::new();
        for gi in graph.inputs() {
            let col = inputs
                .get(&gi.name)
                .ok_or_else(|| ExecError::MissingInput(gi.name.clone()))?;
            if let Some(scan) = &gi.scan {
                match scan_lens.get(scan.as_str()) {
                    Some(&len) if len != col.len() => {
                        return Err(ExecError::InputLengthMismatch {
                            scan: scan.clone(),
                            expected: len,
                            actual: col.len(),
                        })
                    }
                    None => {
                        scan_lens.insert(scan.as_str(), col.len());
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    // ---- whole-input execution (OAAT and full-buffer pipelines) ---------

    #[allow(clippy::too_many_arguments)]
    fn run_whole(
        &mut self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        control: &RunControl,
    ) -> Result<()> {
        for &node_id in &pipeline.nodes {
            control.check(tally.serial_ns + tally.overlap_ns, stats)?;
            let node = graph.node(node_id).clone();
            // Resolve inputs.
            let mut in_ids = Vec::with_capacity(node.inputs.len());
            let mut est_rows = 0usize;
            for &input in &node.inputs {
                let id = match input {
                    DataRef::Input(i) => {
                        let gi = &graph.inputs()[i];
                        let col = inputs.get(&gi.name).expect("validated");
                        hub.load_whole_input(&mut self.devices, input, node.device, &gi.name, col)?
                    }
                    DataRef::Output { .. } => hub.router(&mut self.devices, input, node.device)?,
                };
                let len = self
                    .devices
                    .get(node.device)?
                    .pool()
                    .get(id)
                    .map(|b| b.data.len())
                    .unwrap_or(0);
                est_rows = est_rows.max(len);
                in_ids.push(id);
            }
            tally.drain_serial(self.devices.get_mut(node.device)?.as_mut(), stats);

            // Prepare outputs (all materialized in whole mode).
            let mut out_ids = Vec::with_capacity(node.output_count);
            for port in 0..node.output_count {
                let semantic = graph.semantic_of(DataRef::Output {
                    node: node.id,
                    port,
                });
                let id =
                    hub.prepare_output_buffer(&mut self.devices, &node, port, semantic, est_rows)?;
                hub.register_resident(
                    DataRef::Output {
                        node: node.id,
                        port,
                    },
                    node.device,
                    id,
                );
                out_ids.push(id);
            }
            tally.drain_serial(self.devices.get_mut(node.device)?.as_mut(), stats);

            // Execute once over the whole inputs.
            let saved = self.execute_node(&node, &in_ids, &out_ids)?;
            stats.fusion_saved_transfer_ns += saved;
            Self::note_intermediates(graph, &node, est_rows, stats);
            let (t, c, o, _) = tally.drain_split(self.devices.get_mut(node.device)?.as_mut());
            tally.serial_ns += t + c + o;
            stats.transfer_ns += t;
            stats.compute_ns += c;
            stats.other_ns += o;
            stats.record_primitive(&node.label, c);
            stats.slice_ns.push(t + c + o);
            let used = self.devices.get(node.device)?.pool().used();
            stats.memory_trace.push((node.label.clone(), used));
        }
        Ok(())
    }

    // ---- streaming (chunked) execution -----------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_streaming(
        &mut self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        cfg: ModelConfig,
        chunk_rows: usize,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        escaping: &HashSet<DataRef>,
        control: &RunControl,
        ckpt: &mut CheckpointState,
        resume: Option<&ResumeCursor>,
    ) -> Result<()> {
        let scan = pipeline
            .scan
            .clone()
            .expect("streaming pipeline has a scan");
        let chunk_rows = chunk_rows.max(1);
        // Adaptive regrowth: after `regrow_after_chunks` consecutive
        // successful chunks at a backed-off size, double back toward the
        // configured size. Staging buffers grow in place (`place_data`
        // re-checks the accounting, so an over-eager regrow surfaces as a
        // recoverable OOM). Any failed chunk unwinds the whole attempt, so
        // within an attempt every processed chunk succeeded and the size is
        // a pure function of the chunk index — both streaming loops (and the
        // overlap path's transfer thread) evaluate the same [`ChunkSchedule`]
        // instead of exchanging sizes through shared state, keeping chunk
        // boundaries deterministic under any thread interleaving.
        let schedule = ChunkSchedule {
            start: chunk_rows,
            configured: self.config.chunk_rows.max(1),
            regrow_after: self.config.retry.regrow_after_chunks,
        };

        // The scan columns this pipeline streams, and their length.
        let mut scan_cols: Vec<(usize, Arc<Vec<i64>>)> = Vec::new();
        let mut seen = HashSet::new();
        for &node_id in &pipeline.nodes {
            for &input in &graph.node(node_id).inputs {
                if let DataRef::Input(i) = input {
                    if graph.inputs()[i].scan.as_deref() == Some(scan.as_str()) && seen.insert(i) {
                        let col = inputs.get(&graph.inputs()[i].name).expect("validated");
                        scan_cols.push((i, Arc::clone(col)));
                    }
                }
            }
        }
        let rows = scan_cols.first().map(|(_, c)| c.len()).unwrap_or(0);
        let n_chunks = rows.div_ceil(chunk_rows);
        // Resuming from a checkpoint: rows below the snapshot's high-water
        // offset are already host-accumulated (and folded into the seeded
        // breaker accumulators), so the scan starts there instead of row 0.
        let resume_offset = resume.map_or(0, |c| c.resume_offset).min(rows);

        // Order-sensitive breakers cannot stream across multiple chunks.
        if n_chunks > 1 {
            for &node_id in &pipeline.nodes {
                let kind = graph.node(node_id).kind;
                if matches!(
                    kind,
                    PrimitiveKind::Sort | PrimitiveKind::SortAgg | PrimitiveKind::PrefixSum
                ) {
                    return Err(ExecError::InvalidGraph(format!(
                        "{kind} is order-sensitive and cannot run in a multi-chunk \
                         streaming pipeline; materialize its input first"
                    )));
                }
            }
        }

        // ---- Stage phase -------------------------------------------------
        // Staging buffers per (scan input, consuming device, slot).
        let devices_used: Vec<DeviceId> = {
            let mut v: Vec<DeviceId> = pipeline
                .nodes
                .iter()
                .map(|&n| graph.node(n).device)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let staging_slots = if cfg.stage_once {
            cfg.staging_buffers
        } else {
            1
        };
        let chunk_bytes = (chunk_rows.min(rows.max(1)) * 8) as u64;
        let mut staging: HashMap<(usize, DeviceId, usize), BufferId> = HashMap::new();
        for &(input_idx, _) in &scan_cols {
            for &dev_id in &devices_used {
                for slot in 0..staging_slots {
                    let id = hub.fresh_id();
                    let dev = self.devices.get_mut(dev_id)?;
                    if cfg.pinned {
                        dev.add_pinned_memory(id, chunk_bytes)?;
                    } else {
                        dev.prepare_memory(id, chunk_bytes)?;
                    }
                    hub.track_created(dev_id, id);
                    staging.insert((input_idx, dev_id, slot), id);
                }
            }
        }

        // Scratch outputs (non-breaker) and accumulators (breaker outputs).
        let mut scratch: HashMap<DataRef, BufferId> = HashMap::new();
        for &node_id in &pipeline.nodes {
            let node = graph.node(node_id).clone();
            for port in 0..node.output_count {
                let r = DataRef::Output {
                    node: node.id,
                    port,
                };
                let semantic = graph.semantic_of(r);
                if node.kind.is_pipeline_breaker() {
                    let id =
                        hub.prepare_output_buffer(&mut self.devices, &node, port, semantic, rows)?;
                    hub.register_resident(r, node.device, id);
                    // Checkpoint resume: seed the freshly created accumulator
                    // with the snapshot's partial state. The seed is applied
                    // per attempt (the accumulator is created after the
                    // recovery mark), so an intra-pipeline retry rolls the
                    // in-place chunk mutations back and re-seeds cleanly —
                    // chunks past `resume_offset` are never double-counted.
                    if let Some(seed) = resume.and_then(|c| c.seed_for(r)) {
                        hub.place_verified(&mut self.devices, node.device, id, seed.clone(), 0)?;
                    }
                } else if cfg.stage_once {
                    let id = hub.prepare_output_buffer(
                        &mut self.devices,
                        &node,
                        port,
                        semantic,
                        chunk_rows.min(rows.max(1)),
                    )?;
                    scratch.insert(r, id);
                }
            }
        }
        for &dev_id in &devices_used {
            tally.drain_serial(self.devices.get_mut(dev_id)?.as_mut(), stats);
        }

        // ---- Copy-compute phase -------------------------------------------
        let mut chunk_costs: Vec<ChunkCost> = Vec::with_capacity(n_chunks);
        // Device time charged to the owning query per chunk (winner cost
        // plus any hedge work) — what the multi-query scheduler replays.
        let mut chunk_charges: Vec<f64> = Vec::with_capacity(n_chunks);
        let hedging = self.config.watchdog_multiplier.is_some();
        if cfg.overlap && n_chunks > 0 {
            // Algorithm 2: a transfer thread slices and hands chunks to the
            // execute thread over a bounded channel whose capacity is the
            // number of staging buffers; `fetched_until`/`processed_until`
            // track progress exactly as in the paper.
            let fetched_until = AtomicUsize::new(0);
            let processed_until = AtomicUsize::new(0);
            let (tx, rx) =
                std::sync::mpsc::sync_channel::<(usize, usize, usize, Vec<(usize, BufferData)>)>(
                    cfg.staging_buffers,
                );
            let producer_cols: Vec<(usize, Arc<Vec<i64>>)> = scan_cols.clone();
            let producer_cancel = control.cancel.clone();
            let result: Result<()> = std::thread::scope(|scope| {
                let fetched = &fetched_until;
                let processed = &processed_until;
                scope.spawn(move || {
                    let mut chunk = 0usize;
                    let mut offset = resume_offset;
                    while offset < rows {
                        // Cooperative cancellation: stop slicing; the execute
                        // side surfaces the error at its own check.
                        if producer_cancel.is_cancelled() {
                            return;
                        }
                        let len = schedule.rows_for(chunk).min(rows - offset);
                        let payloads: Vec<(usize, BufferData)> = producer_cols
                            .iter()
                            .map(|(idx, col)| {
                                (*idx, BufferData::I64(col[offset..offset + len].to_vec()))
                            })
                            .collect();
                        // Algorithm 2 ordering: advertise the fetch *before*
                        // handing the chunk over. The execute thread may
                        // start on the chunk the instant `send` enqueues it,
                        // so incrementing afterwards races its
                        // `fetched > processed` check.
                        fetched.fetch_add(1, Ordering::Release);
                        if tx.send((chunk, offset, len, payloads)).is_err() {
                            return; // executor side failed; stop transferring
                        }
                        chunk += 1;
                        offset += len;
                    }
                });
                // `rx` is moved into this scope so an early `?` return drops
                // it, failing the producer's blocked `send` instead of
                // deadlocking the implicit join at scope exit.
                let rx = rx;
                let mut streamed_ns = 0.0_f64;
                for (chunk, offset, len, payloads) in rx.iter() {
                    control.check(tally.serial_ns + tally.overlap_ns + streamed_ns, stats)?;
                    if schedule.regrows_at(chunk) {
                        stats.chunk_regrowths += 1;
                    }
                    debug_assert!(
                        fetched.load(Ordering::Acquire) > processed.load(Ordering::Acquire),
                        "execute thread ran ahead of transfer thread"
                    );
                    let slot = chunk % staging_slots;
                    let hedge_payloads = hedging.then(|| payloads.clone());
                    let outcome = self.run_one_chunk(
                        graph,
                        pipeline,
                        inputs,
                        cfg,
                        hub,
                        stats,
                        tally,
                        escaping,
                        &staging,
                        &mut scratch,
                        slot,
                        offset,
                        len,
                        payloads,
                    )?;
                    let (cost, charged) = self.watchdog_and_hedge(
                        graph,
                        pipeline,
                        inputs,
                        hub,
                        stats,
                        tally,
                        outcome,
                        len,
                        hedge_payloads.as_deref(),
                    );
                    streamed_ns += cost.transfer_ns + cost.compute_ns;
                    chunk_costs.push(cost);
                    chunk_charges.push(charged);
                    // Chunk-interval checkpoint boundary: host accumulations
                    // and the breaker accumulators consistently reflect rows
                    // `[0, offset + len)` right here.
                    if ckpt.cfg.enabled && ckpt.on_chunk_completed() {
                        self.maybe_capture_checkpoint(hub, stats, tally, ckpt, offset + len)?;
                    }
                    processed.fetch_add(1, Ordering::Release);
                }
                Ok(())
            });
            result?;
        } else {
            let mut chunk = 0usize;
            let mut offset = resume_offset;
            let mut streamed_ns = 0.0_f64;
            while offset < rows {
                control.check(tally.serial_ns + tally.overlap_ns + streamed_ns, stats)?;
                if schedule.regrows_at(chunk) {
                    stats.chunk_regrowths += 1;
                }
                let len = schedule.rows_for(chunk).min(rows - offset);
                let payloads: Vec<(usize, BufferData)> = scan_cols
                    .iter()
                    .map(|(idx, col)| (*idx, BufferData::I64(col[offset..offset + len].to_vec())))
                    .collect();
                let slot = chunk % staging_slots;
                let hedge_payloads = hedging.then(|| payloads.clone());
                let outcome = self.run_one_chunk(
                    graph,
                    pipeline,
                    inputs,
                    cfg,
                    hub,
                    stats,
                    tally,
                    escaping,
                    &staging,
                    &mut scratch,
                    slot,
                    offset,
                    len,
                    payloads,
                )?;
                let (cost, charged) = self.watchdog_and_hedge(
                    graph,
                    pipeline,
                    inputs,
                    hub,
                    stats,
                    tally,
                    outcome,
                    len,
                    hedge_payloads.as_deref(),
                );
                streamed_ns += cost.transfer_ns + cost.compute_ns;
                chunk_costs.push(cost);
                chunk_charges.push(charged);
                if ckpt.cfg.enabled && ckpt.on_chunk_completed() {
                    self.maybe_capture_checkpoint(hub, stats, tally, ckpt, offset + len)?;
                }
                chunk += 1;
                offset += len;
            }
        }
        stats.chunks_processed += chunk_costs.len();
        // Preemption points for the multi-query scheduler: each chunk is
        // one interleavable slice of device time, charged at the winner's
        // cost plus any hedge work the chunk spawned (hedges bill the
        // owning query, so fair-share tenants cannot hedge for free).
        stats.slice_ns.extend(chunk_charges);
        // Escaped scratch refs that never saw a chunk (empty scans) still
        // need an (empty) host accumulation for downstream consumers.
        for &node_id in &pipeline.nodes {
            let node = graph.node(node_id);
            if node.kind.is_pipeline_breaker() {
                continue;
            }
            for port in 0..node.output_count {
                let r = DataRef::Output {
                    node: node.id,
                    port,
                };
                if escaping.contains(&r) && !hub.has_host(r) {
                    let semantic = graph.semantic_of(r);
                    hub.host_accumulate(
                        r,
                        semantic,
                        adamant_task::container::DataContainer::empty_payload(semantic),
                        0,
                        0,
                    )?;
                }
            }
        }
        if cfg.overlap {
            tally.overlap_ns += overlapped_makespan(&chunk_costs, cfg.staging_buffers);
        } else {
            tally.serial_ns += chunk_costs
                .iter()
                .map(|c| c.transfer_ns + c.compute_ns)
                .sum::<f64>();
        }
        let in_loop_transfer: f64 = chunk_costs.iter().map(|c| c.transfer_ns).sum();
        let in_loop_compute: f64 = chunk_costs.iter().map(|c| c.compute_ns).sum();
        stats.transfer_ns += in_loop_transfer;
        stats.compute_ns += in_loop_compute;

        // ---- Per-pipeline delete phase ------------------------------------
        // Free staging and scratch on the device that owns each buffer;
        // breaker accumulators stay resident for downstream pipelines.
        // These buffers are expected to exist, so failures are real leaks
        // and surface as errors; `release` also untracks the ids so the
        // final `delete_all` sweep cannot double-delete them.
        let mut staging_ids: Vec<(DeviceId, BufferId)> = staging
            .into_iter()
            .map(|((_, dev_id, _), id)| (dev_id, id))
            .collect();
        staging_ids.sort_unstable();
        for (dev_id, id) in staging_ids {
            hub.release(&mut self.devices, dev_id, id)?;
        }
        let mut scratch_ids: Vec<(DeviceId, BufferId)> = scratch
            .into_iter()
            .map(|(r, id)| {
                let owner = match r {
                    DataRef::Output { node, .. } => graph.node(node).device,
                    DataRef::Input(_) => unreachable!("scratch refs are node outputs"),
                };
                (owner, id)
            })
            .collect();
        scratch_ids.sort_unstable();
        for (dev_id, id) in scratch_ids {
            hub.release(&mut self.devices, dev_id, id)?;
        }
        for &dev_id in &devices_used {
            tally.drain_serial(self.devices.get_mut(dev_id)?.as_mut(), stats);
        }
        Ok(())
    }

    /// Processes one chunk through every primitive of the pipeline
    /// (Algorithm 1's inner loop). Returns the chunk's transfer/compute
    /// cost pair for the model's makespan computation, alongside the
    /// fault-free modeled duration the watchdog budgets against.
    #[allow(clippy::too_many_arguments)]
    fn run_one_chunk(
        &mut self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        cfg: ModelConfig,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        escaping: &HashSet<DataRef>,
        staging: &HashMap<(usize, DeviceId, usize), BufferId>,
        scratch: &mut HashMap<DataRef, BufferId>,
        slot: usize,
        offset: usize,
        len: usize,
        payloads: Vec<(usize, BufferData)>,
    ) -> Result<ChunkOutcome> {
        let mut cost = ChunkCost::default();
        let mut clean_ns = 0.0_f64;
        let scan = pipeline.scan.as_deref().expect("streaming");

        // Upload this chunk into the staging buffers of every device that
        // consumes it, verifying each transfer's checksum end-to-end.
        let mut uploaded: HashMap<(usize, DeviceId), BufferId> = HashMap::new();
        for (input_idx, payload) in payloads {
            let mut devices_for_input: Vec<DeviceId> = staging
                .keys()
                .filter(|(i, _, s)| *i == input_idx && *s == slot)
                .map(|(_, d, _)| *d)
                .collect();
            devices_for_input.sort_unstable();
            for dev_id in devices_for_input {
                let id = staging[&(input_idx, dev_id, slot)];
                // A residency-cached copy of the scan column serves the
                // chunk with a device-internal copy instead of a fresh
                // host→device upload; otherwise fall back to the verified
                // transfer path.
                let gi = &graph.inputs()[input_idx];
                let from_cache = match inputs.get(&gi.name) {
                    Some(col) => hub.stage_chunk_from_cache(
                        &mut self.devices,
                        dev_id,
                        id,
                        &gi.name,
                        col,
                        offset,
                        len,
                    )?,
                    None => false,
                };
                if !from_cache {
                    hub.place_verified(&mut self.devices, dev_id, id, payload.clone(), 0)?;
                }
                uploaded.insert((input_idx, dev_id), id);
                let (t, c, o, k) = tally.drain_split(self.devices.get_mut(dev_id)?.as_mut());
                cost.transfer_ns += t + o;
                cost.compute_ns += c;
                clean_ns += k;
                stats.transfer_ns += t;
                stats.other_ns += o;
                stats.compute_ns += c;
            }
        }

        // Per-chunk scratch allocation for the naive chunked model
        // (Algorithm 1 calls prepare_memory inside the loop).
        let mut chunk_scratch: Vec<(DataRef, BufferId)> = Vec::new();
        if !cfg.stage_once {
            for &node_id in &pipeline.nodes {
                let node = graph.node(node_id).clone();
                if node.kind.is_pipeline_breaker() {
                    continue;
                }
                for port in 0..node.output_count {
                    let r = DataRef::Output {
                        node: node.id,
                        port,
                    };
                    let semantic = graph.semantic_of(r);
                    let id =
                        hub.prepare_output_buffer(&mut self.devices, &node, port, semantic, len)?;
                    scratch.insert(r, id);
                    chunk_scratch.push((r, id));
                }
                let (t, c, o, k) = tally.drain_split(self.devices.get_mut(node.device)?.as_mut());
                cost.transfer_ns += t + o;
                cost.compute_ns += c;
                clean_ns += k;
                stats.transfer_ns += t;
                stats.other_ns += o;
                stats.compute_ns += c;
            }
        }

        // Execute the pipeline's primitives over this chunk.
        for &node_id in &pipeline.nodes {
            let node = graph.node(node_id).clone();
            let mut in_ids = Vec::with_capacity(node.inputs.len());
            for &input in &node.inputs {
                let id = match input {
                    DataRef::Input(i) => {
                        let gi = &graph.inputs()[i];
                        if gi.scan.as_deref() == Some(scan) {
                            *uploaded.get(&(i, node.device)).ok_or_else(|| {
                                ExecError::Internal(format!(
                                    "no staged chunk for input #{i} on {}",
                                    node.device
                                ))
                            })?
                        } else {
                            // Whole (small) input: placed once, reused on
                            // later chunks via the residency map.
                            let col = inputs
                                .get(&gi.name)
                                .ok_or_else(|| ExecError::MissingInput(gi.name.clone()))?
                                .clone();
                            hub.load_whole_input(
                                &mut self.devices,
                                input,
                                node.device,
                                &gi.name,
                                &col,
                            )?
                        }
                    }
                    DataRef::Output { .. } => {
                        if let Some(&id) = scratch.get(&input) {
                            id // same-pipeline scratch
                        } else {
                            // Materialized elsewhere (breaker output, earlier
                            // pipeline, or escaped host accumulation).
                            hub.router(&mut self.devices, input, node.device)?
                        }
                    }
                };
                in_ids.push(id);
            }
            let mut out_ids = Vec::with_capacity(node.output_count);
            for port in 0..node.output_count {
                let r = DataRef::Output {
                    node: node.id,
                    port,
                };
                if let Some(&id) = scratch.get(&r) {
                    out_ids.push(id);
                } else if let Some(id) = hub.resident(r, node.device) {
                    out_ids.push(id); // breaker accumulator
                } else {
                    return Err(ExecError::Internal(format!(
                        "output {r:?} has no buffer (node `{}`)",
                        node.label
                    )));
                }
            }
            let saved = self.execute_node(&node, &in_ids, &out_ids)?;
            stats.fusion_saved_transfer_ns += saved;
            Self::note_intermediates(graph, &node, len, stats);
            let (t, c, o, k) = tally.drain_split(self.devices.get_mut(node.device)?.as_mut());
            cost.transfer_ns += t + o;
            cost.compute_ns += c;
            clean_ns += k;
            stats.transfer_ns += t;
            stats.other_ns += o;
            stats.compute_ns += c;
            stats.record_primitive(&node.label, c);

            // Escaped scratch: pull this chunk's result back to the host
            // through the checksum-verified path.
            for port in 0..node.output_count {
                let r = DataRef::Output {
                    node: node.id,
                    port,
                };
                if !node.kind.is_pipeline_breaker() && escaping.contains(&r) {
                    let id = scratch[&r];
                    let payload =
                        hub.retrieve_verified(&mut self.devices, node.device, id, None, 0)?;
                    let semantic = graph.semantic_of(r);
                    hub.host_accumulate(r, semantic, payload, offset, len)?;
                    let (t, c, o, k) =
                        tally.drain_split(self.devices.get_mut(node.device)?.as_mut());
                    cost.transfer_ns += t + o;
                    cost.compute_ns += c;
                    clean_ns += k;
                    stats.transfer_ns += t;
                    stats.other_ns += o;
                    stats.compute_ns += c;
                }
            }
        }

        // Naive chunked model frees its per-chunk scratch again. Going
        // through `release` untracks the ids, so the final sweep never sees
        // (and double-deletes) buffers that died inside the chunk loop.
        if !cfg.stage_once {
            for (r, id) in chunk_scratch {
                let node = match r {
                    DataRef::Output { node, .. } => graph.node(node),
                    _ => unreachable!(),
                };
                hub.release(&mut self.devices, node.device, id)?;
                scratch.remove(&r);
                let (t, c, o, k) = tally.drain_split(self.devices.get_mut(node.device)?.as_mut());
                cost.transfer_ns += t + o;
                cost.compute_ns += c;
                clean_ns += k;
                stats.transfer_ns += t;
                stats.other_ns += o;
                stats.compute_ns += c;
            }
        }
        Ok(ChunkOutcome { cost, clean_ns })
    }

    // ---- straggler watchdog & hedged execution ---------------------------

    /// Post-chunk watchdog check (the tentpole of the straggler tolerance):
    /// a chunk whose modeled duration overran `watchdog_multiplier ×` its
    /// fault-free expectation feeds the offending device's latency EWMA and
    /// races a hedged duplicate on the best alternate device.
    ///
    /// The race is scored on the simulated timeline: the hedge launches when
    /// the watchdog budget expires, so it wins when `budget + hedge_cost <
    /// primary_cost`. Data is always committed from the primary (kernels are
    /// deterministic, so both copies are identical — only the *time* is
    /// rescued); the hedge's allocations are reclaimed either way. Returns
    /// the chunk cost the makespan should see and the device time charged
    /// to the owning query (winner cost plus all hedge work).
    #[allow(clippy::too_many_arguments)]
    fn watchdog_and_hedge(
        &mut self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        outcome: ChunkOutcome,
        len: usize,
        payloads: Option<&[(usize, BufferData)]>,
    ) -> (ChunkCost, f64) {
        let actual = outcome.cost.transfer_ns + outcome.cost.compute_ns;
        let Some(mult) = self.config.watchdog_multiplier else {
            return (outcome.cost, actual);
        };
        let mult = mult.max(1.0);
        let clean = outcome.clean_ns;
        if clean <= 0.0 || actual <= mult * clean {
            return (outcome.cost, actual);
        }
        // Watchdog fired: the chunk straggled past its budget.
        stats.watchdog_fires += 1;
        let budget_ns = mult * clean;
        let primary = graph.node(pipeline.nodes[0]).device;
        if self.health.record_latency_overrun(primary, clean, actual) {
            stats.breaker_trips += 1;
        }
        let Some(payloads) = payloads else {
            return (outcome.cost, actual);
        };
        let est_bytes = (len.max(1) * 8) as u64;
        let Some(alt) = self.hedge_target(graph, pipeline, primary, est_bytes) else {
            // No alternate device can run this pipeline: the overrun is
            // recorded but the straggler's result stands.
            return (outcome.cost, actual);
        };
        stats.hedged_launches += 1;
        match self.hedge_chunk(
            graph, pipeline, inputs, hub, stats, tally, alt, len, payloads,
        ) {
            Ok(hedge) => {
                let hedge_actual = hedge.transfer_ns + hedge.compute_ns;
                if budget_ns + hedge_actual < actual {
                    // The duplicate finished first: the chunk completes when
                    // the hedge does, and the straggling primary is cancelled
                    // at that instant — so the query is charged the winner's
                    // timeline (primary ran budget + hedge_actual before the
                    // cancel) plus the hedge device's own work.
                    stats.hedge_wins += 1;
                    let winner = ChunkCost {
                        transfer_ns: hedge.transfer_ns + budget_ns,
                        compute_ns: hedge.compute_ns,
                    };
                    (winner, budget_ns + 2.0 * hedge_actual)
                } else {
                    // The primary beat the hedge after all; the duplicate's
                    // work is still honest device time the query consumed.
                    (outcome.cost, actual + hedge_actual)
                }
            }
            // A failed hedge never fails the query — the primary's result
            // is already committed.
            Err(_) => (outcome.cost, actual),
        }
    }

    /// The best alternate device to hedge `pipeline`'s chunk onto: capable
    /// of every node, not quarantined, ranked by recovery-aware placement
    /// cost (modeled staging transfer plus retry and latency penalties),
    /// lowest id on ties. `None` when no such device exists.
    fn hedge_target(
        &self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        primary: DeviceId,
        est_bytes: u64,
    ) -> Option<DeviceId> {
        let mut best: Option<(f64, DeviceId)> = None;
        for cand in self.devices.ids() {
            if cand == primary || self.health.is_quarantined(cand) {
                continue;
            }
            let Ok(dev) = self.devices.get(cand) else {
                continue;
            };
            let sdk = dev.info().sdk;
            let capable = pipeline.nodes.iter().all(|&n| {
                let node = graph.node(n);
                match self.tasks.resolve(node.kind, sdk, node.variant.as_deref()) {
                    Some(c) => !self.health.kernel_known_broken(cand, &c.kernel_name()),
                    None => false,
                }
            });
            if !capable {
                continue;
            }
            let penalty = self.health.retry_penalty_ns(cand) + self.health.latency_penalty_ns(cand);
            let cost = dev.placement_cost_ns(est_bytes, penalty);
            best = match best {
                Some((bc, bid)) if bc.total_cmp(&cost).then(bid.cmp(&cand)).is_le() => {
                    Some((bc, bid))
                }
                _ => Some((cost, cand)),
            };
        }
        best.map(|(_, id)| id)
    }

    /// Runs a hedged duplicate of one chunk on `alt`, sandboxed: temporary
    /// staging, fresh output buffers, nothing registered as resident, and
    /// every allocation rolled back before returning — the primary's
    /// committed data is untouched whether the hedge wins or loses.
    ///
    /// Mirrors the device-side work of the chunk (staging uploads, scratch,
    /// kernels); host accumulation of escaped outputs stays with the
    /// primary. Returns the duplicate's modeled cost for the race.
    #[allow(clippy::too_many_arguments)]
    fn hedge_chunk(
        &mut self,
        graph: &PrimitiveGraph,
        pipeline: &Pipeline,
        inputs: &QueryInputs,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
        alt: DeviceId,
        len: usize,
        payloads: &[(usize, BufferData)],
    ) -> Result<ChunkCost> {
        let scan = pipeline.scan.as_deref().expect("streaming");
        let mark = hub.mark();
        let result = (|| -> Result<()> {
            // Stage the scan chunk on the hedge device (verified, like the
            // primary's uploads).
            let mut staged: HashMap<usize, BufferId> = HashMap::new();
            for (input_idx, payload) in payloads {
                let id = hub.fresh_id();
                self.devices
                    .get_mut(alt)?
                    .prepare_memory(id, (len.max(1) * 8) as u64)?;
                hub.track_created(alt, id);
                hub.place_verified(&mut self.devices, alt, id, payload.clone(), 0)?;
                staged.insert(*input_idx, id);
            }
            // Mirror the pipeline's nodes onto the hedge device.
            let mut hedge_out: HashMap<DataRef, BufferId> = HashMap::new();
            for &node_id in &pipeline.nodes {
                let mut node = graph.node(node_id).clone();
                node.device = alt;
                let mut in_ids = Vec::with_capacity(node.inputs.len());
                for &input in &node.inputs {
                    let id = match input {
                        DataRef::Input(i) => {
                            let gi = &graph.inputs()[i];
                            if gi.scan.as_deref() == Some(scan) {
                                *staged.get(&i).ok_or_else(|| {
                                    ExecError::Internal(format!(
                                        "no hedge-staged chunk for input #{i} on {alt}"
                                    ))
                                })?
                            } else {
                                let col = inputs
                                    .get(&gi.name)
                                    .ok_or_else(|| ExecError::MissingInput(gi.name.clone()))?
                                    .clone();
                                hub.load_whole_input(&mut self.devices, input, alt, &gi.name, &col)?
                            }
                        }
                        DataRef::Output { .. } => match hedge_out.get(&input) {
                            Some(&id) => id,
                            None => hub.router(&mut self.devices, input, alt)?,
                        },
                    };
                    in_ids.push(id);
                }
                let mut out_ids = Vec::with_capacity(node.output_count);
                for port in 0..node.output_count {
                    let r = DataRef::Output {
                        node: node.id,
                        port,
                    };
                    let semantic = graph.semantic_of(r);
                    let id =
                        hub.prepare_output_buffer(&mut self.devices, &node, port, semantic, len)?;
                    hedge_out.insert(r, id);
                    out_ids.push(id);
                }
                // The hedge is a duplicate: its modeled fused saving is not
                // added to the query's counter.
                self.execute_node(&node, &in_ids, &out_ids)?;
            }
            Ok(())
        })();
        // Everything the mirror burned — on the hedge device and on any
        // source device the router read from — is the duplicate's cost,
        // billed to the stats lanes like all other work.
        let mut cost = ChunkCost::default();
        for dev_id in self.devices.ids() {
            if let Ok(dev) = self.devices.get_mut(dev_id) {
                let (t, c, o, _) = tally.drain_split(dev.as_mut());
                cost.transfer_ns += t + o;
                cost.compute_ns += c;
                stats.transfer_ns += t;
                stats.other_ns += o;
                stats.compute_ns += c;
            }
        }
        // Winner or loser, the duplicate's allocations are reclaimed (and
        // its residency entries dropped); the reclaim itself is billed like
        // any unwind.
        hub.rollback_to(&mut self.devices, mark);
        for dev_id in self.devices.ids() {
            if let Ok(dev) = self.devices.get_mut(dev_id) {
                tally.drain_serial(dev.as_mut(), stats);
            }
        }
        result.map(|()| cost)
    }

    // ---- shared pieces ----------------------------------------------------

    /// Per-node-execution intermediate accounting: bytes flowing through
    /// materialized non-breaker outputs (`intermediate_bytes`) and the
    /// interior bytes fused chains kept in kernel-local memory instead
    /// (`intermediates_elided_bytes`). Streaming paths call this once per
    /// chunk with the chunk length; whole mode once with the input rows.
    fn note_intermediates(
        graph: &PrimitiveGraph,
        node: &PrimitiveNode,
        rows: usize,
        stats: &mut ExecutionStats,
    ) {
        if !node.kind.is_pipeline_breaker() {
            for port in 0..node.output_count {
                let semantic = graph.semantic_of(DataRef::Output {
                    node: node.id,
                    port,
                });
                stats.intermediate_bytes +=
                    adamant_task::container::DataContainer::estimate_output_bytes(semantic, rows);
            }
        }
        stats.intermediates_elided_bytes += crate::fusion::elided_bytes(&node.params, rows);
    }

    /// Resolves and runs one node's kernel. Returns the modeled nanoseconds
    /// a fused node saved over launching its stages individually (`0.0` for
    /// ordinary nodes, or when the device exposes no cost model).
    fn execute_node(
        &mut self,
        node: &PrimitiveNode,
        in_ids: &[BufferId],
        out_ids: &[BufferId],
    ) -> Result<f64> {
        let sdk = self.devices.get(node.device)?.info().sdk;
        let container = self
            .tasks
            .resolve(node.kind, sdk, node.variant.as_deref())
            .ok_or_else(|| ExecError::NoImplementation {
                primitive: node.kind.to_string(),
                sdk: sdk.to_string(),
                variant: node
                    .variant
                    .clone()
                    .unwrap_or_else(|| "default".to_string()),
            })?;
        let mut buffers = in_ids.to_vec();
        buffers.extend_from_slice(out_ids);
        let spec = ExecuteSpec::new(container.kernel_name(), buffers, node.params.to_scalars());
        let kstats = self
            .devices
            .get_mut(node.device)?
            .execute(&spec)
            .map_err(|e| ExecError::KernelFailed {
                device: node.device,
                kernel: spec.kernel.clone(),
                source: e,
            })?;
        if let crate::graph::NodeParams::Fused { stages, .. } = &node.params {
            if !kstats.stages.is_empty() {
                if let Some(cost) = self.devices.get(node.device)?.cost_model() {
                    return Ok(crate::fusion::fused_saved_ns(
                        cost,
                        stages,
                        &kstats.stages,
                        spec.arg_count(),
                    ));
                }
            }
        }
        Ok(0.0)
    }

    fn collect_outputs(
        &mut self,
        graph: &PrimitiveGraph,
        hub: &mut DataTransferHub,
        stats: &mut ExecutionStats,
        tally: &mut Tally,
    ) -> Result<QueryOutput> {
        let mut out = QueryOutput::new();
        for (name, r) in graph.outputs() {
            if let Some(acc) = hub.take_host(*r) {
                out.insert(name.clone(), OutputData::from_buffer(acc.into_buffer()));
                continue;
            }
            // Find any device holding it.
            let mut found = false;
            for dev_id in self.devices.ids() {
                if let Some(id) = hub.resident(*r, dev_id) {
                    let payload = hub.retrieve_verified(&mut self.devices, dev_id, id, None, 0)?;
                    tally.drain_serial(self.devices.get_mut(dev_id)?.as_mut(), stats);
                    out.insert(name.clone(), OutputData::from_buffer(payload));
                    found = true;
                    break;
                }
            }
            if !found {
                // Zero-row streaming run: nothing was ever produced.
                let semantic = graph.semantic_of(*r);
                let empty = match semantic {
                    DataSemantic::Position => OutputData::U32(Vec::new()),
                    DataSemantic::Bitmap => OutputData::BitWords(Vec::new()),
                    _ => OutputData::I64(Vec::new()),
                };
                out.insert(name.clone(), empty);
            }
        }
        Ok(out)
    }
}

/// What one streamed chunk produced for the accounting layer: its modeled
/// cost pair (the makespan contribution) and the fault-free modeled
/// duration of the same work, which the straggler watchdog budgets
/// against.
#[derive(Default)]
struct ChunkOutcome {
    cost: ChunkCost,
    clean_ns: f64,
}

/// Per-run accounting accumulators.
/// Per-run checkpoint machinery: the configuration, the latest sealed
/// snapshot, the cost-policy bookkeeping, and the resume cursor armed by
/// `handle_device_loss` for the next restart-loop iteration. Lives only for
/// the duration of one `run_with_deadline` call, so every byte of snapshot
/// storage is released when the run returns — the no-leak invariant covers
/// checkpoints too.
struct CheckpointState {
    cfg: CheckpointConfig,
    latest: Option<QueryCheckpoint>,
    /// Stats-lane total (`transfer + compute + other`) at the last capture:
    /// the difference to the current total is the modeled re-execution cost
    /// a death right now would forfeit.
    lanes_mark: f64,
    /// Chunks streamed since the last considered boundary (capture sites
    /// are every `cfg.chunk_interval`-th chunk).
    chunks_since_consider: usize,
    /// Chunks whose results the current attempt lineage already holds (the
    /// next snapshot records this as what a resume may skip).
    chunks_done: usize,
    /// Pipelines fully completed in the current attempt lineage.
    pipelines_done: usize,
    /// Armed by a successful checkpoint restore; consumed by the next
    /// restart-loop iteration.
    cursor: Option<ResumeCursor>,
}

impl CheckpointState {
    fn new(cfg: CheckpointConfig) -> Self {
        CheckpointState {
            cfg,
            latest: None,
            lanes_mark: 0.0,
            chunks_since_consider: 0,
            chunks_done: 0,
            pipelines_done: 0,
            cursor: None,
        }
    }

    /// Advances the chunk counters; returns whether this boundary is a
    /// considered capture site.
    fn on_chunk_completed(&mut self) -> bool {
        self.chunks_done += 1;
        self.chunks_since_consider += 1;
        if self.chunks_since_consider >= self.cfg.chunk_interval.max(1) {
            self.chunks_since_consider = 0;
            true
        } else {
            false
        }
    }
}

/// What a resumed restart-loop iteration needs: how many pipelines to skip,
/// the in-progress pipeline's scan offset, the snapshot's host entries (for
/// re-restore when an intra-pipeline retry discards them), and the seeds
/// for the in-progress pipeline's breaker accumulators.
struct ResumeCursor {
    pipelines_done: usize,
    resume_offset: usize,
    host: Vec<(DataRef, HostAccum, usize)>,
    seed: Vec<(DataRef, BufferData)>,
}

impl ResumeCursor {
    fn seed_for(&self, r: DataRef) -> Option<&BufferData> {
        self.seed.iter().find(|(sr, _)| *sr == r).map(|(_, p)| p)
    }
}

#[derive(Default)]
struct Tally {
    serial_ns: f64,
    overlap_ns: f64,
}

impl Tally {
    /// Drains a device's events, folding everything into the serial total
    /// and the stats lanes.
    fn drain_serial(&mut self, dev: &mut dyn Device, stats: &mut ExecutionStats) {
        let events = dev.clock_mut().drain_events();
        for e in events {
            self.serial_ns += e.duration_ns;
            match e.lane {
                Lane::TransferH2D | Lane::TransferD2H => stats.transfer_ns += e.duration_ns,
                Lane::Compute => stats.compute_ns += e.duration_ns,
                _ => stats.other_ns += e.duration_ns,
            }
        }
    }

    /// Drains a device's events, returning `(transfer, compute, other,
    /// clean)` without adding to the serial total (chunk-loop attribution).
    /// `clean` is the fault-free modeled sum of the same events — the
    /// baseline the straggler watchdog compares actual durations against.
    fn drain_split(&mut self, dev: &mut dyn Device) -> (f64, f64, f64, f64) {
        let events = dev.clock_mut().drain_events();
        let (mut t, mut c, mut o, mut clean) = (0.0, 0.0, 0.0, 0.0);
        for e in events {
            match e.lane {
                Lane::TransferH2D | Lane::TransferD2H => t += e.duration_ns,
                Lane::Compute => c += e.duration_ns,
                _ => o += e.duration_ns,
            }
            clean += e.clean_ns;
        }
        (t, c, o, clean)
    }
}

/// The device a permanent-death (`Gone`) error names, whether it surfaced
/// bare from a hub transfer/allocation or wrapped in a kernel failure —
/// the trigger for run-level membership recovery.
fn gone_device(e: &ExecError) -> Option<DeviceId> {
    match e {
        ExecError::Device(adamant_device::error::DeviceError::Gone { device }) => Some(*device),
        ExecError::KernelFailed {
            source: adamant_device::error::DeviceError::Gone { device },
            ..
        } => Some(*device),
        _ => None,
    }
}

/// Whether a device error is an out-of-memory condition (regular or pinned)
/// — the class the chunk-size backoff can do something about.
fn is_oom(e: &adamant_device::error::DeviceError) -> bool {
    matches!(
        e,
        adamant_device::error::DeviceError::OutOfMemory { .. }
            | adamant_device::error::DeviceError::OutOfPinnedMemory { .. }
    )
}

/// Whether the pipeline contains a primitive that must see its scan in a
/// single chunk — halving the chunk size could split a previously
/// single-chunk scan and break it.
fn pipeline_is_order_sensitive(graph: &PrimitiveGraph, pipeline: &Pipeline) -> bool {
    pipeline.nodes.iter().any(|&n| {
        matches!(
            graph.node(n).kind,
            PrimitiveKind::Sort | PrimitiveKind::SortAgg | PrimitiveKind::PrefixSum
        )
    })
}

/// Data refs produced by non-breaker nodes of streaming pipelines that are
/// consumed outside their pipeline (or are graph outputs) — these must be
/// accumulated chunk-by-chunk.
fn escaping_refs(graph: &PrimitiveGraph, pipelines: &PipelineSet) -> HashSet<DataRef> {
    let mut escaping = HashSet::new();
    let is_streamed_scratch = |r: DataRef| -> bool {
        match r {
            DataRef::Output { node, .. } => {
                let n = graph.node(node);
                !n.kind.is_pipeline_breaker()
                    && pipelines.pipelines[pipelines.node_pipeline[node.0]].is_streaming()
            }
            DataRef::Input(_) => false,
        }
    };
    for node in graph.nodes() {
        for &input in &node.inputs {
            if let DataRef::Output { node: src, .. } = input {
                if pipelines.node_pipeline[src.0] != pipelines.node_pipeline[node.id.0]
                    && is_streamed_scratch(input)
                {
                    escaping.insert(input);
                }
            }
        }
    }
    for (_, r) in graph.outputs() {
        if is_streamed_scratch(*r) {
            escaping.insert(*r);
        }
    }
    escaping
}
