//! Runtime-layer errors.

use adamant_device::device::DeviceId;
use adamant_device::error::DeviceError;
use adamant_storage::error::StorageError;
use std::fmt;

/// Errors produced while building or executing a primitive graph.
#[derive(Debug)]
pub enum ExecError {
    /// A device operation failed (including device out-of-memory).
    Device(DeviceError),
    /// A kernel execution failed on a specific device.
    ///
    /// Unlike [`ExecError::Device`], this carries *which* device failed, so
    /// the executor's recovery path can re-place the pipeline onto a
    /// fallback device that has the primitive installed.
    KernelFailed {
        /// The device the kernel ran on.
        device: DeviceId,
        /// The kernel name.
        kernel: String,
        /// The underlying driver error.
        source: DeviceError,
    },
    /// A storage operation failed while binding inputs.
    Storage(StorageError),
    /// The graph failed validation.
    InvalidGraph(String),
    /// No kernel implementation is registered for a primitive on the
    /// target device's SDK.
    NoImplementation {
        /// The primitive.
        primitive: String,
        /// The SDK.
        sdk: String,
        /// Requested variant.
        variant: String,
    },
    /// A named graph input was not bound.
    MissingInput(String),
    /// Input columns of one scan disagree in length.
    InputLengthMismatch {
        /// The scan group.
        scan: String,
        /// First length observed.
        expected: usize,
        /// Conflicting length.
        actual: usize,
    },
    /// The query's simulated-timeline budget was exhausted mid-run. The
    /// attempt was unwound like any failed attempt (buffers released, ids
    /// untracked) before this error surfaced.
    DeadlineExceeded {
        /// The configured budget in modeled nanoseconds.
        budget_ns: f64,
        /// Modeled nanoseconds actually spent when the deadline check fired.
        spent_ns: f64,
    },
    /// The run was cancelled through its cancellation token. Unwound exactly
    /// like [`ExecError::DeadlineExceeded`].
    Cancelled,
    /// A host↔device transfer kept failing its end-to-end checksum after the
    /// full retransmit budget — the link to this device is lying. The
    /// recovery loop treats this like a broken device and re-places the
    /// pipeline elsewhere.
    TransferCorrupted {
        /// The device whose transfers cannot be trusted.
        device: DeviceId,
        /// The buffer whose verification failed.
        buffer: adamant_device::buffer::BufferId,
    },
    /// Internal invariant violation (a bug in an execution model).
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Device(e) => write!(f, "device error: {e}"),
            ExecError::KernelFailed {
                device,
                kernel,
                source,
            } => write!(f, "kernel `{kernel}` failed on {device}: {source}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::InvalidGraph(msg) => write!(f, "invalid primitive graph: {msg}"),
            ExecError::NoImplementation {
                primitive,
                sdk,
                variant,
            } => write!(
                f,
                "no implementation of `{primitive}` (variant `{variant}`) for SDK `{sdk}`"
            ),
            ExecError::MissingInput(name) => write!(f, "graph input `{name}` not bound"),
            ExecError::InputLengthMismatch {
                scan,
                expected,
                actual,
            } => write!(
                f,
                "scan `{scan}` columns disagree in length: {expected} vs {actual}"
            ),
            ExecError::DeadlineExceeded {
                budget_ns,
                spent_ns,
            } => write!(
                f,
                "query deadline exceeded: spent {spent_ns:.0} ns of a {budget_ns:.0} ns budget"
            ),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::TransferCorrupted { device, buffer } => write!(
                f,
                "transfer of {buffer} to/from {device} failed checksum verification \
                 after exhausting the retransmit budget"
            ),
            ExecError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Device(e) => Some(e),
            ExecError::KernelFailed { source, .. } => Some(source),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for ExecError {
    fn from(e: DeviceError) -> Self {
        ExecError::Device(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Shorthand result alias for runtime operations.
pub type Result<T> = std::result::Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ExecError = DeviceError::NotInitialized.into();
        assert!(e.to_string().contains("device error"));
        let e: ExecError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("storage error"));
        let e = ExecError::MissingInput("l_qty".into());
        assert!(e.to_string().contains("l_qty"));
        let e = ExecError::DeadlineExceeded {
            budget_ns: 1000.0,
            spent_ns: 1500.0,
        };
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        let e = ExecError::TransferCorrupted {
            device: DeviceId(1),
            buffer: adamant_device::buffer::BufferId(7),
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn oom_is_preserved() {
        let e: ExecError = DeviceError::OutOfMemory {
            requested: 10,
            available: 5,
            capacity: 100,
        }
        .into();
        assert!(matches!(
            e,
            ExecError::Device(DeviceError::OutOfMemory { .. })
        ));
    }
}
