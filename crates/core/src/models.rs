//! Execution model definitions (paper §IV).

/// The execution models implemented by the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecutionModel {
    /// Operator-at-a-time: every input placed wholly on the device before
    /// execution (the non-scalable baseline of Fig. 7).
    OperatorAtATime,
    /// Naive chunked execution (Algorithm 1): per chunk — route, allocate,
    /// execute; transfer and compute strictly serialized, pageable memory.
    Chunked,
    /// Pipelined execution (Algorithm 2): a transfer thread overlaps the
    /// next chunk's copy with the current chunk's compute, synchronized via
    /// `fetched_until`/`processed_until`; pageable memory, staging
    /// allocated once.
    Pipelined,
    /// 4-phase execution, chunked flavor (Algorithm 3 without overlap):
    /// stage dual *pinned* buffers once, copy-compute serially, delete.
    FourPhaseChunked,
    /// 4-phase execution, pipelined flavor (Algorithm 3): dual pinned
    /// buffers, copy overlapped with compute.
    FourPhasePipelined,
}

/// How a model stages and schedules chunk transfers — the knobs the engine
/// is parameterized by (one engine, five models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Stream chunks (false = whole inputs at once).
    pub chunked: bool,
    /// Stage chunk uploads in pinned memory.
    pub pinned: bool,
    /// Overlap transfer with compute (copy/compute concurrency).
    pub overlap: bool,
    /// Allocate staging buffers once up front (4-phase stage phase) instead
    /// of allocating per chunk (Algorithm 1's in-loop `prepare_memory`).
    pub stage_once: bool,
    /// Number of staging buffers per input (dual memories in Fig. 8).
    pub staging_buffers: usize,
}

impl ExecutionModel {
    /// All models, in the paper's presentation order.
    pub const ALL: [ExecutionModel; 5] = [
        ExecutionModel::OperatorAtATime,
        ExecutionModel::Chunked,
        ExecutionModel::Pipelined,
        ExecutionModel::FourPhaseChunked,
        ExecutionModel::FourPhasePipelined,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionModel::OperatorAtATime => "operator-at-a-time",
            ExecutionModel::Chunked => "chunked",
            ExecutionModel::Pipelined => "pipelined",
            ExecutionModel::FourPhaseChunked => "4phase-chunked",
            ExecutionModel::FourPhasePipelined => "4phase-pipelined",
        }
    }

    /// The engine configuration implementing this model.
    pub fn config(self) -> ModelConfig {
        match self {
            ExecutionModel::OperatorAtATime => ModelConfig {
                chunked: false,
                pinned: false,
                overlap: false,
                stage_once: true,
                staging_buffers: 1,
            },
            ExecutionModel::Chunked => ModelConfig {
                chunked: true,
                pinned: false,
                overlap: false,
                stage_once: false,
                staging_buffers: 1,
            },
            ExecutionModel::Pipelined => ModelConfig {
                chunked: true,
                pinned: false,
                overlap: true,
                stage_once: true,
                staging_buffers: 2,
            },
            ExecutionModel::FourPhaseChunked => ModelConfig {
                chunked: true,
                pinned: true,
                overlap: false,
                stage_once: true,
                staging_buffers: 2,
            },
            ExecutionModel::FourPhasePipelined => ModelConfig {
                chunked: true,
                pinned: true,
                overlap: true,
                stage_once: true,
                staging_buffers: 2,
            },
        }
    }
}

impl std::fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_paper_semantics() {
        let oaat = ExecutionModel::OperatorAtATime.config();
        assert!(!oaat.chunked);

        let chunked = ExecutionModel::Chunked.config();
        assert!(chunked.chunked && !chunked.pinned && !chunked.overlap);
        assert!(!chunked.stage_once, "Algorithm 1 allocates inside the loop");

        let pipe = ExecutionModel::Pipelined.config();
        assert!(pipe.overlap && !pipe.pinned);

        let fpc = ExecutionModel::FourPhaseChunked.config();
        assert!(fpc.pinned && !fpc.overlap && fpc.stage_once);
        assert_eq!(fpc.staging_buffers, 2, "dual memories (Fig. 8)");

        let fpp = ExecutionModel::FourPhasePipelined.config();
        assert!(fpp.pinned && fpp.overlap);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = ExecutionModel::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
