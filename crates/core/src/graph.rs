//! The primitive graph: a query plan over task-layer primitives.
//!
//! Nodes are primitive instances annotated with a target device (the paper's
//! "primitive graph with annotations, which mark the target device"); data
//! flows along [`DataRef`]s carrying I/O semantics. The graph is built by a
//! front end (a hand-written plan, or `adamant-plan`'s lowering of a logical
//! plan) and validated before execution.

use crate::error::{ExecError, Result};
use adamant_device::device::DeviceId;
use adamant_task::params::{AggFunc, BitmapOp, CmpOp, MapOp};
use adamant_task::primitive::PrimitiveKind;
use adamant_task::semantics::DataSemantic;
use std::collections::BTreeMap;

/// Identifier of a node within one graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A reference to a piece of data: an external input column or a node
/// output port. These are the graph's edges, annotated with the "data ID"
/// the paper describes (`DataRef` itself is the id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRef {
    /// External input column, by input index.
    Input(usize),
    /// Output port `port` of node `node`.
    Output {
        /// Producing node.
        node: NodeId,
        /// Output port index.
        port: usize,
    },
}

/// Per-primitive parameters, decoded form. The runtime encodes these into
/// the scalar parameter list of the device `execute()` call.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeParams {
    /// `MAP` with a constant operand (unused for binary ops).
    Map {
        /// The operation.
        op: MapOp,
        /// Constant operand for `*Const` ops.
        constant: i64,
    },
    /// `BITMAP_OP`.
    Bitmap {
        /// The combination operator.
        op: BitmapOp,
    },
    /// `FILTER_BITMAP` / `FILTER_POSITION`.
    Filter {
        /// Comparison.
        cmp: CmpOp,
        /// Constant (lower bound for `Between`).
        value: i64,
        /// Upper bound for `Between`.
        hi: i64,
    },
    /// `FILTER_BITMAP_COL`.
    FilterCol {
        /// Comparison.
        cmp: CmpOp,
    },
    /// `AGG_BLOCK`.
    AggBlock {
        /// Aggregate function.
        agg: AggFunc,
    },
    /// `HASH_BUILD`.
    HashBuild {
        /// Number of payload columns materialized into the table.
        payload_cols: usize,
        /// Expected entry count (table pre-sizing).
        expected: usize,
    },
    /// `HASH_PROBE`.
    HashProbe {
        /// Number of payload columns emitted.
        payload_outs: usize,
    },
    /// `HASH_AGG`.
    HashAgg {
        /// Carried payload columns.
        payload_cols: usize,
        /// Aggregate functions (one value input each).
        aggs: Vec<AggFunc>,
        /// Expected group count (table pre-sizing).
        expected_groups: usize,
    },
    /// `SORT_AGG`.
    SortAgg {
        /// Aggregate function.
        agg: AggFunc,
    },
    /// `SORT`.
    Sort {
        /// Bit `i` set = key `i` descending.
        desc_mask: u64,
    },
    /// `AGG_EXPORT`.
    AggExport {
        /// Payload columns in the table.
        payload_cols: usize,
        /// Aggregate count in the table.
        agg_count: usize,
    },
    /// `FUSED` / `FUSED_AGG` — a merged producer→consumer chain built by the
    /// fusion pass (`crate::fusion`). Stages run in order inside one kernel;
    /// interior results never get a buffer.
    Fused {
        /// The merged stages in execution order (terminal last).
        stages: Vec<FusedStageSpec>,
        /// Semantic of the terminal stage's output — what `semantic_of`
        /// reports for the fused node's port 0.
        output_semantic: DataSemantic,
    },
    /// No parameters (`MATERIALIZE`, `PREFIX_SUM`, `HASH_PROBE_SEMI`, …).
    None,
}

/// Where one stage of a fused chain reads an operand from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusedOperand {
    /// The fused node's external input at this index.
    External(usize),
    /// The in-kernel result of an earlier stage.
    Stage(usize),
}

impl FusedOperand {
    /// Scalar encoding: externals as their index (`>= 0`), stage results as
    /// `-(index + 1)`.
    pub fn to_code(self) -> i64 {
        match self {
            FusedOperand::External(i) => i as i64,
            FusedOperand::Stage(j) => -(j as i64) - 1,
        }
    }
}

/// One original primitive inside a fused chain: its kind, its own decoded
/// parameters, and where each of its operands comes from.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedStageSpec {
    /// The original primitive.
    pub kind: PrimitiveKind,
    /// The original node's parameters (encoded per stage into the fused
    /// scalar program).
    pub params: Box<NodeParams>,
    /// Operand sources, positional per the original signature.
    pub operands: Vec<FusedOperand>,
}

impl NodeParams {
    /// Encodes to the scalar parameter list of `ExecuteSpec`.
    pub fn to_scalars(&self) -> Vec<i64> {
        match self {
            NodeParams::Map { op, constant } => vec![op.to_code(), *constant],
            NodeParams::Bitmap { op } => vec![op.to_code()],
            NodeParams::Filter { cmp, value, hi } => vec![cmp.to_code(), *value, *hi],
            NodeParams::FilterCol { cmp } => vec![cmp.to_code()],
            NodeParams::AggBlock { agg } => vec![agg.to_code()],
            NodeParams::HashBuild { payload_cols, .. } => vec![*payload_cols as i64],
            NodeParams::HashProbe { payload_outs } => vec![*payload_outs as i64],
            NodeParams::HashAgg {
                payload_cols, aggs, ..
            } => vec![*payload_cols as i64, aggs.len() as i64],
            NodeParams::SortAgg { agg } => vec![agg.to_code()],
            NodeParams::Sort { desc_mask } => vec![*desc_mask as i64],
            NodeParams::AggExport {
                payload_cols,
                agg_count,
            } => vec![*payload_cols as i64, *agg_count as i64],
            NodeParams::Fused { stages, .. } => {
                // Flattened stage program, decoded by the `fused` kernel:
                // `[n_stages, (kind, n_ops, ops.., n_params, params..)*]`.
                let mut out = vec![stages.len() as i64];
                for stage in stages {
                    out.push(stage.kind.op_code());
                    out.push(stage.operands.len() as i64);
                    out.extend(stage.operands.iter().map(|o| o.to_code()));
                    let p = stage.params.to_scalars();
                    out.push(p.len() as i64);
                    out.extend(p);
                }
                out
            }
            NodeParams::None => Vec::new(),
        }
    }
}

/// One primitive instance in the graph.
#[derive(Clone, Debug)]
pub struct PrimitiveNode {
    /// This node's id.
    pub id: NodeId,
    /// Which primitive it is.
    pub kind: PrimitiveKind,
    /// Decoded parameters.
    pub params: NodeParams,
    /// Input data refs, positional per the primitive signature.
    pub inputs: Vec<DataRef>,
    /// Number of output ports.
    pub output_count: usize,
    /// Target device annotation.
    pub device: DeviceId,
    /// Implementation variant (`None` = default).
    pub variant: Option<String>,
    /// Display label for statistics.
    pub label: String,
}

/// An external input column.
#[derive(Clone, Debug)]
pub struct GraphInput {
    /// Input name (bound at execution).
    pub name: String,
    /// The scan this column belongs to: columns of one scan stream
    /// chunk-aligned. `None` marks a small input placed wholly.
    pub scan: Option<String>,
}

/// A validated query plan over primitives.
#[derive(Clone, Debug)]
pub struct PrimitiveGraph {
    pub(crate) nodes: Vec<PrimitiveNode>,
    pub(crate) inputs: Vec<GraphInput>,
    pub(crate) outputs: Vec<(String, DataRef)>,
}

impl PrimitiveGraph {
    /// The nodes in topological (construction) order.
    pub fn nodes(&self) -> &[PrimitiveNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &PrimitiveNode {
        &self.nodes[id.0]
    }

    /// The external inputs.
    pub fn inputs(&self) -> &[GraphInput] {
        &self.inputs
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, DataRef)] {
        &self.outputs
    }

    /// The semantic carried by a data ref.
    pub fn semantic_of(&self, data: DataRef) -> DataSemantic {
        match data {
            DataRef::Input(_) => DataSemantic::Numeric,
            DataRef::Output { node, port } => {
                let n = self.node(node);
                // Fused nodes are generic at the signature level; their true
                // output semantic travels in the params.
                if let NodeParams::Fused {
                    output_semantic, ..
                } = &n.params
                {
                    return *output_semantic;
                }
                let sig = n.kind.signature();
                if port < sig.outputs.len() {
                    sig.outputs[port]
                } else {
                    *sig.outputs.last().expect("primitives have outputs")
                }
            }
        }
    }

    /// Re-places every node onto `device` (the multi-query scheduler pins a
    /// whole query to its admitted device; health-aware repair may still
    /// move individual pipelines afterwards).
    pub fn retarget(&mut self, device: DeviceId) {
        for node in &mut self.nodes {
            node.device = device;
        }
    }

    /// Consumer count per data ref (used for buffer lifetime decisions).
    pub fn consumer_counts(&self) -> BTreeMap<DataRef, usize> {
        let mut counts = BTreeMap::new();
        for node in &self.nodes {
            for &input in &node.inputs {
                *counts.entry(input).or_insert(0) += 1;
            }
        }
        for (_, r) in &self.outputs {
            *counts.entry(*r).or_insert(0) += 1;
        }
        counts
    }
}

/// Builder for [`PrimitiveGraph`]. Nodes may only reference earlier nodes,
/// so the construction order is a topological order by design.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<PrimitiveNode>,
    inputs: Vec<GraphInput>,
    outputs: Vec<(String, DataRef)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Declares an external input column belonging to a streamed scan.
    pub fn scan_input(&mut self, scan: impl Into<String>, name: impl Into<String>) -> DataRef {
        let idx = self.inputs.len();
        self.inputs.push(GraphInput {
            name: name.into(),
            scan: Some(scan.into()),
        });
        DataRef::Input(idx)
    }

    /// Declares a small external input placed wholly on the device.
    pub fn whole_input(&mut self, name: impl Into<String>) -> DataRef {
        let idx = self.inputs.len();
        self.inputs.push(GraphInput {
            name: name.into(),
            scan: None,
        });
        DataRef::Input(idx)
    }

    /// Adds a primitive node; returns refs to its output ports.
    pub fn add(
        &mut self,
        kind: PrimitiveKind,
        params: NodeParams,
        inputs: Vec<DataRef>,
        output_count: usize,
        device: DeviceId,
        label: impl Into<String>,
    ) -> Vec<DataRef> {
        self.add_variant(kind, params, inputs, output_count, device, None, label)
    }

    /// Adds a node selecting a non-default implementation variant.
    #[allow(clippy::too_many_arguments)]
    pub fn add_variant(
        &mut self,
        kind: PrimitiveKind,
        params: NodeParams,
        inputs: Vec<DataRef>,
        output_count: usize,
        device: DeviceId,
        variant: Option<String>,
        label: impl Into<String>,
    ) -> Vec<DataRef> {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PrimitiveNode {
            id,
            kind,
            params,
            inputs,
            output_count,
            device,
            variant,
            label: label.into(),
        });
        (0..output_count)
            .map(|port| DataRef::Output { node: id, port })
            .collect()
    }

    /// Declares a named graph output.
    pub fn output(&mut self, name: impl Into<String>, data: DataRef) {
        self.outputs.push((name.into(), data));
    }

    /// Validates and finalizes the graph.
    ///
    /// Checks: refs point to existing inputs/earlier nodes; input semantics
    /// satisfy each primitive's signature; output counts are sane; at least
    /// one output is declared.
    pub fn build(self) -> Result<PrimitiveGraph> {
        let graph = PrimitiveGraph {
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
        };
        if graph.outputs.is_empty() {
            return Err(ExecError::InvalidGraph("graph declares no outputs".into()));
        }
        let check_ref = |r: DataRef, at: &str| -> Result<()> {
            match r {
                DataRef::Input(i) if i >= graph.inputs.len() => Err(ExecError::InvalidGraph(
                    format!("{at} references nonexistent input #{i}"),
                )),
                DataRef::Output { node, port } => {
                    if node.0 >= graph.nodes.len() {
                        return Err(ExecError::InvalidGraph(format!(
                            "{at} references nonexistent node {node:?}"
                        )));
                    }
                    if port >= graph.nodes[node.0].output_count {
                        return Err(ExecError::InvalidGraph(format!(
                            "{at} references port {port} of node {node:?} which has {} ports",
                            graph.nodes[node.0].output_count
                        )));
                    }
                    Ok(())
                }
                _ => Ok(()),
            }
        };
        for node in &graph.nodes {
            for &input in &node.inputs {
                check_ref(input, &format!("node `{}`", node.label))?;
                if let DataRef::Output { node: src, .. } = input {
                    if src.0 >= node.id.0 {
                        return Err(ExecError::InvalidGraph(format!(
                            "node `{}` references a later or same node (cycle)",
                            node.label
                        )));
                    }
                }
            }
            let actual: Vec<DataSemantic> =
                node.inputs.iter().map(|&r| graph.semantic_of(r)).collect();
            if !node.kind.accepts_inputs(&actual) {
                return Err(ExecError::InvalidGraph(format!(
                    "node `{}` ({}) rejects input semantics {actual:?}",
                    node.label, node.kind
                )));
            }
            let sig = node.kind.signature();
            if node.output_count < sig.outputs.len() && !sig.variadic_outputs {
                return Err(ExecError::InvalidGraph(format!(
                    "node `{}` declares {} outputs, signature needs {}",
                    node.label,
                    node.output_count,
                    sig.outputs.len()
                )));
            }
        }
        for (name, r) in &graph.outputs {
            check_ref(*r, &format!("output `{name}`"))?;
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn build_simple_graph() {
        let mut b = GraphBuilder::new();
        let col = b.scan_input("t", "x");
        let bm = b.add(
            PrimitiveKind::FilterBitmap,
            NodeParams::Filter {
                cmp: CmpOp::Lt,
                value: 10,
                hi: 0,
            },
            vec![col],
            1,
            dev(),
            "filter",
        );
        let vals = b.add(
            PrimitiveKind::Materialize,
            NodeParams::None,
            vec![col, bm[0]],
            1,
            dev(),
            "mat",
        );
        b.output("result", vals[0]);
        let g = b.build().unwrap();
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.semantic_of(bm[0]), DataSemantic::Bitmap);
        assert_eq!(g.semantic_of(vals[0]), DataSemantic::Numeric);
        assert_eq!(g.semantic_of(col), DataSemantic::Numeric);
        let counts = g.consumer_counts();
        assert_eq!(counts[&col], 2);
        assert_eq!(counts[&vals[0]], 1);
    }

    #[test]
    fn rejects_no_outputs() {
        let b = GraphBuilder::new();
        assert!(matches!(b.build(), Err(ExecError::InvalidGraph(_))));
    }

    #[test]
    fn rejects_bad_semantics() {
        let mut b = GraphBuilder::new();
        let col = b.scan_input("t", "x");
        let bm = b.add(
            PrimitiveKind::FilterBitmap,
            NodeParams::Filter {
                cmp: CmpOp::Lt,
                value: 1,
                hi: 0,
            },
            vec![col],
            1,
            dev(),
            "f",
        );
        // MaterializePosition expects POSITION, we give BITMAP.
        let m = b.add(
            PrimitiveKind::MaterializePosition,
            NodeParams::None,
            vec![col, bm[0]],
            1,
            dev(),
            "bad",
        );
        b.output("r", m[0]);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_dangling_refs() {
        let mut b = GraphBuilder::new();
        let col = b.scan_input("t", "x");
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::AddConst,
                constant: 1,
            },
            vec![col],
            1,
            dev(),
            "m",
        );
        b.output("r", m[0]);
        b.output("bad", DataRef::Input(7));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_bad_port() {
        let mut b = GraphBuilder::new();
        let col = b.scan_input("t", "x");
        let m = b.add(
            PrimitiveKind::Map,
            NodeParams::Map {
                op: MapOp::AddConst,
                constant: 1,
            },
            vec![col],
            1,
            dev(),
            "m",
        );
        b.output("r", m[0]);
        b.output(
            "bad",
            DataRef::Output {
                node: NodeId(0),
                port: 5,
            },
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn params_encode() {
        assert_eq!(
            NodeParams::Filter {
                cmp: CmpOp::Between,
                value: 3,
                hi: 9
            }
            .to_scalars(),
            vec![CmpOp::Between.to_code(), 3, 9]
        );
        assert_eq!(
            NodeParams::HashAgg {
                payload_cols: 2,
                aggs: vec![AggFunc::Sum, AggFunc::Count],
                expected_groups: 10
            }
            .to_scalars(),
            vec![2, 2]
        );
        assert_eq!(NodeParams::None.to_scalars(), Vec::<i64>::new());
    }
}
