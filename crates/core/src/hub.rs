//! The data transfer hub (paper §III-C).
//!
//! Three responsibilities, matching the paper's description:
//!
//! * `load_data()` — loading (whole) inputs onto a target device;
//! * `router()` — all SDK-to-SDK and device-to-device transfers: it
//!   inspects where a data ref currently lives and produces a buffer on the
//!   requested device, retrieving/placing across the bus or transforming
//!   representations as needed;
//! * `prepare_output_buffer()` — estimating and creating result space for a
//!   primitive, with the correct data semantics (numeric scratch, bitmap
//!   words, position lists, join/aggregation hash tables).
//!
//! The hub also owns the host-side accumulation of streamed scratch results
//! that escape their pipeline (graph outputs or cross-pipeline consumers).

use crate::error::{ExecError, Result};
use crate::graph::{DataRef, NodeParams, PrimitiveNode};
use crate::residency::ResidencyCache;
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::clock::Lane;
use adamant_device::device::DeviceId;
use adamant_device::error::DeviceError;
use adamant_device::registry::DeviceRegistry;
use adamant_storage::bitmap::Bitmap;
use adamant_task::container::DataContainer;
use adamant_task::primitive::PrimitiveKind;
use adamant_task::semantics::DataSemantic;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Host-side accumulation of per-chunk results.
///
/// `Clone` so the checkpoint subsystem can snapshot accumulations without
/// disturbing the live copies.
#[derive(Clone, Debug)]
pub enum HostAccum {
    /// Concatenated numeric rows.
    Numeric(Vec<i64>),
    /// Positions rebased to global row numbers.
    Position(Vec<u32>),
    /// A growing bitmap with exact logical length.
    Bitmap(Bitmap),
}

impl HostAccum {
    fn new(semantic: DataSemantic) -> Result<HostAccum> {
        Ok(match semantic {
            DataSemantic::Numeric | DataSemantic::PrefixSum => HostAccum::Numeric(Vec::new()),
            DataSemantic::Position => HostAccum::Position(Vec::new()),
            DataSemantic::Bitmap => HostAccum::Bitmap(Bitmap::new_zeroed(0)),
            other => {
                return Err(ExecError::Internal(format!(
                    "cannot host-accumulate {other} results"
                )))
            }
        })
    }

    fn push_chunk(
        &mut self,
        data: BufferData,
        chunk_offset: usize,
        chunk_len: usize,
    ) -> Result<()> {
        match (self, data) {
            (HostAccum::Numeric(acc), BufferData::I64(v)) => acc.extend_from_slice(&v),
            (HostAccum::Position(acc), BufferData::U32(v)) => {
                // Rebasing to global row numbers must not wrap: a silent
                // overflow would produce positions pointing at the wrong
                // rows, which is far worse than failing the query.
                let base = u32::try_from(chunk_offset).map_err(|_| {
                    ExecError::Internal(format!(
                        "position rebase overflow: chunk offset {chunk_offset} exceeds u32 range"
                    ))
                })?;
                for p in v {
                    let global = p.checked_add(base).ok_or_else(|| {
                        ExecError::Internal(format!(
                            "position rebase overflow: {p} + chunk offset {base} exceeds u32 range"
                        ))
                    })?;
                    acc.push(global);
                }
            }
            (HostAccum::Bitmap(acc), BufferData::BitWords(words)) => {
                let chunk = Bitmap::from_words(words, chunk_len);
                acc.extend_from(&chunk);
            }
            (acc, data) => {
                return Err(ExecError::Internal(format!(
                    "host accumulation kind mismatch: {acc:?} <- {}",
                    data.kind()
                )))
            }
        }
        Ok(())
    }

    /// Finalizes into a device-shaped payload.
    pub fn into_buffer(self) -> BufferData {
        match self {
            HostAccum::Numeric(v) => BufferData::I64(v),
            HostAccum::Position(v) => BufferData::U32(v),
            HostAccum::Bitmap(bm) => BufferData::BitWords(bm.words().to_vec()),
        }
    }

    /// Clones into a device-shaped payload, leaving the accumulation in
    /// place. Used when uploading a host accumulation to a device: the host
    /// copy stays authoritative so a later rollback of the device buffer
    /// never destroys the only copy of the data.
    pub fn to_buffer(&self) -> BufferData {
        match self {
            HostAccum::Numeric(v) => BufferData::I64(v.clone()),
            HostAccum::Position(v) => BufferData::U32(v.clone()),
            HostAccum::Bitmap(bm) => BufferData::BitWords(bm.words().to_vec()),
        }
    }
}

/// Base modeled back-off charged before a checksum-failed transfer is
/// retried; doubles with each further retransmit of the same payload.
const RETRANSMIT_BACKOFF_NS: f64 = 500.0;

/// The hub: buffer-id allocation, residency tracking, routing and output
/// buffer preparation.
#[derive(Debug)]
pub struct DataTransferHub {
    next_id: u64,
    /// Where each materialized data ref lives: `(ref, device) -> buffer`.
    resident: HashMap<(DataRef, DeviceId), BufferId>,
    /// Host-side accumulations of escaped streamed results.
    host: HashMap<DataRef, HostAccum>,
    /// Next expected chunk offset per host accumulation — chunks must
    /// arrive in order, contiguously.
    host_offsets: HashMap<DataRef, usize>,
    /// Every buffer created per device, in creation order. Append-only so
    /// [`DataTransferHub::mark`] positions stay stable; [`Self::release`]
    /// clears `live` membership instead of splicing this list.
    created: Vec<(DeviceId, BufferId)>,
    /// Created buffers not yet freed. The delete phase and rollback only
    /// delete buffers still in here, so a mid-run `release` can never lead
    /// to a double free.
    live: BTreeSet<(DeviceId, BufferId)>,
    /// Reverse residency index: `(device, buffer) -> data refs resident in
    /// it`. Keeps [`Self::release`] O(log n) per buffer instead of a full
    /// scan of the residency map.
    by_buffer: BTreeMap<(DeviceId, BufferId), Vec<DataRef>>,
    /// Work counter for the release paths: entries examined while
    /// untracking. Tests assert bulk eviction does bounded work with this
    /// (a counter, not a wall clock).
    release_probes: u64,
    /// `delete_memory` failures during rollback that were *not* the
    /// tolerated died-mid-allocation case (see
    /// [`DataTransferHub::rollback_to`]).
    rollback_delete_errors: usize,
    /// Devices quarantined by the health registry: the router avoids them
    /// as transfer sources while any healthy copy exists.
    quarantined: BTreeSet<DeviceId>,
    /// Transfers whose source was re-picked away from a quarantined holder.
    quarantine_skips: usize,
    /// Maximum transmissions of one payload before a checksum mismatch
    /// becomes [`ExecError::TransferCorrupted`].
    retransmit_budget: u32,
    /// Retransmits caused by checksum mismatches, per device, since the
    /// last [`DataTransferHub::take_corruption_retransmits`] drain.
    corruption_log: BTreeMap<DeviceId, u64>,
    /// The cross-query residency cache, lent by the executor for the
    /// duration of one run (`None` when caching is disabled).
    cache: Option<ResidencyCache>,
}

impl Default for DataTransferHub {
    fn default() -> Self {
        DataTransferHub {
            next_id: 0,
            resident: HashMap::new(),
            host: HashMap::new(),
            host_offsets: HashMap::new(),
            created: Vec::new(),
            live: BTreeSet::new(),
            by_buffer: BTreeMap::new(),
            release_probes: 0,
            rollback_delete_errors: 0,
            quarantined: BTreeSet::new(),
            quarantine_skips: 0,
            retransmit_budget: 4,
            corruption_log: BTreeMap::new(),
            cache: None,
        }
    }
}

impl DataTransferHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        DataTransferHub::default()
    }

    /// Sets how many times one payload may be (re)transmitted before a
    /// checksum mismatch becomes [`ExecError::TransferCorrupted`]. The
    /// executor wires this to its `RetryPolicy::max_attempts`.
    pub fn set_retransmit_budget(&mut self, budget: u32) {
        self.retransmit_budget = budget.max(1);
    }

    /// Takes (and resets) the per-device counts of retransmits caused by
    /// checksum mismatches, for the run's stats and the health registry.
    pub fn take_corruption_retransmits(&mut self) -> std::collections::BTreeMap<DeviceId, u64> {
        std::mem::take(&mut self.corruption_log)
    }

    /// Checksummed `place_data`: uploads `data`, asks the device to echo the
    /// checksum of what it stored, and retransmits with doubling modeled
    /// back-off on mismatch. After [`Self::set_retransmit_budget`]
    /// transmissions the payload still not arriving intact becomes
    /// [`ExecError::TransferCorrupted`] (callers re-place on another device).
    pub fn place_verified(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        id: BufferId,
        data: BufferData,
        offset: usize,
    ) -> Result<()> {
        let expected = data.checksum();
        let len = data.len();
        for attempt in 0..self.retransmit_budget.max(1) {
            if attempt > 0 {
                // The link already lied once: wait out a doubling back-off
                // before re-occupying it (charged as copy-engine time, no
                // payload bytes).
                let backoff = RETRANSMIT_BACKOFF_NS * f64::from(1u32 << (attempt - 1).min(16));
                devices.get_mut(device)?.clock_mut().record(
                    Lane::TransferH2D,
                    backoff,
                    0,
                    format!("retransmit backoff {id} (attempt {attempt})"),
                );
            }
            devices
                .get_mut(device)?
                .place_data(id, data.clone(), offset)?;
            let echo = devices
                .get(device)?
                .buffer_checksum(id, Some(len), offset)?;
            if echo == expected {
                return Ok(());
            }
            *self.corruption_log.entry(device).or_insert(0) += 1;
        }
        Err(ExecError::TransferCorrupted { device, buffer: id })
    }

    /// Checksummed `retrieve_data`: reads the payload back, compares its
    /// checksum against the device's echo of what it holds, and re-reads
    /// with doubling modeled back-off on mismatch. Exhausting the budget
    /// becomes [`ExecError::TransferCorrupted`].
    pub fn retrieve_verified(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        id: BufferId,
        len: Option<usize>,
        offset: usize,
    ) -> Result<BufferData> {
        for attempt in 0..self.retransmit_budget.max(1) {
            if attempt > 0 {
                let backoff = RETRANSMIT_BACKOFF_NS * f64::from(1u32 << (attempt - 1).min(16));
                devices.get_mut(device)?.clock_mut().record(
                    Lane::TransferD2H,
                    backoff,
                    0,
                    format!("retransmit backoff {id} (attempt {attempt})"),
                );
            }
            let payload = devices.get_mut(device)?.retrieve_data(id, len, offset)?;
            let echo = devices
                .get(device)?
                .buffer_checksum(id, Some(payload.len()), offset)?;
            if payload.checksum() == echo {
                return Ok(payload);
            }
            *self.corruption_log.entry(device).or_insert(0) += 1;
        }
        Err(ExecError::TransferCorrupted { device, buffer: id })
    }

    /// Allocates a fresh buffer id (unique across all devices in this run).
    pub fn fresh_id(&mut self) -> BufferId {
        self.next_id += 1;
        BufferId(self.next_id)
    }

    /// Installs the set of quarantined devices the router should avoid as
    /// transfer sources (the executor refreshes this at the start of each
    /// run from the health registry).
    pub fn set_quarantined(&mut self, devices: std::collections::BTreeSet<DeviceId>) {
        self.quarantined = devices;
    }

    /// Takes (and resets) the count of transfers re-sourced away from a
    /// quarantined holder, for the run's stats.
    pub fn take_quarantine_skips(&mut self) -> usize {
        std::mem::take(&mut self.quarantine_skips)
    }

    /// Records that `data` is materialized on `device` under `id`.
    pub fn register_resident(&mut self, data: DataRef, device: DeviceId, id: BufferId) {
        if let Some(old) = self.resident.insert((data, device), id) {
            if old != id {
                if let Some(refs) = self.by_buffer.get_mut(&(device, old)) {
                    refs.retain(|r| *r != data);
                    if refs.is_empty() {
                        self.by_buffer.remove(&(device, old));
                    }
                }
            }
        }
        let refs = self.by_buffer.entry((device, id)).or_default();
        if !refs.contains(&data) {
            refs.push(data);
        }
    }

    /// Records a created buffer for the delete phase.
    pub fn track_created(&mut self, device: DeviceId, id: BufferId) {
        self.created.push((device, id));
        self.live.insert((device, id));
    }

    /// Lends the cross-query residency cache to this hub for one run.
    pub fn install_cache(&mut self, mut cache: ResidencyCache) {
        cache.begin_run();
        self.cache = Some(cache);
    }

    /// Takes the residency cache back at the end of a run.
    pub fn take_cache(&mut self) -> Option<ResidencyCache> {
        self.cache.take()
    }

    /// Whether a residency cache is installed.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Drops every residency-cache entry on `device` (fault recovery:
    /// failed attempt, breaker trip) and purges per-run residency entries
    /// that pointed at the freed buffers. Returns the bytes freed.
    pub fn evict_cache_on(&mut self, devices: &mut DeviceRegistry, device: DeviceId) -> u64 {
        let Some(mut cache) = self.cache.take() else {
            return 0;
        };
        let freed = cache.invalidate_device(devices, device);
        for (d, id) in cache.take_freed() {
            self.untrack_buffer(d, id);
        }
        self.cache = Some(cache);
        freed
    }

    /// Takes (and resets) the count of unexpected `delete_memory` failures
    /// surfaced by rollback, for the run's stats.
    pub fn take_rollback_delete_errors(&mut self) -> usize {
        std::mem::take(&mut self.rollback_delete_errors)
    }

    /// Writes off every buffer on a permanently dead device **without
    /// calling into it**: no `delete_memory`, just bookkeeping. Live
    /// buffers on `dead` are untracked (so rollback and the delete phase
    /// skip them), residency entries pointing at them are dropped,
    /// residency-cache pins on the device are written off the same way, and
    /// the corpse's host-side pool accounting is zeroed so the no-leak
    /// invariant still reconciles.
    ///
    /// Returns `(buffers_written_off, lost_bytes)` where `lost_bytes` is
    /// the pool footprint of the written-off buffers — the data that must
    /// be re-staged from host/survivor copies.
    pub fn write_off_device(
        &mut self,
        devices: &mut DeviceRegistry,
        dead: DeviceId,
    ) -> (usize, u64) {
        let doomed: Vec<BufferId> = self
            .live
            .iter()
            .filter(|(d, _)| *d == dead)
            .map(|&(_, id)| id)
            .collect();
        let mut buffers = 0usize;
        let mut lost_bytes = 0u64;
        for id in doomed {
            buffers += 1;
            if let Ok(dev) = devices.get(dead) {
                if let Ok(buf) = dev.pool().get(id) {
                    lost_bytes += buf.footprint();
                }
            }
            self.untrack_buffer(dead, id);
        }
        if let Some(mut cache) = self.cache.take() {
            cache.write_off_device(dead);
            for (d, id) in cache.take_freed() {
                self.untrack_buffer(d, id);
            }
            self.cache = Some(cache);
        }
        // Host-side accessors still work on the corpse: zero its pool and
        // admission accounting so nothing appears leaked post-mortem.
        if let Ok(dev) = devices.get_mut(dead) {
            let reserved = dev.pool().admission_reserved();
            dev.pool_mut().admission_release(reserved);
            dev.pool_mut().clear();
        }
        (buffers, lost_bytes)
    }

    /// Discards every host accumulation (a whole-graph restart after device
    /// loss re-streams all pipelines from row 0).
    pub fn discard_all_host(&mut self) {
        self.host.clear();
        self.host_offsets.clear();
    }

    /// Clones every host accumulation with its contiguity watermark, sorted
    /// by ref for deterministic checkpoint checksums.
    pub fn snapshot_host(&self) -> Vec<(DataRef, HostAccum, usize)> {
        let mut out: Vec<(DataRef, HostAccum, usize)> = self
            .host
            .iter()
            .map(|(&r, accum)| {
                let watermark = self.host_offsets.get(&r).copied().unwrap_or(0);
                (r, accum.clone(), watermark)
            })
            .collect();
        out.sort_by_key(|(r, _, _)| *r);
        out
    }

    /// Restores host accumulations from a checkpoint snapshot, replacing
    /// whatever partial state a rolled-back attempt left behind. The
    /// watermark re-arms the in-order contiguity check, so the resumed
    /// stream appends exactly where the snapshot left off.
    pub fn restore_host(&mut self, entries: &[(DataRef, HostAccum, usize)]) {
        for (r, accum, watermark) in entries {
            self.host.insert(*r, accum.clone());
            self.host_offsets.insert(*r, *watermark);
        }
    }

    /// Every data ref currently resident on some device, deduplicated and
    /// sorted, each with its lowest-id holder (deterministic). The
    /// checkpoint capture path retrieves these through the verified
    /// transfer path to build the snapshot's resident section.
    pub fn resident_refs(&self) -> Vec<(DataRef, DeviceId, BufferId)> {
        let mut best: BTreeMap<DataRef, (DeviceId, BufferId)> = BTreeMap::new();
        for (&(r, dev), &id) in &self.resident {
            match best.get(&r) {
                Some(&(held, _)) if held <= dev => {}
                _ => {
                    best.insert(r, (dev, id));
                }
            }
        }
        best.into_iter()
            .map(|(r, (dev, id))| (r, dev, id))
            .collect()
    }

    /// Re-materializes a checkpointed payload as a resident buffer on
    /// `device`: allocates, uploads through the verified transfer path, and
    /// registers residency + creation tracking so the normal rollback and
    /// delete phases own the restored buffer like any other.
    pub fn restore_resident(
        &mut self,
        devices: &mut DeviceRegistry,
        data: DataRef,
        device: DeviceId,
        payload: &BufferData,
    ) -> Result<BufferId> {
        let id = self.fresh_id();
        devices
            .get_mut(device)?
            .prepare_memory(id, payload.byte_len().max(8))?;
        self.track_created(device, id);
        self.place_verified(devices, device, id, payload.clone(), 0)?;
        self.register_resident(data, device, id);
        Ok(id)
    }

    /// Entries examined by the release paths so far (bounded-work tests).
    pub fn release_probes(&self) -> u64 {
        self.release_probes
    }

    /// Where `data` is resident on `device`, if it is.
    pub fn resident(&self, data: DataRef, device: DeviceId) -> Option<BufferId> {
        self.resident.get(&(data, device)).copied()
    }

    /// `router()`: produce a buffer holding `data` on `target` (paper: "the
    /// function iterates over all the incoming edges to a primitive and
    /// loads the data to the target device").
    ///
    /// Resolution order: already resident on target → reuse; resident on a
    /// *healthy* device → retrieve there, place on target;
    /// host-accumulated → upload; resident only on quarantined devices →
    /// read through one as a last resort. A host copy always beats a
    /// quarantined holder: the data is intact either way, but reading
    /// through a tripped device keeps it on the critical path and delays
    /// its recovery probe. Transfer costs land on the involved devices'
    /// clocks.
    pub fn router(
        &mut self,
        devices: &mut DeviceRegistry,
        data: DataRef,
        target: DeviceId,
    ) -> Result<BufferId> {
        if let Some(id) = self.resident(data, target) {
            return Ok(id);
        }
        // Find a source device holding it. When several devices hold a
        // copy, pick the lowest device id so the transfer source (and the
        // clocks it charges) is deterministic across runs — HashMap
        // iteration order must never leak into the execution.
        let mut holders: Vec<(DeviceId, BufferId)> = self
            .resident
            .iter()
            .filter(|((r, _), _)| *r == data)
            .map(|((_, d), id)| (*d, *id))
            .collect();
        holders.sort_unstable_by_key(|(d, _)| *d);
        let healthy = holders
            .iter()
            .find(|(d, _)| !self.quarantined.contains(d))
            .copied();
        let source = match healthy {
            Some(h) => Some(h),
            // Every holder is quarantined: prefer the authoritative host
            // copy (if any) over reading through a tripped device.
            None if self.host.contains_key(&data) => None,
            None => holders.first().copied(),
        };
        if let (Some((chosen, _)), Some(&(lowest, _))) = (source, holders.first()) {
            if chosen != lowest {
                self.quarantine_skips += 1;
            }
        }
        if let Some((src_dev, src_id)) = source {
            let payload = self.retrieve_verified(devices, src_dev, src_id, None, 0)?;
            let new_id = self.fresh_id();
            self.track_created(target, new_id);
            self.place_verified(devices, target, new_id, payload, 0)?;
            self.register_resident(data, target, new_id);
            return Ok(new_id);
        }
        if let Some(acc) = self.host.get(&data) {
            // Upload a clone: the host accumulation stays authoritative, so
            // a recovery rollback that deletes the device copy cannot lose
            // the data.
            if !holders.is_empty() {
                // The holders were all quarantined and the host copy won.
                self.quarantine_skips += 1;
            }
            let payload = acc.to_buffer();
            let new_id = self.fresh_id();
            self.track_created(target, new_id);
            self.place_verified(devices, target, new_id, payload, 0)?;
            self.register_resident(data, target, new_id);
            return Ok(new_id);
        }
        Err(ExecError::Internal(format!(
            "router: {data:?} is neither resident nor host-accumulated"
        )))
    }

    /// `load_data()`: places a whole host column onto a device as a
    /// materialized external input.
    ///
    /// With a residency cache installed, the cache is consulted before any
    /// transfer: a valid pin of `name` is served without touching the bus,
    /// and a miss tries to pin the column for future runs (falling back to
    /// an uncached per-run upload when the column does not fit the cache
    /// budget or the device).
    pub fn load_whole_input(
        &mut self,
        devices: &mut DeviceRegistry,
        data: DataRef,
        target: DeviceId,
        name: &str,
        column: &[i64],
    ) -> Result<BufferId> {
        if let Some(id) = self.resident(data, target) {
            return Ok(id);
        }
        if self.cache.is_some() {
            if let Some((id, was_hit)) = self.cache_acquire_whole(devices, target, name, column)? {
                if was_hit {
                    // The whole upload was avoided.
                    let bytes = (column.len() as u64) * 8;
                    let saved = devices
                        .get(target)
                        .map(|d| d.placement_cost_ns(bytes, 0.0))
                        .unwrap_or(0.0);
                    if let Some(cache) = &mut self.cache {
                        cache.note_saved_transfer_ns(saved);
                    }
                }
                self.register_resident(data, target, id);
                return Ok(id);
            }
        }
        let id = self.fresh_id();
        self.track_created(target, id);
        self.place_verified(devices, target, id, BufferData::I64(column.to_vec()), 0)?;
        self.register_resident(data, target, id);
        Ok(id)
    }

    /// Serves a whole column from the residency cache: `Some((id, true))`
    /// for a pre-existing pin, `Some((id, false))` for a pin created (and
    /// paid for) just now, `Ok(None)` when the cache passed — the caller
    /// uploads uncached. Does not touch the saved-transfer counter; callers
    /// account what they actually avoided.
    fn cache_acquire_whole(
        &mut self,
        devices: &mut DeviceRegistry,
        target: DeviceId,
        name: &str,
        column: &[i64],
    ) -> Result<Option<(BufferId, bool)>> {
        let bytes = (column.len() as u64) * 8;
        let transfer_ns = devices
            .get(target)
            .map(|d| d.placement_cost_ns(bytes, 0.0))
            .unwrap_or(0.0);
        let mut cache = self.cache.take().expect("caller checked");
        if let Some(id) = cache.lookup(devices, target, name, column) {
            self.absorb_cache_frees(&mut cache);
            self.cache = Some(cache);
            return Ok(Some((id, true)));
        }
        let Some(id) = cache.begin_pin(devices, target, column) else {
            self.absorb_cache_frees(&mut cache);
            self.cache = Some(cache);
            return Ok(None);
        };
        self.absorb_cache_frees(&mut cache);
        match self.place_verified(devices, target, id, BufferData::I64(column.to_vec()), 0) {
            Ok(()) => {
                cache.commit_pin(target, name, column, id, transfer_ns);
                self.cache = Some(cache);
                Ok(Some((id, false)))
            }
            Err(e) => {
                cache.abort_pin(devices, target, id, bytes);
                self.cache = Some(cache);
                if matches!(
                    e,
                    ExecError::Device(
                        DeviceError::OutOfMemory { .. } | DeviceError::OutOfPinnedMemory { .. }
                    )
                ) {
                    // Admission said yes but the pool is genuinely full —
                    // fall back to the uncached path (which may still OOM,
                    // surfacing through the normal recovery machinery).
                    Ok(None)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Stages one chunk of a scan column into `staging` from a cached pin
    /// of the whole column, via a device-internal `create_chunk` copy
    /// instead of a host→device upload. On the first touch of an uncached
    /// column the whole column is pinned (once), so this and every later
    /// chunk stage device-internally.
    ///
    /// Returns `false` when the cache is absent or passed — the caller
    /// uploads the chunk payload as usual.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_chunk_from_cache(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        staging: BufferId,
        name: &str,
        column: &[i64],
        offset: usize,
        len: usize,
    ) -> Result<bool> {
        if self.cache.is_none() || len == 0 {
            return Ok(false);
        }
        let src = match self.cache_acquire_whole(devices, device, name, column)? {
            Some((id, _)) => id,
            None => return Ok(false),
        };
        let chunk_bytes = (len as u64) * 8;
        let saved = devices
            .get(device)
            .map(|d| d.placement_cost_ns(chunk_bytes, 0.0))
            .unwrap_or(0.0);
        let dev = devices.get_mut(device)?;
        // The staging slot was pre-allocated for uploads; re-materialize it
        // as a device-internal sub-buffer of the pinned column.
        match dev.delete_memory(staging) {
            Ok(()) | Err(DeviceError::UnknownBuffer(_)) => {}
            Err(e) => return Err(e.into()),
        }
        dev.create_chunk(src, staging, offset, len)?;
        if let Some(cache) = &mut self.cache {
            cache.note_saved_transfer_ns(saved);
        }
        Ok(true)
    }

    /// Purges per-run residency entries pointing at buffers the cache just
    /// freed (eviction under pressure mid-run must not leave dangling ids).
    fn absorb_cache_frees(&mut self, cache: &mut ResidencyCache) {
        for (d, id) in cache.take_freed() {
            self.untrack_buffer(d, id);
        }
    }

    /// Appends one chunk's worth of an escaped scratch result to the host
    /// accumulation.
    ///
    /// Chunks must arrive in order and contiguously: `chunk_offset` has to
    /// equal the end of the previous chunk (0 for the first). Out-of-order
    /// arrival means an execution-model bug and is rejected rather than
    /// silently producing misordered results.
    pub fn host_accumulate(
        &mut self,
        data: DataRef,
        semantic: DataSemantic,
        payload: BufferData,
        chunk_offset: usize,
        chunk_len: usize,
    ) -> Result<()> {
        let expected = self.host_offsets.get(&data).copied().unwrap_or(0);
        if chunk_offset != expected {
            return Err(ExecError::Internal(format!(
                "out-of-order host accumulation for {data:?}: \
                 got chunk offset {chunk_offset}, expected {expected}"
            )));
        }
        let entry = match self.host.entry(data) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(HostAccum::new(semantic)?),
        };
        entry.push_chunk(payload, chunk_offset, chunk_len)?;
        self.host_offsets.insert(data, chunk_offset + chunk_len);
        Ok(())
    }

    /// Takes a finished host accumulation (for graph outputs).
    pub fn take_host(&mut self, data: DataRef) -> Option<HostAccum> {
        self.host_offsets.remove(&data);
        self.host.remove(&data)
    }

    /// Discards a partial host accumulation (recovery: a failed pipeline
    /// attempt is rolled back before the retry re-streams from row 0).
    pub fn discard_host(&mut self, data: DataRef) {
        self.host_offsets.remove(&data);
        self.host.remove(&data);
    }

    /// Whether a host accumulation exists for `data`.
    pub fn has_host(&self, data: DataRef) -> bool {
        self.host.contains_key(&data)
    }

    /// `prepare_output_buffer()`: creates result space for output `port` of
    /// `node` on its device, sized for `estimate_rows` input rows, with the
    /// correct data semantics.
    ///
    /// Pipeline-breaker accumulators (hash tables, block-agg states) are
    /// initialized as device structures; everything else is a reserved
    /// scratch region the kernel fills.
    pub fn prepare_output_buffer(
        &mut self,
        devices: &mut DeviceRegistry,
        node: &PrimitiveNode,
        port: usize,
        semantic: DataSemantic,
        estimate_rows: usize,
    ) -> Result<BufferId> {
        let id = self.fresh_id();
        let device = devices.get_mut(node.device)?;
        match (&node.kind, &node.params) {
            (
                PrimitiveKind::HashBuild,
                NodeParams::HashBuild {
                    payload_cols,
                    expected,
                },
            ) => {
                device.init_structure(id, DataContainer::join_table(*expected, *payload_cols))?;
            }
            (
                PrimitiveKind::HashAgg,
                NodeParams::HashAgg {
                    payload_cols,
                    aggs,
                    expected_groups,
                },
            ) => {
                device.init_structure(
                    id,
                    DataContainer::agg_table(*expected_groups, aggs.clone(), *payload_cols),
                )?;
            }
            (PrimitiveKind::AggBlock, params) => {
                // Two accumulator slots `[state, rows]`, pre-set to the
                // aggregate's identity so zero-chunk scans still produce a
                // well-formed result.
                let identity = match params {
                    NodeParams::AggBlock { agg } => agg.identity(),
                    _ => 0,
                };
                device.init_structure(id, BufferData::I64(vec![identity, 0]))?;
            }
            (PrimitiveKind::FusedAgg, NodeParams::Fused { stages, .. }) => {
                // The fused accumulator is whatever the terminal aggregation
                // stage would have gotten unfused; interior stages get
                // nothing at all — that is the fusion win.
                match stages.last().map(|s| s.params.as_ref()) {
                    Some(NodeParams::AggBlock { agg }) => {
                        device.init_structure(id, BufferData::I64(vec![agg.identity(), 0]))?;
                    }
                    Some(NodeParams::HashAgg {
                        payload_cols,
                        aggs,
                        expected_groups,
                    }) => {
                        device.init_structure(
                            id,
                            DataContainer::agg_table(*expected_groups, aggs.clone(), *payload_cols),
                        )?;
                    }
                    _ => {
                        return Err(ExecError::Internal(format!(
                            "fused_agg node `{}` lacks an aggregation terminal stage",
                            node.label
                        )))
                    }
                }
            }
            _ => {
                let bytes = DataContainer::estimate_output_bytes(semantic, estimate_rows).max(8);
                device.prepare_memory(id, bytes)?;
            }
        }
        self.track_created(node.device, id);
        let _ = port;
        Ok(id)
    }

    /// A rollback mark: the number of buffers created so far. Pass it to
    /// [`DataTransferHub::rollback_to`] to free everything created after
    /// this point.
    pub fn mark(&self) -> usize {
        self.created.len()
    }

    /// Frees every buffer created after `mark` (on its owning device) and
    /// drops the matching residency entries. Used by the executor's
    /// recovery path to unwind a failed pipeline attempt.
    ///
    /// Tolerates exactly one failure mode:
    /// [`DeviceError::UnknownBuffer`] — the attempt died mid-allocation, so
    /// the buffer was tracked but never materialized. Any *other*
    /// `delete_memory` error is a real accounting bug (double free, driver
    /// fault) and is counted into `rollback_delete_errors` instead of being
    /// silently swallowed; the executor surfaces the count in
    /// `ExecutionStats`.
    pub fn rollback_to(&mut self, devices: &mut DeviceRegistry, mark: usize) {
        if mark >= self.created.len() {
            return;
        }
        for (dev, id) in self.created.split_off(mark) {
            self.release_probes += 1;
            if !self.live.remove(&(dev, id)) {
                // Already released mid-attempt; nothing to free.
                continue;
            }
            if let Some(refs) = self.by_buffer.remove(&(dev, id)) {
                self.release_probes += refs.len() as u64;
                for r in refs {
                    self.resident.remove(&(r, dev));
                }
            }
            match devices.get_mut(dev) {
                Ok(device) => match device.delete_memory(id) {
                    Ok(()) | Err(DeviceError::UnknownBuffer(_)) => {}
                    Err(_) => self.rollback_delete_errors += 1,
                },
                Err(_) => self.rollback_delete_errors += 1,
            }
        }
    }

    /// Frees one tracked buffer on its owning device, untracking it from
    /// the live set and the residency maps. Unlike the final
    /// [`DataTransferHub::delete_all`] sweep, errors here are real (the
    /// buffer is expected to exist) and are propagated.
    ///
    /// O(log n) in tracked buffers: residency entries are found through the
    /// `(device, id)` reverse index instead of scanning the whole map, so
    /// bulk eviction sweeps stay linear in the buffers released.
    pub fn release(
        &mut self,
        devices: &mut DeviceRegistry,
        device: DeviceId,
        id: BufferId,
    ) -> Result<()> {
        devices.get_mut(device)?.delete_memory(id)?;
        if !self.live.remove(&(device, id)) {
            return Err(ExecError::Internal(format!(
                "release of untracked buffer {id} on {device}"
            )));
        }
        self.untrack_buffer(device, id);
        Ok(())
    }

    /// Batch [`DataTransferHub::release`]: frees many tracked buffers in
    /// one sweep, stopping at the first error.
    pub fn release_many(
        &mut self,
        devices: &mut DeviceRegistry,
        buffers: &[(DeviceId, BufferId)],
    ) -> Result<()> {
        for &(device, id) in buffers {
            self.release(devices, device, id)?;
        }
        Ok(())
    }

    /// Drops residency bookkeeping for `(device, id)` via the reverse
    /// index (the buffer itself is already gone or owned elsewhere).
    fn untrack_buffer(&mut self, device: DeviceId, id: BufferId) {
        self.release_probes += 1;
        self.live.remove(&(device, id));
        if let Some(refs) = self.by_buffer.remove(&(device, id)) {
            self.release_probes += refs.len() as u64;
            for r in refs {
                self.resident.remove(&(r, device));
            }
        }
    }

    /// The delete phase: frees every buffer this hub created that is still
    /// live.
    ///
    /// This is the final idempotent sweep, by design tolerant of buffers
    /// that are already gone (wiped by a device reset). Per-pipeline
    /// cleanup goes through `release`, which *does* surface errors and
    /// clears live membership so this sweep never double-deletes.
    /// Residency-cache pins are not created through [`Self::track_created`]
    /// and therefore survive — they belong to the cache, not the run.
    pub fn delete_all(&mut self, devices: &mut DeviceRegistry) {
        for (dev, id) in self.created.drain(..) {
            if !self.live.remove(&(dev, id)) {
                continue;
            }
            if let Ok(device) = devices.get_mut(dev) {
                // Buffers may already be gone if a device was reset.
                let _ = device.delete_memory(id);
            }
        }
        self.resident.clear();
        self.by_buffer.clear();
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::profiles::DeviceProfile;

    fn two_devices() -> (DeviceRegistry, DeviceId, DeviceId) {
        let mut reg = DeviceRegistry::new();
        let a = reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(0))));
        let b = reg.add(Box::new(DeviceProfile::opencl_cpu_i7().build(DeviceId(1))));
        (reg, a, b)
    }

    #[test]
    fn load_and_route_across_devices() {
        let (mut devices, gpu, cpu) = two_devices();
        let mut hub = DataTransferHub::new();
        let data = DataRef::Input(0);
        let col = vec![1i64, 2, 3];
        let id_gpu = hub
            .load_whole_input(&mut devices, data, gpu, "in0", &col)
            .unwrap();
        // Second load is a no-op.
        assert_eq!(
            hub.load_whole_input(&mut devices, data, gpu, "in0", &col)
                .unwrap(),
            id_gpu
        );
        // Route to the CPU device: retrieve from GPU, place on CPU.
        let id_cpu = hub.router(&mut devices, data, cpu).unwrap();
        assert_ne!(id_gpu.0, id_cpu.0);
        let payload = devices
            .get_mut(cpu)
            .unwrap()
            .retrieve_data(id_cpu, None, 0)
            .unwrap();
        assert_eq!(payload, BufferData::I64(vec![1, 2, 3]));
        // GPU recorded an extra D2H from the routing.
        assert!(devices.get(gpu).unwrap().clock().bytes_d2h() > 0);
    }

    #[test]
    fn router_unknown_ref_errors() {
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        assert!(hub.router(&mut devices, DataRef::Input(9), gpu).is_err());
    }

    #[test]
    fn host_accumulation_shapes() {
        let mut hub = DataTransferHub::new();
        let r = DataRef::Input(0);
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![1, 2]), 0, 2)
            .unwrap();
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![3]), 2, 1)
            .unwrap();
        match hub.take_host(r).unwrap() {
            HostAccum::Numeric(v) => assert_eq!(v, vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }

        let p = DataRef::Input(1);
        hub.host_accumulate(p, DataSemantic::Position, BufferData::U32(vec![0, 3]), 0, 4)
            .unwrap();
        hub.host_accumulate(p, DataSemantic::Position, BufferData::U32(vec![1]), 4, 4)
            .unwrap();
        match hub.take_host(p).unwrap() {
            HostAccum::Position(v) => assert_eq!(v, vec![0, 3, 5]),
            other => panic!("{other:?}"),
        }

        let bm = DataRef::Input(2);
        hub.host_accumulate(
            bm,
            DataSemantic::Bitmap,
            BufferData::BitWords(vec![0b1]),
            0,
            3,
        )
        .unwrap();
        hub.host_accumulate(
            bm,
            DataSemantic::Bitmap,
            BufferData::BitWords(vec![0b10]),
            3,
            2,
        )
        .unwrap();
        match hub.take_host(bm).unwrap() {
            HostAccum::Bitmap(b) => {
                assert_eq!(b.len(), 5);
                assert!(b.get(0));
                assert!(b.get(4));
                assert_eq!(b.count_ones(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accumulation_kind_mismatch_rejected() {
        let mut hub = DataTransferHub::new();
        let r = DataRef::Input(0);
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![1]), 0, 1)
            .unwrap();
        assert!(hub
            .host_accumulate(r, DataSemantic::Numeric, BufferData::U32(vec![1]), 1, 1)
            .is_err());
        assert!(hub
            .host_accumulate(
                DataRef::Input(5),
                DataSemantic::HashTable,
                BufferData::I64(vec![]),
                0,
                0
            )
            .is_err());
    }

    #[test]
    fn delete_phase_frees_everything() {
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        hub.load_whole_input(&mut devices, DataRef::Input(0), gpu, "in0", &[1, 2, 3])
            .unwrap();
        assert!(devices.get(gpu).unwrap().pool().used() > 0);
        hub.delete_all(&mut devices);
        assert_eq!(devices.get(gpu).unwrap().pool().used(), 0);
    }

    #[test]
    fn router_source_is_lowest_device_id() {
        // Three devices; the ref is resident on devices 1 and 2. Routing to
        // device 0 must always pull from device 1 — the lowest holder —
        // not whichever the residency map happens to iterate first.
        let mut devices = DeviceRegistry::new();
        let a = devices.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(0))));
        let b = devices.add(Box::new(DeviceProfile::opencl_cpu_i7().build(DeviceId(1))));
        let c = devices.add(Box::new(DeviceProfile::opencl_cpu_i7().build(DeviceId(2))));
        let mut hub = DataTransferHub::new();
        let data = DataRef::Input(0);
        let col = vec![7i64; 64];
        hub.load_whole_input(&mut devices, data, b, "in0", &col)
            .unwrap();
        hub.load_whole_input(&mut devices, data, c, "in0", &col)
            .unwrap();

        hub.router(&mut devices, data, a).unwrap();
        assert!(devices.get(b).unwrap().clock().bytes_d2h() > 0);
        assert_eq!(devices.get(c).unwrap().clock().bytes_d2h(), 0);
    }

    #[test]
    fn host_accumulation_rejects_out_of_order_chunks() {
        let mut hub = DataTransferHub::new();
        let r = DataRef::Input(0);
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![1, 2]), 0, 2)
            .unwrap();
        // Replay of an already-consumed offset.
        assert!(hub
            .host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![9]), 1, 1)
            .is_err());
        // Gap: skipping ahead is just as wrong.
        assert!(hub
            .host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![9]), 4, 1)
            .is_err());
        // The expected offset still works.
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![3]), 2, 1)
            .unwrap();
        match hub.take_host(r).unwrap() {
            HostAccum::Numeric(v) => assert_eq!(v, vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn position_rebase_overflow_is_rejected() {
        let mut hub = DataTransferHub::new();
        let r = DataRef::Input(0);
        // Walk the expected offset to the edge of the u32 range with an
        // empty chunk, then offer positions that would wrap when rebased.
        let edge = u32::MAX as usize;
        hub.host_accumulate(r, DataSemantic::Position, BufferData::U32(vec![]), 0, edge)
            .unwrap();
        assert!(hub
            .host_accumulate(r, DataSemantic::Position, BufferData::U32(vec![5]), edge, 1)
            .is_err());

        // A chunk offset that itself exceeds u32 is rejected outright.
        let far = edge + 10;
        let s = DataRef::Input(1);
        hub.host_accumulate(s, DataSemantic::Position, BufferData::U32(vec![]), 0, far)
            .unwrap();
        assert!(hub
            .host_accumulate(s, DataSemantic::Position, BufferData::U32(vec![0]), far, 1)
            .is_err());
    }

    #[test]
    fn rollback_frees_only_buffers_after_mark() {
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let kept = DataRef::Input(0);
        hub.load_whole_input(&mut devices, kept, gpu, "in0", &[1, 2, 3])
            .unwrap();
        let used_before = devices.get(gpu).unwrap().pool().used();
        let mark = hub.mark();

        let rolled = DataRef::Input(1);
        hub.load_whole_input(&mut devices, rolled, gpu, "in0", &[4; 100])
            .unwrap();
        assert!(devices.get(gpu).unwrap().pool().used() > used_before);

        hub.rollback_to(&mut devices, mark);
        assert_eq!(devices.get(gpu).unwrap().pool().used(), used_before);
        // The pre-mark buffer survived, the post-mark one is untracked.
        assert!(hub.resident(kept, gpu).is_some());
        assert!(hub.resident(rolled, gpu).is_none());
        // And the sweep still releases the survivor exactly once.
        hub.delete_all(&mut devices);
        assert_eq!(devices.get(gpu).unwrap().pool().used(), 0);
    }

    #[test]
    fn release_untracks_so_delete_all_cannot_double_delete() {
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let data = DataRef::Input(0);
        let id = hub
            .load_whole_input(&mut devices, data, gpu, "in0", &[1, 2, 3])
            .unwrap();
        hub.release(&mut devices, gpu, id).unwrap();
        assert_eq!(devices.get(gpu).unwrap().pool().used(), 0);
        assert!(hub.resident(data, gpu).is_none());
        // Releasing an untracked buffer is an error, not a silent no-op.
        assert!(hub.release(&mut devices, gpu, id).is_err());
        // The final sweep has nothing left referencing the freed id.
        hub.delete_all(&mut devices);
    }

    #[test]
    fn corrupted_place_is_retransmitted_until_clean() {
        use adamant_device::fault::FaultPlan;
        let (mut devices, gpu, _) = two_devices();
        devices
            .get_mut(gpu)
            .unwrap()
            .set_fault_plan(FaultPlan::none().corrupt_on_place(1));
        let mut hub = DataTransferHub::new();
        let id = hub
            .load_whole_input(&mut devices, DataRef::Input(0), gpu, "in0", &[1, 2, 3, 4])
            .unwrap();
        // The first transmission was corrupted; the hub retransmitted.
        let log = hub.take_corruption_retransmits();
        assert_eq!(log.get(&gpu), Some(&1));
        // What the device now holds is the clean payload.
        let payload = devices
            .get_mut(gpu)
            .unwrap()
            .retrieve_data(id, None, 0)
            .unwrap();
        assert_eq!(payload, BufferData::I64(vec![1, 2, 3, 4]));
        // The drain reset the log.
        assert!(hub.take_corruption_retransmits().is_empty());
    }

    #[test]
    fn corrupted_retrieve_is_reread() {
        use adamant_device::fault::FaultPlan;
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let id = hub
            .load_whole_input(&mut devices, DataRef::Input(0), gpu, "in0", &[9, 8, 7])
            .unwrap();
        // Corrupt the *next* retrieve only (transfer ordinals count from
        // plan installation).
        devices
            .get_mut(gpu)
            .unwrap()
            .set_fault_plan(FaultPlan::none().corrupt_on_retrieve(1));
        let payload = hub
            .retrieve_verified(&mut devices, gpu, id, None, 0)
            .unwrap();
        assert_eq!(payload, BufferData::I64(vec![9, 8, 7]));
        assert_eq!(hub.take_corruption_retransmits().get(&gpu), Some(&1));
    }

    #[test]
    fn exhausted_retransmit_budget_surfaces_corruption_error() {
        use adamant_device::fault::FaultPlan;
        let (mut devices, gpu, _) = two_devices();
        // Every place is corrupted: scripted ordinals 1..=8 cover the whole
        // budget of 3 transmissions with room to spare.
        let mut plan = FaultPlan::none();
        for n in 1..=8 {
            plan = plan.corrupt_on_place(n);
        }
        devices.get_mut(gpu).unwrap().set_fault_plan(plan);
        let mut hub = DataTransferHub::new();
        hub.set_retransmit_budget(3);
        let before = devices.get(gpu).unwrap().clock().transfer_ns();
        let err = hub
            .load_whole_input(&mut devices, DataRef::Input(0), gpu, "in0", &[1, 2, 3])
            .unwrap_err();
        assert!(
            matches!(err, ExecError::TransferCorrupted { device, .. } if device == gpu),
            "got {err}"
        );
        assert_eq!(hub.take_corruption_retransmits().get(&gpu), Some(&3));
        // Doubling back-off was charged for attempts 2 and 3.
        let spent = devices.get(gpu).unwrap().clock().transfer_ns() - before;
        assert!(spent >= 500.0 + 1000.0, "backoff missing: {spent}");
        // The poisoned buffer is still tracked, so the sweep reclaims it.
        hub.delete_all(&mut devices);
        assert_eq!(devices.get(gpu).unwrap().pool().used(), 0);
    }

    #[test]
    fn router_prefers_host_copy_over_quarantined_holder() {
        // Regression: with every resident holder quarantined AND a host
        // accumulation present, the router used to read through the tripped
        // device. The host copy is authoritative and off the sick device's
        // critical path — it must win.
        let (mut devices, gpu, cpu) = two_devices();
        let mut hub = DataTransferHub::new();
        let r = DataRef::Output {
            node: crate::graph::NodeId(0),
            port: 0,
        };
        // Host copy exists...
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![5, 6]), 0, 2)
            .unwrap();
        // ...and so does a device copy, but its holder is quarantined.
        let id = hub.fresh_id();
        devices
            .get_mut(gpu)
            .unwrap()
            .prepare_memory(id, 16)
            .unwrap();
        devices
            .get_mut(gpu)
            .unwrap()
            .place_data(id, BufferData::I64(vec![5, 6]), 0)
            .unwrap();
        hub.track_created(gpu, id);
        hub.register_resident(r, gpu, id);
        hub.set_quarantined([gpu].into_iter().collect());
        let d2h_before = devices.get(gpu).unwrap().clock().bytes_d2h();

        let id_cpu = hub.router(&mut devices, r, cpu).unwrap();

        // The quarantined holder was never read; the upload came from host.
        assert_eq!(devices.get(gpu).unwrap().clock().bytes_d2h(), d2h_before);
        let payload = devices
            .get_mut(cpu)
            .unwrap()
            .retrieve_data(id_cpu, None, 0)
            .unwrap();
        assert_eq!(payload, BufferData::I64(vec![5, 6]));
        // With no host copy it still reads through the quarantined holder
        // as a last resort (Input refs have no host accumulation).
        let last_resort = DataRef::Input(0);
        hub.load_whole_input(&mut devices, last_resort, gpu, "in0", &[1, 2])
            .unwrap();
        hub.router(&mut devices, last_resort, cpu).unwrap();
        assert!(devices.get(gpu).unwrap().clock().bytes_d2h() > d2h_before);
    }

    #[test]
    fn bulk_release_does_bounded_work() {
        // Regression: `release` used to do two full-map `retain` scans per
        // freed buffer, making a bulk evict sweep O(created × resident).
        // The reverse index keeps it O(log n) per buffer; the probe counter
        // (not a wall clock) asserts the bound.
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let n = 1000usize;
        let mut buffers = Vec::with_capacity(n);
        for i in 0..n {
            let id = hub
                .load_whole_input(&mut devices, DataRef::Input(i), gpu, "in0", &[i as i64])
                .unwrap();
            buffers.push((gpu, id));
        }
        assert_eq!(hub.release_probes(), 0, "loads must not count as probes");
        hub.release_many(&mut devices, &buffers).unwrap();
        // One probe per buffer plus one per resident ref pointing at it:
        // 2n here. The old quadratic sweep would have counted ~n²/2.
        assert_eq!(hub.release_probes(), 2 * n as u64);
        assert_eq!(devices.get(gpu).unwrap().pool().used(), 0);
        // Everything is untracked: the sweep has nothing left to free.
        hub.delete_all(&mut devices);
    }

    #[test]
    fn rollback_counts_unexpected_delete_errors() {
        use adamant_device::device::DeviceInfo;
        use adamant_device::sim::SimDevice;
        use adamant_device::transform::TransformTable;

        // A buffer tracked but never actually allocated: the fault died
        // mid-allocation (OOM between `track_created` and the pool insert).
        // Rollback must tolerate the resulting `UnknownBuffer` silently.
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let mark = hub.mark();
        hub.track_created(gpu, BufferId(777));
        hub.rollback_to(&mut devices, mark);
        assert_eq!(hub.take_rollback_delete_errors(), 0);

        // A device that fails `delete_memory` for a *different* reason
        // (never initialized → `DeviceError::NotInitialized`): that is data
        // loss the run must hear about, not swallow.
        let p = DeviceProfile::cuda_rtx2080ti();
        let broken = SimDevice::new(
            DeviceInfo {
                id: DeviceId(9),
                name: p.name.clone(),
                kind: p.kind,
                sdk: p.sdk,
                memory_capacity: p.memory_capacity,
                pinned_capacity: p.pinned_capacity,
            },
            p.cost.clone(),
            TransformTable::new(),
            p.supports_compilation,
        );
        let bad = devices.add(Box::new(broken));
        let mark = hub.mark();
        hub.track_created(bad, BufferId(1));
        hub.rollback_to(&mut devices, mark);
        assert_eq!(hub.take_rollback_delete_errors(), 1);
        // The drain reset the counter.
        assert_eq!(hub.take_rollback_delete_errors(), 0);
    }

    #[test]
    fn host_upload_is_a_clone() {
        let (mut devices, gpu, _) = two_devices();
        let mut hub = DataTransferHub::new();
        let r = DataRef::Output {
            node: crate::graph::NodeId(0),
            port: 0,
        };
        hub.host_accumulate(r, DataSemantic::Numeric, BufferData::I64(vec![1, 2]), 0, 2)
            .unwrap();
        let id = hub.router(&mut devices, r, gpu).unwrap();
        let payload = devices
            .get_mut(gpu)
            .unwrap()
            .retrieve_data(id, None, 0)
            .unwrap();
        assert_eq!(payload, BufferData::I64(vec![1, 2]));
        // The host copy is still there: deleting the device buffer (e.g. in
        // a recovery rollback) cannot lose the accumulated result.
        assert!(hub.has_host(r));
        match hub.take_host(r).unwrap() {
            HostAccum::Numeric(v) => assert_eq!(v, vec![1, 2]),
            other => panic!("{other:?}"),
        }
    }
}
