//! Criterion wall-clock benchmarks of the primitive kernels themselves
//! (the engine's real speed, complementing the modeled figures).

use adamant::prelude::*;
use adamant::task::container::DataContainer;
use adamant_bench::{random_ints, standard_tasks};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 1 << 20;

fn device() -> adamant::device::sim::SimDevice {
    let mut dev = DeviceProfile::cuda_rtx2080ti().build(DeviceId(0));
    standard_tasks().install_on(&mut dev).unwrap();
    dev
}

fn bench_scan_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("filter_bitmap", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 1)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "filter_bitmap",
                vec![BufferId(1), BufferId(2)],
                vec![CmpOp::Lt.to_code(), 50, 0],
            ))
            .unwrap()
        });
    });

    group.bench_function("filter_bitmap@branchless", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 1)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "filter_bitmap@branchless",
                vec![BufferId(1), BufferId(2)],
                vec![CmpOp::Lt.to_code(), 50, 0],
            ))
            .unwrap()
        });
    });

    group.bench_function("map_mul_const", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 1000, 2)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "map",
                vec![BufferId(1), BufferId(2)],
                vec![MapOp::MulConst.to_code(), 3],
            ))
            .unwrap()
        });
    });

    group.bench_function("materialize_50pct", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 3)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        dev.execute(&ExecuteSpec::new(
            "filter_bitmap",
            vec![BufferId(1), BufferId(2)],
            vec![CmpOp::Lt.to_code(), 50, 0],
        ))
        .unwrap();
        dev.prepare_memory(BufferId(3), 8).unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "materialize",
                vec![BufferId(1), BufferId(2), BufferId(3)],
                vec![],
            ))
            .unwrap()
        });
    });

    group.bench_function("agg_block_sum", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 1000, 4)), 0)
            .unwrap();
        dev.init_structure(BufferId(2), BufferData::I64(Vec::new()))
            .unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "agg_block",
                vec![BufferId(1), BufferId(2)],
                vec![AggFunc::Sum.to_code()],
            ))
            .unwrap()
        });
    });

    group.finish();
}

fn bench_hash_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    for groups in [16usize, 1 << 12, 1 << 18] {
        group.bench_with_input(
            BenchmarkId::new("hash_agg", groups),
            &groups,
            |bencher, &groups| {
                let mut dev = device();
                dev.place_data(
                    BufferId(1),
                    BufferData::I64(random_ints(N, groups as i64, 5)),
                    0,
                )
                .unwrap();
                dev.place_data(BufferId(2), BufferData::I64(random_ints(N, 1000, 6)), 0)
                    .unwrap();
                bencher.iter(|| {
                    // Fresh table each iteration (accumulating tables grow).
                    let _ = dev.delete_memory(BufferId(3));
                    dev.init_structure(
                        BufferId(3),
                        DataContainer::agg_table(groups, vec![AggFunc::Sum], 0),
                    )
                    .unwrap();
                    dev.execute(&ExecuteSpec::new(
                        "hash_agg",
                        vec![BufferId(1), BufferId(2), BufferId(3)],
                        vec![0, 1],
                    ))
                    .unwrap()
                });
            },
        );
    }

    group.bench_function("hash_build", |bencher| {
        let mut dev = device();
        dev.place_data(
            BufferId(1),
            BufferData::I64(random_ints(N, i64::MAX / 2, 7)),
            0,
        )
        .unwrap();
        bencher.iter(|| {
            let _ = dev.delete_memory(BufferId(2));
            dev.init_structure(BufferId(2), DataContainer::join_table(N, 0))
                .unwrap();
            dev.execute(&ExecuteSpec::new(
                "hash_build",
                vec![BufferId(1), BufferId(2)],
                vec![0],
            ))
            .unwrap()
        });
    });

    group.bench_function("hash_probe", |bencher| {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, N as i64, 8)), 0)
            .unwrap();
        dev.init_structure(BufferId(2), DataContainer::join_table(N, 0))
            .unwrap();
        dev.execute(&ExecuteSpec::new(
            "hash_build",
            vec![BufferId(1), BufferId(2)],
            vec![0],
        ))
        .unwrap();
        dev.place_data(BufferId(3), BufferData::I64(random_ints(N, N as i64, 9)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(4), 8).unwrap();
        bencher.iter(|| {
            dev.execute(&ExecuteSpec::new(
                "hash_probe",
                vec![BufferId(3), BufferId(2), BufferId(4)],
                vec![0],
            ))
            .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scan_kernels, bench_hash_kernels);
criterion_main!(benches);
