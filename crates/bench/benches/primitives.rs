//! Wall-clock benchmarks of the primitive kernels themselves (the
//! engine's real speed, complementing the modeled figures).
//!
//! Plain `fn main` harness (`harness = false`): run with
//! `cargo bench --bench primitives`.

use adamant::prelude::*;
use adamant::task::container::DataContainer;
use adamant_bench::{bench, random_ints, standard_tasks};

const N: usize = 1 << 20;
const SAMPLES: usize = 10;

fn device() -> adamant::device::sim::SimDevice {
    let mut dev = DeviceProfile::cuda_rtx2080ti().build(DeviceId(0));
    standard_tasks().install_on(&mut dev).unwrap();
    dev
}

fn bench_scan_kernels() {
    let group = "scan_kernels";

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 1)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bench(group, "filter_bitmap", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "filter_bitmap",
                vec![BufferId(1), BufferId(2)],
                vec![CmpOp::Lt.to_code(), 50, 0],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 1)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bench(group, "filter_bitmap@branchless", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "filter_bitmap@branchless",
                vec![BufferId(1), BufferId(2)],
                vec![CmpOp::Lt.to_code(), 50, 0],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 1000, 2)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        bench(group, "map_mul_const", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "map",
                vec![BufferId(1), BufferId(2)],
                vec![MapOp::MulConst.to_code(), 3],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 100, 3)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(2), 8).unwrap();
        dev.execute(&ExecuteSpec::new(
            "filter_bitmap",
            vec![BufferId(1), BufferId(2)],
            vec![CmpOp::Lt.to_code(), 50, 0],
        ))
        .unwrap();
        dev.prepare_memory(BufferId(3), 8).unwrap();
        bench(group, "materialize_50pct", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "materialize",
                vec![BufferId(1), BufferId(2), BufferId(3)],
                vec![],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, 1000, 4)), 0)
            .unwrap();
        dev.init_structure(BufferId(2), BufferData::I64(Vec::new()))
            .unwrap();
        bench(group, "agg_block_sum", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "agg_block",
                vec![BufferId(1), BufferId(2)],
                vec![AggFunc::Sum.to_code()],
            ))
            .unwrap()
        });
    }
}

fn bench_hash_kernels() {
    let group = "hash_kernels";

    for groups in [16usize, 1 << 12, 1 << 18] {
        let mut dev = device();
        dev.place_data(
            BufferId(1),
            BufferData::I64(random_ints(N, groups as i64, 5)),
            0,
        )
        .unwrap();
        dev.place_data(BufferId(2), BufferData::I64(random_ints(N, 1000, 6)), 0)
            .unwrap();
        bench(group, &format!("hash_agg/{groups}"), SAMPLES, || {
            // Fresh table each iteration (accumulating tables grow).
            let _ = dev.delete_memory(BufferId(3));
            dev.init_structure(
                BufferId(3),
                DataContainer::agg_table(groups, vec![AggFunc::Sum], 0),
            )
            .unwrap();
            dev.execute(&ExecuteSpec::new(
                "hash_agg",
                vec![BufferId(1), BufferId(2), BufferId(3)],
                vec![0, 1],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(
            BufferId(1),
            BufferData::I64(random_ints(N, i64::MAX / 2, 7)),
            0,
        )
        .unwrap();
        bench(group, "hash_build", SAMPLES, || {
            let _ = dev.delete_memory(BufferId(2));
            dev.init_structure(BufferId(2), DataContainer::join_table(N, 0))
                .unwrap();
            dev.execute(&ExecuteSpec::new(
                "hash_build",
                vec![BufferId(1), BufferId(2)],
                vec![0],
            ))
            .unwrap()
        });
    }

    {
        let mut dev = device();
        dev.place_data(BufferId(1), BufferData::I64(random_ints(N, N as i64, 8)), 0)
            .unwrap();
        dev.init_structure(BufferId(2), DataContainer::join_table(N, 0))
            .unwrap();
        dev.execute(&ExecuteSpec::new(
            "hash_build",
            vec![BufferId(1), BufferId(2)],
            vec![0],
        ))
        .unwrap();
        dev.place_data(BufferId(3), BufferData::I64(random_ints(N, N as i64, 9)), 0)
            .unwrap();
        dev.prepare_memory(BufferId(4), 8).unwrap();
        bench(group, "hash_probe", SAMPLES, || {
            dev.execute(&ExecuteSpec::new(
                "hash_probe",
                vec![BufferId(3), BufferId(2), BufferId(4)],
                vec![0],
            ))
            .unwrap()
        });
    }
}

fn main() {
    bench_scan_kernels();
    bench_hash_kernels();
}
