//! Criterion wall-clock benchmarks of full TPC-H queries under each
//! execution model (the engine's real end-to-end speed; the *modeled*
//! times of Fig. 11 come from the `fig11_exec_models` binary).

use adamant::prelude::*;
use adamant_bench::{catalog, engine_with};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_models(c: &mut Criterion) {
    let cat = catalog(0.01);
    let mut group = c.benchmark_group("q6_models");
    group.sample_size(10);
    for model in ExecutionModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |bencher, &model| {
                bencher.iter(|| {
                    let (mut engine, dev) =
                        engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << 13);
                    let graph = TpchQuery::Q6.plan(dev, &cat).unwrap();
                    let inputs = TpchQuery::Q6.bind(&cat).unwrap();
                    engine.run(&graph, &inputs, model).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let cat = catalog(0.01);
    let mut group = c.benchmark_group("queries_chunked");
    group.sample_size(10);
    for q in TpchQuery::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(q.name()), &q, |bencher, &q| {
            bencher.iter(|| {
                let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << 13);
                let graph = q.plan(dev, &cat).unwrap();
                let inputs = q.bind(&cat).unwrap();
                engine.run(&graph, &inputs, ExecutionModel::Chunked).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_chunk_sizes(c: &mut Criterion) {
    // Ablation: chunk-size sensitivity of the 4-phase model (the paper
    // fixes 2^25 ints "found to be optimal for the underlying GPU").
    let cat = catalog(0.01);
    let mut group = c.benchmark_group("q6_chunk_size_ablation");
    group.sample_size(10);
    for exp in [10usize, 12, 14, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{exp}")),
            &exp,
            |bencher, &exp| {
                bencher.iter(|| {
                    let (mut engine, dev) =
                        engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << exp);
                    let graph = TpchQuery::Q6.plan(dev, &cat).unwrap();
                    let inputs = TpchQuery::Q6.bind(&cat).unwrap();
                    engine
                        .run(&graph, &inputs, ExecutionModel::FourPhasePipelined)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_queries, bench_chunk_sizes);
criterion_main!(benches);
