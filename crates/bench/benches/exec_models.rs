//! Wall-clock benchmarks of full TPC-H queries under each execution model
//! (the engine's real end-to-end speed; the *modeled* times of Fig. 11
//! come from the `fig11_exec_models` binary).
//!
//! Plain `fn main` harness (`harness = false`): run with
//! `cargo bench --bench exec_models`.

use adamant::prelude::*;
use adamant_bench::{bench, catalog, engine_with};

const SAMPLES: usize = 10;

fn bench_models(cat: &Catalog) {
    for model in ExecutionModel::ALL {
        bench("q6_models", model.name(), SAMPLES, || {
            let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << 13);
            let graph = TpchQuery::Q6.plan(dev, cat).unwrap();
            let inputs = TpchQuery::Q6.bind(cat).unwrap();
            engine.run(&graph, &inputs, model).unwrap()
        });
    }
}

fn bench_queries(cat: &Catalog) {
    for q in TpchQuery::ALL {
        bench("queries_chunked", q.name(), SAMPLES, || {
            let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << 13);
            let graph = q.plan(dev, cat).unwrap();
            let inputs = q.bind(cat).unwrap();
            engine
                .run(&graph, &inputs, ExecutionModel::Chunked)
                .unwrap()
        });
    }
}

fn bench_chunk_sizes(cat: &Catalog) {
    // Ablation: chunk-size sensitivity of the 4-phase model (the paper
    // fixes 2^25 ints "found to be optimal for the underlying GPU").
    for exp in [10usize, 12, 14, 16] {
        bench(
            "q6_chunk_size_ablation",
            &format!("2^{exp}"),
            SAMPLES,
            || {
                let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << exp);
                let graph = TpchQuery::Q6.plan(dev, cat).unwrap();
                let inputs = TpchQuery::Q6.bind(cat).unwrap();
                engine
                    .run(&graph, &inputs, ExecutionModel::FourPhasePipelined)
                    .unwrap()
            },
        );
    }
}

fn main() {
    let cat = catalog(0.01);
    bench_models(&cat);
    bench_queries(&cat);
    bench_chunk_sizes(&cat);
}
