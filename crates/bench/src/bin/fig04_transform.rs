//! Figure 4 — SDK memory-representation transforms.
//!
//! The paper's Fig. 4 motivates `transform_memory`: CUDA, OpenCL, Thrust
//! and Boost.Compute all interpret the same GPU memory through different
//! handle types. A naive engine converts by round-tripping through the
//! host; ADAMANT re-tags the handle in place when the transform table has
//! a zero-copy path. This binary measures both paths on the simulated GPU.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig04_transform`

use adamant::device::transform::TransformKind;
use adamant::prelude::*;
use adamant_bench::{ms, Report};

fn main() {
    println!("# Figure 4 — representation transforms (zero-copy vs host round-trip)");
    let sizes_mib = [16u64, 64, 256];

    let mut rep = Report::new(&[
        "size (MiB)",
        "zero-copy cuda→cl_mem (ms)",
        "round-trip cuda→host repr (ms)",
        "round-trip bytes moved (MiB)",
    ]);
    for &mib in &sizes_mib {
        let n = ((mib << 20) / 8) as usize;
        let mut dev = DeviceProfile::cuda_rtx2080ti().build(DeviceId(0));
        dev.place_data(BufferId(1), BufferData::I64(vec![7; n]), 0)
            .unwrap();
        dev.clock_mut().reset();

        // Zero-copy: both representations view the same VRAM.
        let kind = dev
            .transform_memory(BufferId(1), SdkRepr::ClBuffer)
            .unwrap();
        assert_eq!(kind, TransformKind::ZeroCopy);
        let zero_copy_ns = dev.clock().total_ns();
        dev.clock_mut().reset();

        // No path registered to the host representation: round-trip.
        let kind = dev.transform_memory(BufferId(1), SdkRepr::HostVec).unwrap();
        assert_eq!(kind, TransformKind::HostRoundTrip);
        let roundtrip_ns = dev.clock().total_ns();
        let moved = dev.clock().bytes_d2h() + dev.clock().bytes_h2d();

        rep.row(vec![
            format!("{mib}"),
            ms(zero_copy_ns),
            ms(roundtrip_ns),
            format!("{:.0}", moved as f64 / (1 << 20) as f64),
        ]);
    }
    rep.print("transform_memory cost by path");
    println!(
        "\nShape check vs paper: the zero-copy transform is size-independent\n\
         bookkeeping; the naive path crosses the bus twice and scales with\n\
         the buffer — the \"unwanted transfers\" Fig. 4 warns about."
    );
}
