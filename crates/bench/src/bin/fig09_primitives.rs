//! Figure 9 — primitive performance profiles across the four drivers:
//! (a) FILTER (bitmap), (b) FILTER + MATERIALIZE, (c) HASH_AGG vs group
//! count, (d) HASH_BUILD vs size, (e) HASH_PROBE vs size.
//!
//! Workload per the paper §V-A: random integers (2^28 in the paper; scaled
//! to 2^24 here with per-element costs unchanged — throughput is the
//! per-element quantity the figure reports).
//!
//! Run: `cargo run --release -p adamant-bench --bin fig09_primitives`

use adamant::prelude::*;
use adamant::task::container::DataContainer;
use adamant_bench::{gips, random_ints, setup1_profiles, Report};

const N: usize = 1 << 24;

struct Bench {
    dev: adamant::device::sim::SimDevice,
}

impl Bench {
    fn new(profile: &DeviceProfile) -> Self {
        let mut dev = profile.build(DeviceId(0));
        adamant_bench::standard_tasks()
            .install_on(&mut dev)
            .unwrap();
        Bench { dev }
    }

    fn place(&mut self, id: u64, data: Vec<i64>) {
        self.dev
            .place_data(BufferId(id), BufferData::I64(data), 0)
            .unwrap();
    }

    fn out(&mut self, id: u64) {
        self.dev.prepare_memory(BufferId(id), 8).unwrap();
    }

    /// Runs a kernel and returns its modeled compute nanoseconds.
    fn run(&mut self, kernel: &str, bufs: Vec<BufferId>, params: Vec<i64>) -> f64 {
        self.dev.clock_mut().drain_events();
        let before = self.dev.clock().compute_ns();
        self.dev
            .execute(&ExecuteSpec::new(kernel, bufs, params))
            .unwrap();
        self.dev.clock().compute_ns() - before
    }
}

fn b(id: u64) -> BufferId {
    BufferId(id)
}

fn main() {
    println!("# Figure 9 — primitive profiles (2^24 random ints, Setup 1 drivers)");
    let profiles = setup1_profiles();
    let headers = [
        "workload",
        "opencl@cpu",
        "openmp@cpu",
        "opencl@gpu",
        "cuda@gpu",
    ];

    // (a) FILTER producing a bitmap, selectivity sweep.
    let mut rep = Report::new(&headers);
    for sel_pct in [10i64, 50, 90] {
        let mut cells = vec![format!("selectivity {sel_pct}%")];
        for p in &profiles {
            let mut bench = Bench::new(p);
            bench.place(1, random_ints(N, 100, 1));
            bench.out(2);
            let ns = bench.run(
                "filter_bitmap",
                vec![b(1), b(2)],
                vec![CmpOp::Lt.to_code(), sel_pct, 0],
            );
            cells.push(gips(N as u64, ns));
        }
        rep.row(cells);
    }
    rep.print("(a) FILTER bitmap throughput (Gi elem/s) — flat in selectivity");

    // (b) FILTER + MATERIALIZE.
    let mut rep = Report::new(&headers);
    for sel_pct in [10i64, 50, 90] {
        let mut cells = vec![format!("selectivity {sel_pct}%")];
        for p in &profiles {
            let mut bench = Bench::new(p);
            bench.place(1, random_ints(N, 100, 1));
            bench.out(2);
            bench.out(3);
            let f = bench.run(
                "filter_bitmap",
                vec![b(1), b(2)],
                vec![CmpOp::Lt.to_code(), sel_pct, 0],
            );
            let m = bench.run("materialize", vec![b(1), b(2), b(3)], vec![]);
            cells.push(gips(N as u64, f + m));
        }
        rep.row(cells);
    }
    rep.print("(b) FILTER + MATERIALIZE throughput — GPUs lose ~3x to bit extraction");

    // (c) HASH_AGG vs group count.
    let mut rep = Report::new(&headers);
    for gexp in [4u32, 8, 12, 16, 20] {
        let groups = 1i64 << gexp;
        let mut cells = vec![format!("2^{gexp} groups")];
        for p in &profiles {
            let mut bench = Bench::new(p);
            bench.place(1, random_ints(N, groups, 2)); // keys
            bench.place(2, random_ints(N, 1000, 3)); // values
            bench
                .dev
                .init_structure(
                    b(3),
                    DataContainer::agg_table(groups as usize, vec![AggFunc::Sum], 0),
                )
                .unwrap();
            let ns = bench.run("hash_agg", vec![b(1), b(2), b(3)], vec![0, 1]);
            cells.push(gips(N as u64, ns));
        }
        rep.row(cells);
    }
    rep.print("(c) HASH_AGG throughput vs group count — OpenCL GPU degrades, CUDA flat");

    // (d) HASH_BUILD vs input size.
    let mut rep = Report::new(&headers);
    for nexp in [20u32, 22, 24] {
        let n = 1usize << nexp;
        let mut cells = vec![format!("2^{nexp} keys")];
        for p in &profiles {
            let mut bench = Bench::new(p);
            bench.place(1, random_ints(n, i64::MAX / 2, 4));
            bench
                .dev
                .init_structure(b(2), DataContainer::join_table(n, 0))
                .unwrap();
            let ns = bench.run("hash_build", vec![b(1), b(2)], vec![0]);
            cells.push(gips(n as u64, ns));
        }
        rep.row(cells);
    }
    rep.print("(d) HASH_BUILD throughput vs size — GPU throughput drops with size");

    // (e) HASH_PROBE vs input size.
    let mut rep = Report::new(&headers);
    for nexp in [20u32, 22, 24] {
        let n = 1usize << nexp;
        let mut cells = vec![format!("2^{nexp} probes")];
        for p in &profiles {
            let mut bench = Bench::new(p);
            let keys = random_ints(n, n as i64, 5);
            bench.place(1, keys.clone());
            bench
                .dev
                .init_structure(b(2), DataContainer::join_table(n, 0))
                .unwrap();
            bench.run("hash_build", vec![b(1), b(2)], vec![0]);
            bench.place(3, random_ints(n, n as i64, 6));
            bench.out(4);
            let ns = bench.run("hash_probe", vec![b(3), b(2), b(4)], vec![0]);
            cells.push(gips(n as u64, ns));
        }
        rep.row(cells);
    }
    rep.print("(e) HASH_PROBE throughput vs size — CUDA probe below OpenCL");

    println!(
        "\nShape check vs paper Fig. 9: filter flat & GPU-led; materialization\n\
         costs GPUs ~3x; OpenCL aggregation collapses at high group counts;\n\
         build slows with size (atomics on one shared table); CUDA probes\n\
         slightly slower than OpenCL."
    );
}
