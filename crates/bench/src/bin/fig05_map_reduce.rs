//! Figure 5 — `MAP` and `AGG_BLOCK` (reduce) throughput across the four
//! drivers, versus input size.
//!
//! Paper shape: both primitives are bandwidth-bound; OpenCL and the
//! device-aware implementations (CUDA, OpenMP) land close together, with
//! the GPUs far above the CPUs thanks to internal memory bandwidth.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig05_map_reduce`

use adamant::prelude::*;
use adamant_bench::{engine_with, gips, random_ints, setup1_profiles, Report};

fn run_primitive(profile: &DeviceProfile, data: &[i64], reduce: bool) -> f64 {
    let (mut engine, dev) = engine_with(profile, data.len().max(1));
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    if reduce {
        let x = s.materialized(&mut pb, "x").unwrap();
        let out = pb.agg_block(x, AggFunc::Sum, "reduce");
        pb.output("out", out);
    } else {
        s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(3)))
            .unwrap();
        let y = s.materialized(&mut pb, "y").unwrap();
        // Reduce the mapped column so the map output never leaves the
        // device (we only time the map kernel itself below).
        let out = pb.agg_block(y, AggFunc::Sum, "sink");
        pb.output("out", out);
    }
    let graph = pb.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.to_vec());
    let (_, stats) = engine
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap();
    // Kernel time of the primitive under test only.
    let key = if reduce { "reduce" } else { "map" };
    stats
        .per_primitive_ns
        .iter()
        .filter(|(k, _)| k.contains(key))
        .map(|(_, v)| *v)
        .sum()
}

fn main() {
    println!("# Figure 5 — map & reduce throughput (Setup 1 drivers)");
    for (title, reduce) in [("MAP (x * 3)", false), ("AGG_BLOCK (sum)", true)] {
        let mut report = Report::new(&[
            "n (elements)",
            "opencl@cpu",
            "openmp@cpu",
            "opencl@gpu",
            "cuda@gpu",
        ]);
        for exp in [20u32, 22, 24] {
            let n = 1usize << exp;
            let data = random_ints(n, 1 << 20, 42);
            let mut cells = vec![format!("2^{exp}")];
            for profile in setup1_profiles() {
                let kernel_ns = run_primitive(&profile, &data, reduce);
                cells.push(gips(n as u64, kernel_ns));
            }
            report.row(cells);
        }
        report.print(&format!("{title} throughput (Gi elements/s)"));
    }
    println!(
        "\nShape check vs paper: GPUs >> CPUs; CUDA ≈ OpenCL on GPU;\n\
         OpenCL slightly above OpenMP on CPU."
    );
}
