//! Figure 3 — data-transfer bandwidth, CUDA vs OpenCL, H2D and D2H,
//! pageable vs pinned, across transfer sizes.
//!
//! The paper profiles transfers on real GPUs and finds "a lower bandwidth
//! range for OpenCL compared to CUDA" from OpenCL's translation overhead.
//! Here the transfers run through the real device interface (`place_data`/
//! `retrieve_data` into pageable and pinned staging), and effective
//! bandwidth is computed from the clock's modeled durations.
//!
//! Emits `BENCH_fig03.json` (one row per size × driver × mode × direction)
//! alongside the markdown tables.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig03_bandwidth`

use adamant::prelude::*;
use adamant_bench::{gibs, jnum, jobj, jstr, write_bench_json, Report};

fn main() {
    println!("# Figure 3 — transfer bandwidth (CUDA vs OpenCL, RTX 2080 Ti class)");
    let sizes_mib: [u64; 6] = [1, 4, 16, 64, 128, 256];
    let mut json_rows: Vec<String> = Vec::new();

    for direction in ["H2D", "D2H"] {
        let mut report = Report::new(&[
            "size (MiB)",
            "cuda pageable",
            "cuda pinned",
            "opencl pageable",
            "opencl pinned",
        ]);
        for &mib in &sizes_mib {
            let bytes = mib << 20;
            let n = (bytes / 8) as usize;
            let mut cells = vec![format!("{mib}")];
            for profile in [
                DeviceProfile::cuda_rtx2080ti(),
                DeviceProfile::opencl_rtx2080ti(),
            ] {
                for pinned in [false, true] {
                    let mut dev = profile.build(DeviceId(0));
                    let data = vec![7i64; n];
                    // Stage into the right pool.
                    if pinned {
                        dev.add_pinned_memory(BufferId(1), bytes).unwrap();
                    } else {
                        dev.prepare_memory(BufferId(1), bytes).unwrap();
                    }
                    dev.clock_mut().drain_events();
                    let before = dev.clock().total_ns();
                    if direction == "H2D" {
                        dev.place_data(BufferId(1), BufferData::I64(data), 0)
                            .unwrap();
                    } else {
                        dev.place_data(BufferId(1), BufferData::I64(data), 0)
                            .unwrap();
                        dev.clock_mut().reset();
                        let _ = dev.retrieve_data(BufferId(1), None, 0).unwrap();
                    }
                    let elapsed =
                        dev.clock().total_ns() - if direction == "H2D" { before } else { 0.0 };
                    cells.push(gibs(bytes, elapsed));
                    json_rows.push(jobj(&[
                        ("driver", jstr(&profile.name)),
                        ("direction", jstr(direction)),
                        ("mode", jstr(if pinned { "pinned" } else { "pageable" })),
                        ("mib", mib.to_string()),
                        ("modeled_ns", jnum(elapsed)),
                        (
                            "gibs",
                            jnum(bytes as f64 / (1u64 << 30) as f64 / (elapsed / 1e9)),
                        ),
                    ]));
                }
            }
            report.row(cells);
        }
        report.print(&format!("{direction} effective bandwidth (GiB/s)"));
    }

    let path = write_bench_json("fig03", &json_rows).expect("write BENCH_fig03.json");
    println!("\nwrote {}", path.display());

    println!(
        "\nShape check vs paper: CUDA > OpenCL at every size; pinned ≈ 2x pageable;\n\
         small transfers lose bandwidth to fixed latency (both SDKs)."
    );
}
