//! Schema check for the `BENCH_*.json` perf-trajectory files — the jq-free
//! gate used by the `bench-trajectory` CI job.
//!
//! Validates, for each of `BENCH_fig03.json` / `BENCH_fig11.json` /
//! `BENCH_table02.json` / `BENCH_recovery.json` / `BENCH_fusion.json` (in
//! the directory given as the first argument, default `.`):
//!
//! - the envelope: `benchmark` matches the file name, `schema_version` is
//!   the current [`adamant_bench::BENCH_SCHEMA_VERSION`], `unit` is
//!   `modeled_ns`, and `rows` is a non-empty array of objects;
//! - for fig11: the `cold_warm` section exists and the warm run's modeled
//!   time is strictly below the cold run's — with a nonzero cache-hit
//!   counter — for at least 4 queries (the steady-state acceptance bar);
//! - for recovery: every `restart_vs_resume` row (deaths at >= 50%
//!   progress) resumed from a validated checkpoint and re-executed
//!   strictly fewer chunks than the restart-from-zero run;
//! - for fusion: **every** `fused_vs_unfused` row actually fused (one
//!   chain or more), materialized strictly fewer intermediate bytes than
//!   the unfused run, and was never slower on the modeled timeline.
//!
//! Exits nonzero with a diagnostic on any violation.
//!
//! Run: `cargo run --release -p adamant-bench --bin check_bench_json [dir]`

use std::collections::BTreeMap;

/// Minimal JSON value for the restricted grammar the reporters emit.
#[derive(Debug)]
enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any numeric literal, held as `f64`.
    Num(f64),
    /// A string literal (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order irrelevant for validation).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.lit("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.lit("null").map(|_| Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.s.len() {
            return Err(self.err("trailing garbage"));
        }
        Ok(v)
    }
}

/// Loads one `BENCH_<name>.json`, validates the envelope, returns the rows.
fn load(dir: &std::path::Path, name: &str) -> Result<Vec<Json>, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (run the bench bins first)", path.display()))?;
    let root = Parser::new(&text)
        .parse()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let bench = root
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{name}: missing 'benchmark'"))?;
    if bench != name {
        return Err(format!("{name}: benchmark field is '{bench}'"));
    }
    let ver = root
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{name}: missing 'schema_version'"))?;
    if ver != adamant_bench::BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "{name}: schema_version {ver} (expected {})",
            adamant_bench::BENCH_SCHEMA_VERSION
        ));
    }
    let unit = root
        .get("unit")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{name}: missing 'unit'"))?;
    if unit != "modeled_ns" {
        return Err(format!("{name}: unit '{unit}' (expected 'modeled_ns')"));
    }
    let rows = root
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{name}: missing 'rows' array"))?;
    if rows.is_empty() {
        return Err(format!("{name}: rows is empty"));
    }
    for (i, r) in rows.iter().enumerate() {
        if !matches!(r, Json::Obj(_)) {
            return Err(format!("{name}: row {i} is not an object"));
        }
    }
    println!("BENCH_{name}.json: envelope ok, {} rows", rows.len());
    Ok(rows.iter().map(clone_json).collect())
}

fn clone_json(v: &Json) -> Json {
    match v {
        Json::Null => Json::Null,
        Json::Bool(b) => Json::Bool(*b),
        Json::Num(n) => Json::Num(*n),
        Json::Str(s) => Json::Str(s.clone()),
        Json::Arr(a) => Json::Arr(a.iter().map(clone_json).collect()),
        Json::Obj(m) => Json::Obj(m.iter().map(|(k, v)| (k.clone(), clone_json(v))).collect()),
    }
}

/// The fig11 steady-state gate: ≥ 4 queries with warm < cold and hits > 0.
fn check_fig11(rows: &[Json]) -> Result<(), String> {
    let cold_warm: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("section").and_then(Json::as_str) == Some("cold_warm"))
        .collect();
    if cold_warm.is_empty() {
        return Err("fig11: no 'cold_warm' rows".into());
    }
    let mut wins = 0usize;
    for r in &cold_warm {
        let q = r.get("query").and_then(Json::as_str).unwrap_or("?");
        let cold = r
            .get("cold_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("fig11 {q}: missing cold_ns"))?;
        let warm = r
            .get("warm_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("fig11 {q}: missing warm_ns"))?;
        let hits = r
            .get("cache_hits")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("fig11 {q}: missing cache_hits"))?;
        if warm < cold && hits > 0.0 {
            wins += 1;
        }
    }
    if wins < 4 {
        return Err(format!(
            "fig11: warm < cold with cache hits on only {wins}/{} queries (need >= 4)",
            cold_warm.len()
        ));
    }
    println!(
        "BENCH_fig11.json: steady-state gate ok ({wins}/{} queries warm < cold with hits)",
        cold_warm.len()
    );
    Ok(())
}

/// The recovery gate: every restart-vs-resume row must have resumed from a
/// checkpoint and re-executed strictly fewer chunks than the full restart.
fn check_recovery(rows: &[Json]) -> Result<(), String> {
    let cmp: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("section").and_then(Json::as_str) == Some("restart_vs_resume"))
        .collect();
    if cmp.is_empty() {
        return Err("recovery: no 'restart_vs_resume' rows".into());
    }
    for r in &cmp {
        let label = format!(
            "recovery {} @{}",
            r.get("model").and_then(Json::as_str).unwrap_or("?"),
            r.get("death_frac").and_then(Json::as_num).unwrap_or(0.0)
        );
        let restart = r
            .get("restart_chunks")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{label}: missing restart_chunks"))?;
        let resume = r
            .get("resume_chunks")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{label}: missing resume_chunks"))?;
        let resumes = r
            .get("resumes")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{label}: missing resumes"))?;
        if resumes < 1.0 {
            return Err(format!("{label}: recovery never resumed from a checkpoint"));
        }
        if resume >= restart {
            return Err(format!(
                "{label}: resume re-executed {resume} chunks vs {restart} restarted \
                 (must be strictly fewer)"
            ));
        }
    }
    println!(
        "BENCH_recovery.json: resume gate ok ({} rows resume < restart with checkpoints)",
        cmp.len()
    );
    Ok(())
}

/// The fusion gate: every fused-vs-unfused row must have fused at least
/// one chain, elided intermediates (strictly fewer materialized bytes than
/// the unfused run), and never be slower on the modeled timeline.
fn check_fusion(rows: &[Json]) -> Result<(), String> {
    let cmp: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("section").and_then(Json::as_str) == Some("fused_vs_unfused"))
        .collect();
    if cmp.is_empty() {
        return Err("fusion: no 'fused_vs_unfused' rows".into());
    }
    for r in &cmp {
        let label = format!(
            "fusion {}/{}",
            r.get("query").and_then(Json::as_str).unwrap_or("?"),
            r.get("model").and_then(Json::as_str).unwrap_or("?")
        );
        let num = |key: &str| -> Result<f64, String> {
            r.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("{label}: missing {key}"))
        };
        if num("fused_chains")? < 1.0 {
            return Err(format!("{label}: the pass fused nothing"));
        }
        let fused_b = num("fused_intermediate_bytes")?;
        let unfused_b = num("unfused_intermediate_bytes")?;
        if fused_b >= unfused_b {
            return Err(format!(
                "{label}: fused materialized {fused_b} intermediate bytes vs \
                 {unfused_b} unfused (must be strictly fewer)"
            ));
        }
        if num("elided_bytes")? <= 0.0 {
            return Err(format!("{label}: no intermediates elided"));
        }
        let fused_ns = num("fused_ns")?;
        let unfused_ns = num("unfused_ns")?;
        if fused_ns > unfused_ns {
            return Err(format!(
                "{label}: fused {fused_ns} ns slower than unfused {unfused_ns} ns"
            ));
        }
    }
    println!(
        "BENCH_fusion.json: fusion gate ok ({} rows fused with fewer intermediates, never slower)",
        cmp.len()
    );
    Ok(())
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let dir = std::path::PathBuf::from(dir);
    let mut failed = false;
    let mut fig11_rows = None;
    let mut recovery_rows = None;
    let mut fusion_rows = None;
    for name in ["fig03", "fig11", "table02", "recovery", "fusion"] {
        match load(&dir, name) {
            Ok(rows) => {
                if name == "fig11" {
                    fig11_rows = Some(rows);
                } else if name == "recovery" {
                    recovery_rows = Some(rows);
                } else if name == "fusion" {
                    fusion_rows = Some(rows);
                }
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if let Some(rows) = fig11_rows {
        if let Err(e) = check_fig11(&rows) {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    if let Some(rows) = recovery_rows {
        if let Err(e) = check_recovery(&rows) {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    if let Some(rows) = fusion_rows {
        if let Err(e) = check_fusion(&rows) {
            eprintln!("FAIL: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all BENCH_*.json files pass schema + steady-state checks");
}
