//! Recovery trajectory — restart-from-zero vs checkpoint-resume under
//! scripted mid-query device deaths.
//!
//! For each chunked execution model and death point (50/70/90 % of the
//! fault-free device time), the doomed primary is killed mid-query and the
//! run recovers on the survivor twice: once with checkpoints off (the
//! legacy full restart) and once with checkpoint capture enabled (resume
//! from the last validated chunk boundary). Rows land in
//! `BENCH_recovery.json`; `check_bench_json` gates that the resume
//! re-executes strictly fewer chunks than the restart on every row.
//!
//! Run: `cargo run --release -p adamant-bench --bin recovery`

use adamant::prelude::*;
use adamant_bench::{catalog, jnum, jobj, jstr, ms, standard_tasks, write_bench_json, Report};

const SF: f64 = 0.01;
const CHUNK_ROWS: usize = 1 << 11;

const MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Chunked,
    ExecutionModel::Pipelined,
    ExecutionModel::FourPhaseChunked,
    ExecutionModel::FourPhasePipelined,
];

fn engine(checkpoints: bool, die_at_ns: Option<f64>) -> Adamant {
    let mut b = Adamant::builder()
        .tasks(standard_tasks())
        .chunk_rows(CHUNK_ROWS)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7());
    if checkpoints {
        b = b.checkpoints(CheckpointConfig::enabled().cost_factor(0.5));
    }
    if let Some(ns) = die_at_ns {
        b = b.fault_plan(0, FaultPlan::none().die_at_ns(ns));
    }
    b.build().expect("engine construction")
}

fn main() {
    println!("# Recovery — restart-from-zero vs checkpoint-resume (SF {SF})");
    let cat = catalog(SF);
    let q = TpchQuery::Q6;
    let inputs = q.bind(&cat).unwrap();

    let mut rep = Report::new(&[
        "model",
        "death at",
        "restart chunks",
        "resume chunks",
        "skipped",
        "restart (ms)",
        "resume (ms)",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for model in MODELS {
        // Fault-free run: the clock the death triggers are placed on.
        let clean_ns = {
            let mut e = engine(false, None);
            let dev0 = e.device_ids()[0];
            let graph = q.plan(dev0, &cat).unwrap();
            e.run(&graph, &inputs, model).unwrap();
            e.executor().devices().get(dev0).unwrap().clock().total_ns()
        };
        for frac in [0.5, 0.7, 0.9] {
            let die_at = clean_ns * frac;
            let run = |checkpoints: bool| -> ExecutionStats {
                let mut e = engine(checkpoints, Some(die_at));
                let dev0 = e.device_ids()[0];
                let graph = q.plan(dev0, &cat).unwrap();
                let (_, stats) = e.run(&graph, &inputs, model).expect("recovers on survivor");
                assert_eq!(stats.device_deaths, 1, "the scripted death must fire");
                stats
            };
            let restart = run(false);
            let resume = run(true);
            rep.row(vec![
                model.to_string(),
                format!("{:.0}%", frac * 100.0),
                restart.chunks_processed.to_string(),
                resume.chunks_processed.to_string(),
                resume.chunks_skipped_on_resume.to_string(),
                ms(restart.total_ns),
                ms(resume.total_ns),
            ]);
            json_rows.push(jobj(&[
                ("section", jstr("restart_vs_resume")),
                ("query", jstr(&q.to_string())),
                ("model", jstr(&model.to_string())),
                ("death_frac", jnum(frac)),
                ("restart_chunks", restart.chunks_processed.to_string()),
                ("resume_chunks", resume.chunks_processed.to_string()),
                (
                    "chunks_skipped",
                    resume.chunks_skipped_on_resume.to_string(),
                ),
                ("checkpoints_taken", resume.checkpoints_taken.to_string()),
                ("checkpoint_bytes", resume.checkpoint_bytes.to_string()),
                ("resumes", resume.resumes.to_string()),
                ("restart_ns", jnum(restart.total_ns)),
                ("resume_ns", jnum(resume.total_ns)),
            ]));
        }
    }
    rep.print("restart-from-zero vs checkpoint-resume after a mid-query death");
    println!(
        "\nEvery death lands at >= 50% progress, so the resume must re-execute\n\
         strictly fewer chunks than the restart (gated by check_bench_json);\n\
         the makespan delta is the re-executed work minus the capture cost."
    );

    let path = write_bench_json("recovery", &json_rows).expect("write BENCH_recovery.json");
    println!("\nwrote {}", path.display());
}
