//! Table II — the evaluated environments, as simulated device profiles.
//!
//! Emits `BENCH_table02.json` (one row per profile, calibrated parameters)
//! alongside the markdown table.
//!
//! Run: `cargo run --release -p adamant-bench --bin table02_profiles`

use adamant::prelude::*;
use adamant_bench::{jnum, jobj, jstr, write_bench_json, Report};

fn main() {
    println!("# Table II — simulated device/driver profiles");
    let mut rep = Report::new(&[
        "profile",
        "kind",
        "sdk",
        "memory (GiB)",
        "H2D pageable (GiB/s)",
        "H2D pinned (GiB/s)",
        "mem BW (GiB/s)",
        "launch (µs)",
        "per-arg (µs)",
        "runtime JIT",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for p in DeviceProfile::setup1()
        .into_iter()
        .chain(DeviceProfile::setup2())
    {
        rep.row(vec![
            p.name.clone(),
            format!("{:?}", p.kind),
            p.sdk.to_string(),
            format!("{:.0}", p.memory_capacity as f64 / (1u64 << 30) as f64),
            format!("{:.1}", p.cost.h2d_pageable_gibs),
            format!("{:.1}", p.cost.h2d_pinned_gibs),
            format!("{:.0}", p.cost.mem_bandwidth_gibs),
            format!("{:.1}", p.cost.launch_overhead_ns / 1000.0),
            format!("{:.2}", p.cost.per_arg_overhead_ns / 1000.0),
            format!("{}", p.supports_compilation),
        ]);
        json_rows.push(jobj(&[
            ("profile", jstr(&p.name)),
            ("kind", jstr(&format!("{:?}", p.kind))),
            ("sdk", jstr(&p.sdk.to_string())),
            ("memory_bytes", p.memory_capacity.to_string()),
            ("h2d_pageable_gibs", jnum(p.cost.h2d_pageable_gibs)),
            ("h2d_pinned_gibs", jnum(p.cost.h2d_pinned_gibs)),
            ("mem_bandwidth_gibs", jnum(p.cost.mem_bandwidth_gibs)),
            ("launch_overhead_ns", jnum(p.cost.launch_overhead_ns)),
            ("per_arg_overhead_ns", jnum(p.cost.per_arg_overhead_ns)),
            ("runtime_jit", p.supports_compilation.to_string()),
        ]));
    }
    rep.print("calibrated profiles (Setup 1 = i7-8700 + RTX 2080 Ti class, Setup 2 = Xeon 5220R + A100 class)");

    let path = write_bench_json("table02", &json_rows).expect("write BENCH_table02.json");
    println!("\nwrote {}", path.display());

    println!(
        "\nPaper Table II lists the physical machines; these profiles are their\n\
         simulated stand-ins (calibration rationale in crates/device/src/profiles.rs)."
    );
}
