//! Figure 10 — abstraction-layer overhead per driver per query.
//!
//! The paper measures "the difference between the overall execution time
//! and the total sum of processing time of the individual primitives of a
//! query" and finds the maximum overhead under OpenCL (explicit per-launch
//! data mapping), with CUDA and OpenMP lower.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig10_overhead`

use adamant::prelude::*;
use adamant_bench::{catalog, engine_with, ms, setup1_profiles, Report};

fn main() {
    println!("# Figure 10 — abstraction overhead (chunked execution, SF 0.01)");
    let cat = catalog(0.01);

    let mut rep = Report::new(&[
        "driver",
        "query",
        "total (ms)",
        "Σ primitives (ms)",
        "overhead (ms)",
        "overhead %",
    ]);
    let mut per_driver_overhead: Vec<(String, f64)> = Vec::new();
    for profile in setup1_profiles() {
        let mut driver_total = 0.0f64;
        for q in TpchQuery::PAPER_SET {
            let (mut engine, dev) = engine_with(&profile, 1 << 14);
            let graph = q.plan(dev, &cat).unwrap();
            let inputs = q.bind(&cat).unwrap();
            let (_, stats) = engine
                .run(&graph, &inputs, ExecutionModel::Chunked)
                .unwrap();
            rep.row(vec![
                profile.name.clone(),
                q.to_string(),
                ms(stats.total_ns),
                ms(stats.primitive_total_ns()),
                ms(stats.overhead_ns()),
                format!("{:.1}", stats.overhead_fraction() * 100.0),
            ]);
            driver_total += stats.overhead_ns();
        }
        per_driver_overhead.push((profile.name.clone(), driver_total));
    }
    rep.print("overhead = total − Σ primitive kernel time");

    let max = per_driver_overhead
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!(
        "\nlargest total overhead: {} ({} ms across Q3/Q4/Q6)",
        max.0,
        ms(max.1)
    );
    println!(
        "Shape check vs paper: OpenCL drivers carry the largest abstraction\n\
         overhead (explicit kernel-argument mapping); CUDA and OpenMP are lower."
    );
}
