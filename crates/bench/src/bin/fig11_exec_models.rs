//! Figure 11 — execution-model comparison on the GPU drivers (chunked vs
//! pipelined vs 4-phase, OpenCL vs CUDA, Q3/Q4/Q6), plus the HeavyDB-style
//! baseline with cold start ("w transfer") and in-place ("w/o transfer"),
//! including the Q3 out-of-memory failure, plus the steady-state cold/warm
//! comparison with the cross-query residency cache enabled (Part C).
//!
//! Scaling note (EXPERIMENTS.md): the paper runs SF 100–140 against an
//! 11 GiB GPU with 2^25-int chunks. We scale data and chunk size by the
//! same factor (SF 0.05, 2^14-row chunks) so the chunks-per-input ratio —
//! what the execution models react to — is preserved; for the baseline OOM
//! the device memory is scaled with the data as well.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig11_exec_models`

use adamant::prelude::*;
use adamant_bench::{
    catalog, engine_with, jnum, jobj, jstr, ms, standard_tasks, write_bench_json, Report,
};

const SF: f64 = 0.05;
const CHUNK_ROWS: usize = 1 << 14;

fn main() {
    println!("# Figure 11 — execution models and HeavyDB-style baseline (SF {SF})");
    let cat = catalog(SF);

    // ---- Part A: execution models × SDK × query ------------------------
    let models = [
        ExecutionModel::Chunked,
        ExecutionModel::Pipelined,
        ExecutionModel::FourPhaseChunked,
        ExecutionModel::FourPhasePipelined,
    ];
    let gpus = [
        DeviceProfile::opencl_rtx2080ti(),
        DeviceProfile::cuda_rtx2080ti(),
    ];
    let mut rep = Report::new(&[
        "query",
        "driver",
        "chunked (ms)",
        "pipelined (ms)",
        "4p-chunked (ms)",
        "4p-pipelined (ms)",
        "best vs chunked",
    ]);
    let mut speedups: Vec<(String, String, f64)> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for q in TpchQuery::PAPER_SET {
        for profile in &gpus {
            let mut row = vec![q.to_string(), profile.name.clone()];
            let mut times = Vec::new();
            for model in models {
                let (mut engine, dev) = engine_with(profile, CHUNK_ROWS);
                let graph = q.plan(dev, &cat).unwrap();
                let inputs = q.bind(&cat).unwrap();
                let (_, stats) = engine.run(&graph, &inputs, model).unwrap();
                times.push(stats.total_ns);
                row.push(ms(stats.total_ns));
                json_rows.push(jobj(&[
                    ("section", jstr("models")),
                    ("query", jstr(&q.to_string())),
                    ("profile", jstr(&profile.name)),
                    ("model", jstr(&model.to_string())),
                    ("modeled_ns", jnum(stats.total_ns)),
                ]));
            }
            let best = times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            let speedup = times[0] / best;
            row.push(format!("{speedup:.2}x"));
            speedups.push((q.to_string(), profile.name.clone(), speedup));
            rep.row(row);
        }
    }
    rep.print("A. modeled query time per execution model");

    let best = speedups.iter().max_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
    let worst = speedups.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
    println!(
        "\nbest-case 4-phase speedup over chunked: {:.2}x ({} on {});",
        best.2, best.0, best.1
    );
    println!(
        "worst case: {:.2}x ({} on {}) — shallow pipelines give transfer\n\
         hiding nothing to hide behind (the paper's Q4 observation).",
        worst.2, worst.0, worst.1
    );

    // ---- Part B: HeavyDB-style baseline --------------------------------
    // The paper runs the baseline at scale factors where Q4/Q6 fit in the
    // 11 GiB card but Q3's hash table no longer does. We scale the device
    // memory with the data to the same regime: measure each query's
    // whole-table-resident requirement and size the device between
    // max(Q4, Q6) and Q3.
    let measure = |q: TpchQuery| -> u64 {
        let profile = DeviceProfile::cuda_rtx2080ti();
        let baseline = BaselineExecutor::new(profile);
        let resident = baseline.resident_bytes(&cat, q).unwrap();
        let run = baseline.run(&cat, q).expect("fits in 11 GiB");
        resident
            + run
                .stats
                .peak_device_bytes
                .values()
                .max()
                .copied()
                .unwrap_or(0)
    };
    let req_q3 = measure(TpchQuery::Q3);
    let req_q4 = measure(TpchQuery::Q4);
    let req_q6 = measure(TpchQuery::Q6);
    let dev_mem = (req_q4.max(req_q6) + req_q3) / 2;
    let pinned = dev_mem / 4;
    println!(
        "\nB. baseline requirements: Q3 {:.1} MiB, Q4 {:.1} MiB, Q6 {:.1} MiB;\n\
         device memory scaled to {:.1} MiB (between max(Q4,Q6) and Q3 — the\n\
         paper's SF 100–140 vs 11 GiB regime)",
        req_q3 as f64 / (1 << 20) as f64,
        req_q4 as f64 / (1 << 20) as f64,
        req_q6 as f64 / (1 << 20) as f64,
        dev_mem as f64 / (1 << 20) as f64
    );

    let mut rep = Report::new(&[
        "query",
        "adamant chunked (ms)",
        "adamant 4p-pipelined (ms)",
        "baseline in-place (ms)",
        "baseline cold (ms)",
    ]);
    for q in TpchQuery::PAPER_SET {
        let profile = DeviceProfile::cuda_rtx2080ti().with_memory(dev_mem, pinned);
        let run_adamant = |model: ExecutionModel| -> Option<f64> {
            let (mut engine, dev) = engine_with(&profile, CHUNK_ROWS);
            let graph = q.plan(dev, &cat).ok()?;
            let inputs = q.bind(&cat).ok()?;
            engine
                .run(&graph, &inputs, model)
                .ok()
                .map(|(_, s)| s.total_ns)
        };
        let chunked = run_adamant(ExecutionModel::Chunked);
        let four_phase = run_adamant(ExecutionModel::FourPhasePipelined);
        let baseline = BaselineExecutor::new(profile.clone());
        let base = baseline.run(&cat, q);
        let fmt = |v: Option<f64>| v.map(ms).unwrap_or_else(|| "OOM".into());
        rep.row(vec![
            q.to_string(),
            fmt(chunked),
            fmt(four_phase),
            fmt(base.as_ref().ok().map(|r| r.hot_ns)),
            fmt(base.as_ref().ok().map(|r| r.cold_ns)),
        ]);
    }
    rep.print("B. ADAMANT vs whole-table-resident baseline");
    println!(
        "\nShape check vs paper: Q3 fails on the baseline (hash table exceeds\n\
         device memory) while ADAMANT streams it; baseline cold start is far\n\
         slower than ADAMANT (whole tables vs needed columns); in-place\n\
         baseline is comparable to chunked; 4-phase wins up to ~3x on deep\n\
         pipelines."
    );

    // ---- Part C: steady state with the cross-query residency cache -----
    // Each query runs twice on the same engine with a residency cache: the
    // cold run pins the input columns device-side, the warm run stages its
    // chunks from the pinned copies (device-internal copy instead of a PCIe
    // transfer). Rows land in BENCH_fig11.json; the check_bench_json bin
    // asserts warm < cold for most queries.
    let mut rep = Report::new(&[
        "query",
        "cold (ms)",
        "warm (ms)",
        "warm/cold",
        "hits",
        "misses",
        "evictions",
        "saved (ms)",
    ]);
    let mut warm_wins = 0usize;
    for q in TpchQuery::ALL {
        let profile = DeviceProfile::cuda_rtx2080ti();
        let mut engine = Adamant::builder()
            .tasks(standard_tasks())
            .chunk_rows(CHUNK_ROWS)
            .device(profile.clone())
            .residency_cache(ResidencyConfig::new(1 << 30))
            .build()
            .expect("engine construction");
        let dev = engine.device_ids()[0];
        let graph = q.plan(dev, &cat).unwrap();
        let inputs = q.bind(&cat).unwrap();
        let (_, cold) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        let (_, warm) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        if warm.total_ns < cold.total_ns {
            warm_wins += 1;
        }
        rep.row(vec![
            q.to_string(),
            ms(cold.total_ns),
            ms(warm.total_ns),
            format!("{:.2}", warm.total_ns / cold.total_ns),
            warm.cache_hits.to_string(),
            warm.cache_misses.to_string(),
            warm.cache_evictions.to_string(),
            ms(warm.cache_saved_transfer_ns),
        ]);
        json_rows.push(jobj(&[
            ("section", jstr("cold_warm")),
            ("query", jstr(&q.to_string())),
            ("profile", jstr(&profile.name)),
            ("model", jstr(&ExecutionModel::Chunked.to_string())),
            ("cold_ns", jnum(cold.total_ns)),
            ("warm_ns", jnum(warm.total_ns)),
            ("cache_hits", warm.cache_hits.to_string()),
            ("cache_misses", warm.cache_misses.to_string()),
            ("cache_evictions", warm.cache_evictions.to_string()),
            ("saved_transfer_ns", jnum(warm.cache_saved_transfer_ns)),
        ]));
    }
    rep.print("C. cold vs warm with the cross-query residency cache");
    println!(
        "\nwarm run beats cold on {warm_wins}/{} queries — pinned inputs turn\n\
         PCIe uploads into device-internal copies at memory bandwidth.",
        TpchQuery::ALL.len()
    );

    let path = write_bench_json("fig11", &json_rows).expect("write BENCH_fig11.json");
    println!("\nwrote {}", path.display());
}
