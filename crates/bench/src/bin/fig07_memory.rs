//! Figure 7 — why operator-at-a-time does not scale.
//!
//! * Left: per-query input footprints and the full TPC-H dataset vs GPU
//!   memory capacities, across scale factors.
//! * Middle/right: the Q6 plan's device-memory footprint over execution
//!   (operator-at-a-time), from the executor's memory trace.
//!
//! Run: `cargo run --release -p adamant-bench --bin fig07_memory`

use adamant::prelude::*;
use adamant::tpch::footprint;
use adamant_bench::{catalog, engine_with, Report};

fn gib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

fn main() {
    println!("# Figure 7 — TPC-H footprints vs device memory");

    // Left: query input sizes at several scale factors.
    let sfs = [1.0, 10.0, 30.0, 100.0, 140.0];
    let mut report = Report::new(&["query", "SF1", "SF10", "SF30", "SF100", "SF140"]);
    for q in 1..=22 {
        let mut cells = vec![format!("Q{q}")];
        for &sf in &sfs {
            cells.push(gib(footprint::query_input_bytes(q, sf)));
        }
        report.row(cells);
    }
    let mut dataset = vec!["full dataset".to_string()];
    for &sf in &sfs {
        dataset.push(gib(footprint::dataset_bytes(sf)));
    }
    report.row(dataset);
    report.print("query input footprints (GiB)");

    let mut caps = Report::new(&["device", "memory (GiB)"]);
    for (name, bytes) in footprint::gpu_capacities() {
        caps.row(vec![name.to_string(), gib(bytes)]);
    }
    caps.print("GPU memory capacities");

    // How many query inputs exceed an 11 GiB card per SF.
    let mut fits = Report::new(&["SF", "inputs > 11 GiB", "dataset fits 40 GiB?"]);
    for &sf in &sfs {
        let over = (1..=22)
            .filter(|&q| footprint::query_input_bytes(q, sf) > 11 * (1u64 << 30))
            .count();
        let dataset_fits = footprint::dataset_bytes(sf) <= 40 * (1u64 << 30);
        fits.row(vec![
            format!("{sf}"),
            format!("{over}/22"),
            format!("{dataset_fits}"),
        ]);
    }
    fits.print("scalability summary (the Fig. 7-left argument)");

    // Middle/right: Q6 memory footprint during OAAT execution.
    let cat = catalog(0.01);
    let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 1 << 20);
    let graph = TpchQuery::Q6.plan(dev, &cat).unwrap();
    let inputs = TpchQuery::Q6.bind(&cat).unwrap();
    let (_, stats) = engine
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap();
    let mut trace = Report::new(&["after primitive", "device memory (MiB)"]);
    for (label, bytes) in &stats.memory_trace {
        trace.row(vec![
            label.clone(),
            format!("{:.2}", *bytes as f64 / (1 << 20) as f64),
        ]);
    }
    trace.print("Q6 (SF 0.01) operator-at-a-time memory footprint trace");
    println!(
        "\npeak device memory: {:.2} MiB — intermediate results stack on top of\n\
         the resident input columns, the Fig. 7-right effect.",
        stats.peak_device_bytes.values().max().copied().unwrap_or(0) as f64 / (1 << 20) as f64
    );
}
