//! Fusion trajectory — fused vs unfused execution over the full TPC-H set.
//!
//! For every query and every execution model the same plan runs twice on
//! the same device profile: once with the fusion pass disengaged and once
//! with it on (the default). Rows land in `BENCH_fusion.json`;
//! `check_bench_json` gates that on **every** row the fused run
//! materializes strictly fewer intermediate bytes and is never slower on
//! the modeled timeline.
//!
//! Run: `cargo run --release -p adamant-bench --bin fusion`

use adamant::prelude::*;
use adamant_bench::{catalog, jnum, jobj, jstr, ms, standard_tasks, write_bench_json, Report};

const SF: f64 = 0.01;
const CHUNK_ROWS: usize = 1 << 11;

fn engine(fusion: bool) -> Adamant {
    Adamant::builder()
        .tasks(standard_tasks())
        .chunk_rows(CHUNK_ROWS)
        .fusion(fusion)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine construction")
}

fn main() {
    println!("# Fusion — fused vs unfused execution (SF {SF})");
    let cat = catalog(SF);
    let mut fused_engine = engine(true);
    let mut unfused_engine = engine(false);
    let dev = fused_engine.device_ids()[0];

    let mut rep = Report::new(&[
        "query",
        "model",
        "chains",
        "stages",
        "elided (B)",
        "interm fused (B)",
        "interm unfused (B)",
        "unfused (ms)",
        "fused (ms)",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for q in TpchQuery::ALL {
        let graph = q.plan(dev, &cat).unwrap();
        let inputs = q.bind(&cat).unwrap();
        for model in ExecutionModel::ALL {
            let (out_f, fused) = fused_engine.run(&graph, &inputs, model).expect("fused run");
            let (out_u, unfused) = unfused_engine
                .run(&graph, &inputs, model)
                .expect("unfused run");
            assert_eq!(
                format!("{out_f:?}"),
                format!("{out_u:?}"),
                "{q}/{model}: fused result diverged from unfused"
            );
            rep.row(vec![
                q.to_string(),
                model.to_string(),
                fused.fused_chains.to_string(),
                fused.nodes_fused.to_string(),
                fused.intermediates_elided_bytes.to_string(),
                fused.intermediate_bytes.to_string(),
                unfused.intermediate_bytes.to_string(),
                ms(unfused.total_ns),
                ms(fused.total_ns),
            ]);
            json_rows.push(jobj(&[
                ("section", jstr("fused_vs_unfused")),
                ("query", jstr(&q.to_string())),
                ("model", jstr(&model.to_string())),
                ("fused_chains", fused.fused_chains.to_string()),
                ("nodes_fused", fused.nodes_fused.to_string()),
                ("elided_bytes", fused.intermediates_elided_bytes.to_string()),
                (
                    "fused_intermediate_bytes",
                    fused.intermediate_bytes.to_string(),
                ),
                (
                    "unfused_intermediate_bytes",
                    unfused.intermediate_bytes.to_string(),
                ),
                ("saved_ns", jnum(fused.fusion_saved_transfer_ns)),
                ("fused_ns", jnum(fused.total_ns)),
                ("unfused_ns", jnum(unfused.total_ns)),
            ]));
        }
    }
    rep.print("fused vs unfused, per query x execution model");
    println!(
        "\nEvery row is gated by check_bench_json: the fused run must\n\
         materialize strictly fewer intermediate bytes and must never be\n\
         slower than the unfused run on the modeled timeline."
    );

    let path = write_bench_json("fusion", &json_rows).expect("write BENCH_fusion.json");
    println!("\nwrote {}", path.display());
}
