//! Shared harness for the figure-reproduction binaries and wall-clock
//! benches.
//!
//! Every table and figure of the paper's evaluation has a binary here that
//! regenerates it (modeled times from the device cost models — the
//! hardware-shaped quantities) and, where wall-clock matters, a plain
//! `fn main` bench measuring the engine itself. EXPERIMENTS.md records the
//! outputs against the paper's numbers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use adamant::prelude::*;

/// The four drivers of the paper's Setup 1, in presentation order:
/// OpenCL (CPU), OpenMP, OpenCL (GPU), CUDA.
pub fn setup1_profiles() -> Vec<DeviceProfile> {
    DeviceProfile::setup1()
}

/// GPU-only drivers of Setup 1 (for the transfer/execution-model figures).
pub fn setup1_gpus() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::opencl_rtx2080ti(),
        DeviceProfile::cuda_rtx2080ti(),
    ]
}

/// The default task registry used by every experiment.
pub fn standard_tasks() -> TaskRegistry {
    TaskRegistry::with_defaults(&[
        SdkKind::Cuda,
        SdkKind::OpenCl,
        SdkKind::OpenMp,
        SdkKind::Host,
    ])
}

/// Builds a single-device engine.
pub fn engine_with(profile: &DeviceProfile, chunk_rows: usize) -> (Adamant, DeviceId) {
    let engine = Adamant::builder()
        .tasks(standard_tasks())
        .chunk_rows(chunk_rows)
        .device(profile.clone())
        .build()
        .expect("engine construction");
    let dev = engine.device_ids()[0];
    (engine, dev)
}

/// A fixed-seed catalog for the experiments (scale factor varies per
/// experiment; documented in EXPERIMENTS.md).
pub fn catalog(sf: f64) -> Catalog {
    TpchGenerator::new(sf, 0xADA).generate()
}

/// Deterministic pseudo-random `i64` data in `0..range` (the "random
/// distribution" workload of §V-A).
pub fn random_ints(n: usize, range: i64, seed: u64) -> Vec<i64> {
    // SplitMix64: deterministic, fast, no external deps in this crate path.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.push((z as i64).rem_euclid(range.max(1)));
    }
    out
}

/// Minimal wall-clock micro-bench: one warmup call, then `samples` timed
/// runs; prints the median and minimum. A dependency-free stand-in for a
/// statistics-grade harness — good enough to spot order-of-magnitude
/// regressions in the engine's real (non-modeled) speed.
pub fn bench<R>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2] as f64;
    let min = times[0] as f64;
    println!(
        "{group}/{name}: median {} ms, min {} ms ({} samples)",
        ms(median),
        ms(min),
        times.len()
    );
}

/// Pretty-prints a markdown table.
pub struct Report {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Report {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Prints the table as markdown.
    pub fn print(&self, title: &str) {
        println!("\n### {title}\n");
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
    }
}

// ---- machine-readable trajectory reports --------------------------------
//
// Each figure bin additionally emits a `BENCH_<name>.json` next to the
// markdown table, so successive commits leave a comparable perf trajectory.
// Hand-rolled JSON like the rest of the workspace (std-only, no format
// crate); the `check_bench_json` bin validates the schema in CI.

/// Schema version stamped into every `BENCH_*.json`.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Quotes and escapes a JSON string.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (non-finite values become 0 — JSON has
/// no NaN/Infinity).
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".to_string()
    }
}

/// Builds one JSON object from pre-rendered `(key, value)` pairs (values
/// must already be valid JSON fragments).
pub fn jobj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{v}", jstr(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Writes `BENCH_<name>.json` into the current directory (the repo root
/// when run via `cargo run`): a schema-versioned envelope around the bin's
/// result rows. Returns the path written.
pub fn write_bench_json(name: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let payload = jobj(&[
        ("benchmark", jstr(name)),
        ("schema_version", BENCH_SCHEMA_VERSION.to_string()),
        ("unit", jstr("modeled_ns")),
        ("rows", format!("[{}]", rows.join(","))),
    ]);
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, payload + "\n")?;
    Ok(path)
}

/// Formats nanoseconds as milliseconds with 2 decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

/// Formats a throughput in Gi elements per second.
pub fn gips(elements: u64, ns: f64) -> String {
    format!("{:.3}", elements as f64 / (1u64 << 30) as f64 / (ns / 1e9))
}

/// Formats bytes as GiB/s bandwidth for a duration.
pub fn gibs(bytes: u64, ns: f64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64 / (ns / 1e9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_ints_deterministic_and_ranged() {
        let a = random_ints(1000, 100, 7);
        let b = random_ints(1000, 100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0..100).contains(&x)));
        let c = random_ints(1000, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn report_formats() {
        let mut r = Report::new(&["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.print("test"); // visual; just must not panic
    }

    #[test]
    fn format_helpers() {
        assert_eq!(ms(2_500_000.0), "2.50");
        assert_eq!(gips(1 << 30, 1e9), "1.000");
        assert_eq!(gibs(1 << 30, 1e9), "1.00");
    }

    #[test]
    fn json_helpers_render_valid_fragments() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(jnum(1.25), "1.2");
        assert_eq!(jnum(f64::NAN), "0.0");
        assert_eq!(jnum(f64::INFINITY), "0.0");
        let o = jobj(&[("x", "1".into()), ("s", jstr("hi"))]);
        assert_eq!(o, "{\"x\":1,\"s\":\"hi\"}");
        assert_eq!(o.matches('{').count(), o.matches('}').count());
    }

    #[test]
    fn engine_helper_works() {
        let (mut engine, dev) = engine_with(&DeviceProfile::cuda_rtx2080ti(), 256);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        let x = s.materialized(&mut pb, "x").unwrap();
        let sum = pb.agg_block(x, AggFunc::Sum, "s");
        pb.output("s", sum);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", vec![1, 2, 3]);
        let (out, _) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        assert_eq!(out.i64_column("s")[0], 6);
    }
}
