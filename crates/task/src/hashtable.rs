//! Device-resident hash tables.
//!
//! The paper's hash primitives (§V-A) use linear probing over a single
//! shared table in global memory, with atomics resolving insertion races.
//! The simulated kernels execute sequentially (correctness is exact), while
//! the cost model charges the atomic/contention behaviour; the *layout* here
//! matches the paper's: open addressing, linear probing, one flat key array
//! plus flat payload/aggregate arrays.
//!
//! Both tables implement [`GenericPayload`] so they can live in a device
//! buffer under the `HASH_TABLE` I/O semantic.

use crate::params::AggFunc;
use adamant_device::buffer::GenericPayload;
use adamant_storage::fnv::fnv1a_i64;
use std::any::Any;

/// Sentinel marking an empty slot. Keys of this value are not supported
/// (TPC-H keys are non-negative).
pub const EMPTY_KEY: i64 = i64::MIN;

fn table_capacity_for(expected: usize) -> usize {
    // Load factor <= 0.5, power of two, minimum 16.
    (expected.max(8) * 2).next_power_of_two()
}

/// A multimap hash table for joins: key → one or more payload rows.
///
/// `HASH_BUILD` materializes the payload columns the probe side will need
/// directly into the table (standard for co-processor joins: the build input
/// is streamed and must not be re-read later).
#[derive(Clone, Debug)]
pub struct JoinHashTable {
    keys: Vec<i64>,
    /// Column-major payload storage, each column `capacity` long.
    payloads: Vec<Vec<i64>>,
    mask: usize,
    len: usize,
}

impl JoinHashTable {
    /// Creates a table expecting ~`expected` entries with `payload_cols`
    /// payload columns per entry.
    pub fn with_capacity(expected: usize, payload_cols: usize) -> Self {
        let capacity = table_capacity_for(expected);
        JoinHashTable {
            keys: vec![EMPTY_KEY; capacity],
            payloads: vec![vec![0; capacity]; payload_cols],
            mask: capacity - 1,
            len: 0,
        }
    }

    /// Number of entries inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of payload columns.
    pub fn payload_cols(&self) -> usize {
        self.payloads.len()
    }

    /// Inserts a key with its payload row (duplicates allowed — each
    /// occupies its own slot along the probe chain).
    pub fn insert(&mut self, key: i64, payload: &[i64]) {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key not supported");
        debug_assert_eq!(payload.len(), self.payloads.len());
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut slot = (fnv1a_i64(key) as usize) & self.mask;
        loop {
            if self.keys[slot] == EMPTY_KEY {
                self.keys[slot] = key;
                for (col, &v) in payload.iter().enumerate() {
                    self.payloads[col][slot] = v;
                }
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Appends the slot indices of all entries matching `key` to `out`.
    pub fn probe_into(&self, key: i64, out: &mut Vec<usize>) {
        let mut slot = (fnv1a_i64(key) as usize) & self.mask;
        loop {
            let k = self.keys[slot];
            if k == EMPTY_KEY {
                return;
            }
            if k == key {
                out.push(slot);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Whether any entry matches `key` (semi-join probe).
    pub fn contains(&self, key: i64) -> bool {
        let mut slot = (fnv1a_i64(key) as usize) & self.mask;
        loop {
            let k = self.keys[slot];
            if k == EMPTY_KEY {
                return false;
            }
            if k == key {
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Payload value at (`col`, `slot`).
    pub fn payload(&self, col: usize, slot: usize) -> i64 {
        self.payloads[col][slot]
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_payloads: Vec<Vec<i64>> = self
            .payloads
            .iter_mut()
            .map(|p| std::mem::replace(p, vec![0; new_cap]))
            .collect();
        self.mask = new_cap - 1;
        self.len = 0;
        for (slot, &k) in old_keys.iter().enumerate() {
            if k != EMPTY_KEY {
                let row: Vec<i64> = old_payloads.iter().map(|p| p[slot]).collect();
                self.insert(k, &row);
            }
        }
    }
}

impl GenericPayload for JoinHashTable {
    fn byte_len(&self) -> u64 {
        (self.keys.len() * 8 * (1 + self.payloads.len())) as u64
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clone_box(&self) -> Box<dyn GenericPayload> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A group-by aggregation hash table: key → group payload + aggregate states.
///
/// The aggregate functions are fixed at construction; `update` folds one row
/// into the group's states. Group *payload* columns (e.g. Q3's carried
/// `o_orderdate`, `o_shippriority`) are captured from the first row of each
/// group.
#[derive(Clone, Debug)]
pub struct AggHashTable {
    slot_keys: Vec<i64>,
    slot_group: Vec<u32>,
    mask: usize,
    /// Dense group keys in first-seen order.
    group_keys: Vec<i64>,
    /// Dense payload columns, parallel to `group_keys`.
    group_payloads: Vec<Vec<i64>>,
    /// Aggregate functions.
    aggs: Vec<AggFunc>,
    /// Dense aggregate states, one vec per function, parallel to groups.
    states: Vec<Vec<i64>>,
}

impl AggHashTable {
    /// Creates a table for ~`expected_groups` groups with the given
    /// aggregate functions and `payload_cols` carried columns.
    pub fn with_capacity(expected_groups: usize, aggs: Vec<AggFunc>, payload_cols: usize) -> Self {
        let capacity = table_capacity_for(expected_groups);
        let states = vec![Vec::new(); aggs.len()];
        AggHashTable {
            slot_keys: vec![EMPTY_KEY; capacity],
            slot_group: vec![0; capacity],
            mask: capacity - 1,
            group_keys: Vec::new(),
            group_payloads: vec![Vec::new(); payload_cols],
            aggs,
            states,
        }
    }

    /// Number of distinct groups observed.
    pub fn group_count(&self) -> usize {
        self.group_keys.len()
    }

    /// The aggregate functions.
    pub fn agg_funcs(&self) -> &[AggFunc] {
        &self.aggs
    }

    /// Number of carried payload columns.
    pub fn group_payload_count(&self) -> usize {
        self.group_payloads.len()
    }

    /// Folds one row into its group. `vals[i]` feeds `aggs[i]` (`Count`
    /// ignores its value); `payload` is captured on first sight of a group.
    pub fn update(&mut self, key: i64, payload: &[i64], vals: &[i64]) {
        debug_assert_ne!(key, EMPTY_KEY);
        debug_assert_eq!(vals.len(), self.aggs.len());
        debug_assert_eq!(payload.len(), self.group_payloads.len());
        if (self.group_keys.len() + 1) * 2 > self.slot_keys.len() {
            self.grow();
        }
        let mut slot = (fnv1a_i64(key) as usize) & self.mask;
        let group = loop {
            let k = self.slot_keys[slot];
            if k == key {
                break self.slot_group[slot] as usize;
            }
            if k == EMPTY_KEY {
                let g = self.group_keys.len();
                self.slot_keys[slot] = key;
                self.slot_group[slot] = g as u32;
                self.group_keys.push(key);
                for (col, &p) in payload.iter().enumerate() {
                    self.group_payloads[col].push(p);
                }
                for (ai, agg) in self.aggs.iter().enumerate() {
                    self.states[ai].push(agg.identity());
                }
                break g;
            }
            slot = (slot + 1) & self.mask;
        };
        for (ai, agg) in self.aggs.iter().enumerate() {
            let acc = &mut self.states[ai][group];
            *acc = agg.fold(*acc, vals[ai]);
        }
    }

    /// Exports `(group_keys, payload_columns, state_columns)` in first-seen
    /// group order.
    pub fn export(&self) -> (Vec<i64>, Vec<Vec<i64>>, Vec<Vec<i64>>) {
        (
            self.group_keys.clone(),
            self.group_payloads.clone(),
            self.states.clone(),
        )
    }

    /// The dense state column for aggregate `i`.
    pub fn states(&self, i: usize) -> &[i64] {
        &self.states[i]
    }

    /// The dense group keys in first-seen order.
    pub fn group_keys(&self) -> &[i64] {
        &self.group_keys
    }

    /// The dense payload column `i`.
    pub fn group_payload(&self, i: usize) -> &[i64] {
        &self.group_payloads[i]
    }

    fn grow(&mut self) {
        let new_cap = self.slot_keys.len() * 2;
        self.slot_keys = vec![EMPTY_KEY; new_cap];
        self.slot_group = vec![0; new_cap];
        self.mask = new_cap - 1;
        for (g, &key) in self.group_keys.iter().enumerate() {
            let mut slot = (fnv1a_i64(key) as usize) & self.mask;
            while self.slot_keys[slot] != EMPTY_KEY {
                slot = (slot + 1) & self.mask;
            }
            self.slot_keys[slot] = key;
            self.slot_group[slot] = g as u32;
        }
    }
}

impl GenericPayload for AggHashTable {
    fn byte_len(&self) -> u64 {
        let slots = self.slot_keys.len() * (8 + 4);
        let dense = self.group_keys.len() * 8 * (1 + self.group_payloads.len() + self.states.len());
        (slots + dense) as u64
    }

    fn len(&self) -> usize {
        self.group_count()
    }

    fn clone_box(&self) -> Box<dyn GenericPayload> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_insert_probe() {
        let mut t = JoinHashTable::with_capacity(4, 1);
        t.insert(10, &[100]);
        t.insert(20, &[200]);
        t.insert(10, &[101]); // duplicate key
        assert_eq!(t.len(), 3);

        let mut slots = Vec::new();
        t.probe_into(10, &mut slots);
        assert_eq!(slots.len(), 2);
        let mut vals: Vec<i64> = slots.iter().map(|&s| t.payload(0, s)).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![100, 101]);

        slots.clear();
        t.probe_into(99, &mut slots);
        assert!(slots.is_empty());
        assert!(t.contains(20));
        assert!(!t.contains(21));
    }

    #[test]
    fn join_grows_under_load() {
        let mut t = JoinHashTable::with_capacity(4, 1);
        let initial_cap = t.capacity();
        for i in 0..1000 {
            t.insert(i, &[i * 10]);
        }
        assert!(t.capacity() > initial_cap);
        assert_eq!(t.len(), 1000);
        let mut slots = Vec::new();
        for i in 0..1000 {
            slots.clear();
            t.probe_into(i, &mut slots);
            assert_eq!(slots.len(), 1, "key {i}");
            assert_eq!(t.payload(0, slots[0]), i * 10);
        }
    }

    #[test]
    fn join_multi_payload() {
        let mut t = JoinHashTable::with_capacity(8, 3);
        t.insert(5, &[1, 2, 3]);
        let mut slots = Vec::new();
        t.probe_into(5, &mut slots);
        assert_eq!(t.payload(0, slots[0]), 1);
        assert_eq!(t.payload(1, slots[0]), 2);
        assert_eq!(t.payload(2, slots[0]), 3);
        assert_eq!(t.payload_cols(), 3);
    }

    #[test]
    fn agg_grouping() {
        let mut t = AggHashTable::with_capacity(4, vec![AggFunc::Sum, AggFunc::Count], 1);
        t.update(1, &[77], &[10, 0]);
        t.update(2, &[88], &[20, 0]);
        t.update(1, &[99], &[5, 0]); // payload captured from first row only
        assert_eq!(t.group_count(), 2);
        let (keys, payloads, states) = t.export();
        assert_eq!(keys, vec![1, 2]);
        assert_eq!(payloads[0], vec![77, 88]);
        assert_eq!(states[0], vec![15, 20]); // sums
        assert_eq!(states[1], vec![2, 1]); // counts
    }

    #[test]
    fn agg_min_max() {
        let mut t = AggHashTable::with_capacity(4, vec![AggFunc::Min, AggFunc::Max], 0);
        for v in [5, -3, 12] {
            t.update(7, &[], &[v, v]);
        }
        assert_eq!(t.states(0), &[-3]);
        assert_eq!(t.states(1), &[12]);
        assert_eq!(t.group_keys(), &[7]);
    }

    #[test]
    fn agg_grows() {
        let mut t = AggHashTable::with_capacity(2, vec![AggFunc::Count], 0);
        for k in 0..500 {
            t.update(k, &[], &[0]);
            t.update(k, &[], &[0]);
        }
        assert_eq!(t.group_count(), 500);
        for g in 0..500 {
            assert_eq!(t.states(0)[g], 2);
        }
    }

    #[test]
    fn generic_payload_impls() {
        let j = JoinHashTable::with_capacity(10, 2);
        assert!(GenericPayload::byte_len(&j) > 0);
        assert!(GenericPayload::is_empty(&j));
        let b = j.clone_box();
        assert!(b.as_any().downcast_ref::<JoinHashTable>().is_some());

        let a = AggHashTable::with_capacity(10, vec![AggFunc::Sum], 0);
        assert!(GenericPayload::byte_len(&a) > 0);
        let b = a.clone_box();
        assert!(b.as_any().downcast_ref::<AggHashTable>().is_some());
    }
}
