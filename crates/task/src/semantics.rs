//! I/O semantics of primitive inputs and outputs (paper §III-B3).
//!
//! The runtime uses these tags on the primitive graph's data edges to call
//! the *right* downstream primitive: a `FILTER` that produced a `BITMAP`
//! must be followed by `MATERIALIZE`, one that produced a `POSITION` list by
//! `MATERIALIZE_POSITION`, and so on. Mis-typed edges are rejected when the
//! graph is validated instead of producing wrong results at runtime.

use std::fmt;

/// The semantic type carried on a data edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataSemantic {
    /// Any numeric / column values.
    Numeric,
    /// A bit-packed filter result.
    Bitmap,
    /// A position list.
    Position,
    /// Result of `PREFIX_SUM`.
    PrefixSum,
    /// Result of `HASH_BUILD` or `HASH_AGG` — a device-resident table.
    HashTable,
    /// Any custom data semantic (e.g. a specialized tree structure).
    ///
    /// Also the signature-level type of `FUSED` / `FUSED_AGG` edges: a
    /// fused chain's true per-stage semantics live in its stage specs, so
    /// at the graph boundary it accepts whatever the unfused edges — which
    /// were already validated before fusion — carried.
    Generic,
}

impl DataSemantic {
    /// Stable display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            DataSemantic::Numeric => "NUMERIC",
            DataSemantic::Bitmap => "BITMAP",
            DataSemantic::Position => "POSITION",
            DataSemantic::PrefixSum => "PREFIX_SUM",
            DataSemantic::HashTable => "HASH_TABLE",
            DataSemantic::Generic => "GENERIC",
        }
    }

    /// Whether an edge of semantic `self` can feed an input slot expecting
    /// `expected`. `GENERIC` accepts anything (custom semantics are opaque
    /// to the engine); `PREFIX_SUM` values are numeric positions and may be
    /// consumed as `NUMERIC`.
    pub fn compatible_with(self, expected: DataSemantic) -> bool {
        if expected == DataSemantic::Generic || self == expected {
            return true;
        }
        matches!(
            (self, expected),
            (DataSemantic::PrefixSum, DataSemantic::Numeric)
        )
    }
}

impl fmt::Display for DataSemantic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(DataSemantic::Numeric.name(), "NUMERIC");
        assert_eq!(DataSemantic::HashTable.name(), "HASH_TABLE");
        assert_eq!(DataSemantic::PrefixSum.to_string(), "PREFIX_SUM");
    }

    #[test]
    fn compatibility_rules() {
        assert!(DataSemantic::Bitmap.compatible_with(DataSemantic::Bitmap));
        assert!(!DataSemantic::Bitmap.compatible_with(DataSemantic::Position));
        assert!(DataSemantic::Numeric.compatible_with(DataSemantic::Generic));
        assert!(DataSemantic::PrefixSum.compatible_with(DataSemantic::Numeric));
        assert!(!DataSemantic::Numeric.compatible_with(DataSemantic::PrefixSum));
        assert!(!DataSemantic::HashTable.compatible_with(DataSemantic::Numeric));
    }
}
