//! Primitive definitions (paper Table I).
//!
//! Primitives are the granular functions database operators are built from.
//! Each has a fixed I/O signature; any implementation adhering to the
//! signature can be plugged into the registry — including mixing SDKs within
//! one device (e.g. an OpenCL arithmetic feeding a CUDA reduce).
//!
//! Pipeline breakers (marked † in the paper) materialize their output in
//! device memory and end a query pipeline; the runtime splits plans at them.
//!
//! Extensions beyond Table I, required to express the TPC-H plans and
//! documented in DESIGN.md: `BITMAP_OP` (conjunction of filter bitmaps),
//! `FILTER_BITMAP_COL` (column-column predicates, Q4's
//! `l_commitdate < l_receiptdate`), `HASH_PROBE_SEMI` (EXISTS semi-join,
//! Q4), and `SORT` (ORDER BY / top-N breaker, Q3).

use crate::semantics::DataSemantic;
use std::fmt;

/// The primitive vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimitiveKind {
    /// `MAP(NUMERIC in[n] {, NUMERIC in2[n]}, NUMERIC out[n])` —
    /// one-to-one arithmetic.
    Map,
    /// `BITMAP_OP(BITMAP a[k], BITMAP b[k], BITMAP out[k])` — combine
    /// filter bitmaps (extension).
    BitmapOp,
    /// `FILTER_BITMAP(NUMERIC in[n], BITMAP out[k], NUMERIC parameter)`.
    FilterBitmap,
    /// `FILTER_BITMAP_COL(NUMERIC a[n], NUMERIC b[n], BITMAP out[k])` —
    /// column-column comparison (extension).
    FilterBitmapCol,
    /// `FILTER_POSITION(NUMERIC in[n], POSITION out[k], NUMERIC parameter)`.
    FilterPosition,
    /// `MATERIALIZE(NUMERIC in[n], BITMAP bitmap[k], NUMERIC out[m])`.
    Materialize,
    /// `MATERIALIZE_POSITION(NUMERIC in[n], POSITION pos[k], NUMERIC out[m])`.
    MaterializePosition,
    /// `PREFIX_SUM(NUMERIC in[n], PREFIX_SUM out[n])` †.
    PrefixSum,
    /// `AGG_BLOCK(NUMERIC in[n], NUMERIC out)` † — block-wise reduction.
    AggBlock,
    /// `HASH_BUILD(NUMERIC keys[n] {, NUMERIC payload[n]…}, HASH_TABLE t)` †.
    HashBuild,
    /// `HASH_PROBE(NUMERIC keys[n], HASH_TABLE t, POSITION probe_pos[m]
    /// {, NUMERIC payload_out[m]…})` — inner-join probe.
    HashProbe,
    /// `HASH_PROBE_SEMI(NUMERIC keys[n], HASH_TABLE t, BITMAP out[k])` —
    /// EXISTS probe (extension).
    HashProbeSemi,
    /// `HASH_AGG(NUMERIC keys[n] {, NUMERIC vals[n]…}, HASH_TABLE t)` † —
    /// group-by aggregation on a shared table.
    HashAgg,
    /// `SORT_AGG(NUMERIC keys[n], NUMERIC vals[n], NUMERIC out_keys[g],
    /// NUMERIC out_vals[g])` † — aggregation over sorted input.
    SortAgg,
    /// `SORT(NUMERIC key[n] {, NUMERIC key2[n]…}, POSITION perm[n])` † —
    /// produces the sorted permutation (extension).
    Sort,
    /// `AGG_EXPORT(HASH_TABLE t, NUMERIC keys[g] {, NUMERIC out…})` —
    /// exports an aggregation table's dense columns (extension; feeds
    /// ORDER BY over group-by results without a host round-trip).
    AggExport,
    /// `FUSED(GENERIC in[n]…, GENERIC out)` — a producer→consumer chain of
    /// streamable primitives merged by the fusion pass (extension, DESIGN.md
    /// §16). Stage structure travels in `NodeParams`; the kernel interprets
    /// it in-registers without materializing interior intermediates.
    Fused,
    /// `FUSED_AGG(GENERIC in[n]…, GENERIC acc)` † — a fused chain whose
    /// terminal stage is an accumulating aggregation (`AGG_BLOCK` or
    /// `HASH_AGG`); a pipeline breaker like its terminal.
    FusedAgg,
}

/// The I/O signature of a primitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrimitiveSignature {
    /// Semantics of the fixed input slots (variadic slots noted in docs
    /// repeat the last entry).
    pub inputs: Vec<DataSemantic>,
    /// Semantics of the output slots.
    pub outputs: Vec<DataSemantic>,
    /// Whether trailing inputs of the last semantic may repeat
    /// (payload/value columns of `HASH_BUILD`/`HASH_AGG`, keys of `SORT`).
    pub variadic_inputs: bool,
    /// Whether trailing outputs may repeat (`HASH_PROBE` payload outputs).
    pub variadic_outputs: bool,
}

impl PrimitiveKind {
    /// All primitives, in Table I order followed by the extensions.
    pub const ALL: [PrimitiveKind; 18] = [
        PrimitiveKind::Map,
        PrimitiveKind::AggBlock,
        PrimitiveKind::HashAgg,
        PrimitiveKind::HashBuild,
        PrimitiveKind::HashProbe,
        PrimitiveKind::SortAgg,
        PrimitiveKind::FilterBitmap,
        PrimitiveKind::FilterPosition,
        PrimitiveKind::PrefixSum,
        PrimitiveKind::Materialize,
        PrimitiveKind::MaterializePosition,
        PrimitiveKind::BitmapOp,
        PrimitiveKind::FilterBitmapCol,
        PrimitiveKind::HashProbeSemi,
        PrimitiveKind::Sort,
        PrimitiveKind::AggExport,
        PrimitiveKind::Fused,
        PrimitiveKind::FusedAgg,
    ];

    /// The kernel name this primitive dispatches to.
    pub fn kernel_name(self) -> &'static str {
        match self {
            PrimitiveKind::Map => "map",
            PrimitiveKind::BitmapOp => "bitmap_op",
            PrimitiveKind::FilterBitmap => "filter_bitmap",
            PrimitiveKind::FilterBitmapCol => "filter_bitmap_col",
            PrimitiveKind::FilterPosition => "filter_position",
            PrimitiveKind::Materialize => "materialize",
            PrimitiveKind::MaterializePosition => "materialize_position",
            PrimitiveKind::PrefixSum => "prefix_sum",
            PrimitiveKind::AggBlock => "agg_block",
            PrimitiveKind::HashBuild => "hash_build",
            PrimitiveKind::HashProbe => "hash_probe",
            PrimitiveKind::HashProbeSemi => "hash_probe_semi",
            PrimitiveKind::HashAgg => "hash_agg",
            PrimitiveKind::SortAgg => "sort_agg",
            PrimitiveKind::Sort => "sort",
            PrimitiveKind::AggExport => "agg_export",
            PrimitiveKind::Fused => "fused",
            PrimitiveKind::FusedAgg => "fused_agg",
        }
    }

    /// Stable scalar code for this kind, used to flatten fused stage lists
    /// into `ExecuteSpec` parameters. Codes are append-only.
    pub fn op_code(self) -> i64 {
        match self {
            PrimitiveKind::Map => 0,
            PrimitiveKind::BitmapOp => 1,
            PrimitiveKind::FilterBitmap => 2,
            PrimitiveKind::FilterBitmapCol => 3,
            PrimitiveKind::FilterPosition => 4,
            PrimitiveKind::Materialize => 5,
            PrimitiveKind::MaterializePosition => 6,
            PrimitiveKind::PrefixSum => 7,
            PrimitiveKind::AggBlock => 8,
            PrimitiveKind::HashBuild => 9,
            PrimitiveKind::HashProbe => 10,
            PrimitiveKind::HashProbeSemi => 11,
            PrimitiveKind::HashAgg => 12,
            PrimitiveKind::SortAgg => 13,
            PrimitiveKind::Sort => 14,
            PrimitiveKind::AggExport => 15,
            PrimitiveKind::Fused => 16,
            PrimitiveKind::FusedAgg => 17,
        }
    }

    /// Inverse of [`PrimitiveKind::op_code`].
    pub fn from_op_code(code: i64) -> Option<PrimitiveKind> {
        PrimitiveKind::ALL
            .iter()
            .copied()
            .find(|k| k.op_code() == code)
    }

    /// Whether this primitive is a pipeline breaker (Table I's †).
    ///
    /// Breakers materialize into device memory and end the pipeline; the
    /// runtime synchronizes chunks at them.
    pub fn is_pipeline_breaker(self) -> bool {
        matches!(
            self,
            PrimitiveKind::PrefixSum
                | PrimitiveKind::AggBlock
                | PrimitiveKind::HashBuild
                | PrimitiveKind::HashAgg
                | PrimitiveKind::SortAgg
                | PrimitiveKind::Sort
                | PrimitiveKind::FusedAgg
        )
    }

    /// Whether the primitive *accumulates* across chunks into a persistent
    /// output (rather than producing per-chunk scratch output).
    pub fn accumulates(self) -> bool {
        self.is_pipeline_breaker()
    }

    /// The I/O signature.
    pub fn signature(self) -> PrimitiveSignature {
        use DataSemantic::*;
        let (inputs, outputs, vi, vo) = match self {
            PrimitiveKind::Map => (vec![Numeric], vec![Numeric], true, false),
            PrimitiveKind::BitmapOp => (vec![Bitmap, Bitmap], vec![Bitmap], false, false),
            PrimitiveKind::FilterBitmap => (vec![Numeric], vec![Bitmap], false, false),
            PrimitiveKind::FilterBitmapCol => (vec![Numeric, Numeric], vec![Bitmap], false, false),
            PrimitiveKind::FilterPosition => (vec![Numeric], vec![Position], false, false),
            PrimitiveKind::Materialize => (vec![Numeric, Bitmap], vec![Numeric], false, false),
            PrimitiveKind::MaterializePosition => {
                (vec![Numeric, Position], vec![Numeric], false, false)
            }
            PrimitiveKind::PrefixSum => (vec![Numeric], vec![PrefixSum], false, false),
            PrimitiveKind::AggBlock => (vec![Numeric], vec![Numeric], false, false),
            PrimitiveKind::HashBuild => (vec![Numeric], vec![HashTable], true, false),
            PrimitiveKind::HashProbe => (
                vec![Numeric, HashTable],
                vec![Position, Numeric],
                false,
                true,
            ),
            PrimitiveKind::HashProbeSemi => (vec![Numeric, HashTable], vec![Bitmap], false, false),
            PrimitiveKind::HashAgg => (vec![Numeric], vec![HashTable], true, false),
            PrimitiveKind::SortAgg => {
                (vec![Numeric, Numeric], vec![Numeric, Numeric], false, false)
            }
            PrimitiveKind::Sort => (vec![Numeric], vec![Position], true, false),
            PrimitiveKind::AggExport => (vec![HashTable], vec![Numeric], false, true),
            // Fused chains carry their true per-stage semantics in
            // `NodeParams`; at the signature level they are generic so any
            // upstream edge type-checks (the fusion pass only merges edges
            // the unfused graph already validated).
            PrimitiveKind::Fused | PrimitiveKind::FusedAgg => {
                (vec![Generic], vec![Generic], true, false)
            }
        };
        PrimitiveSignature {
            inputs,
            outputs,
            variadic_inputs: vi,
            variadic_outputs: vo,
        }
    }

    /// Validates that input edge semantics satisfy the signature.
    pub fn accepts_inputs(self, actual: &[DataSemantic]) -> bool {
        let sig = self.signature();
        if actual.len() < sig.inputs.len() {
            return false;
        }
        if actual.len() > sig.inputs.len() && !sig.variadic_inputs {
            return false;
        }
        for (i, &a) in actual.iter().enumerate() {
            let expected = if i < sig.inputs.len() {
                sig.inputs[i]
            } else {
                *sig.inputs.last().expect("nonempty signature")
            };
            if !a.compatible_with(expected) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for PrimitiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kernel_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DataSemantic::*;

    #[test]
    fn breakers_match_table_one() {
        // Table I marks AGG_BLOCK, HASH_AGG, HASH_BUILD, SORT_AGG and
        // PREFIX_SUM with †; SORT and FUSED_AGG are our breaker extensions.
        let breakers: Vec<_> = PrimitiveKind::ALL
            .iter()
            .filter(|p| p.is_pipeline_breaker())
            .collect();
        assert_eq!(breakers.len(), 7);
        assert!(PrimitiveKind::AggBlock.is_pipeline_breaker());
        assert!(PrimitiveKind::HashBuild.is_pipeline_breaker());
        assert!(PrimitiveKind::FusedAgg.is_pipeline_breaker());
        assert!(!PrimitiveKind::HashProbe.is_pipeline_breaker());
        assert!(!PrimitiveKind::Materialize.is_pipeline_breaker());
        assert!(!PrimitiveKind::FilterBitmap.is_pipeline_breaker());
        assert!(!PrimitiveKind::Fused.is_pipeline_breaker());
    }

    #[test]
    fn op_codes_round_trip() {
        for kind in PrimitiveKind::ALL {
            assert_eq!(PrimitiveKind::from_op_code(kind.op_code()), Some(kind));
        }
        assert_eq!(PrimitiveKind::from_op_code(-1), None);
        assert_eq!(PrimitiveKind::from_op_code(18), None);
    }

    #[test]
    fn kernel_names_unique() {
        let mut names: Vec<_> = PrimitiveKind::ALL.iter().map(|p| p.kernel_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PrimitiveKind::ALL.len());
    }

    #[test]
    fn signatures() {
        let s = PrimitiveKind::HashProbe.signature();
        assert_eq!(s.inputs, vec![Numeric, HashTable]);
        assert_eq!(s.outputs, vec![Position, Numeric]);
        assert!(s.variadic_outputs);

        let s = PrimitiveKind::Materialize.signature();
        assert_eq!(s.inputs, vec![Numeric, Bitmap]);
        assert_eq!(s.outputs, vec![Numeric]);
    }

    #[test]
    fn input_validation() {
        assert!(PrimitiveKind::Map.accepts_inputs(&[Numeric]));
        assert!(PrimitiveKind::Map.accepts_inputs(&[Numeric, Numeric]));
        assert!(!PrimitiveKind::Map.accepts_inputs(&[Bitmap]));
        assert!(!PrimitiveKind::Map.accepts_inputs(&[]));
        assert!(PrimitiveKind::Materialize.accepts_inputs(&[Numeric, Bitmap]));
        assert!(!PrimitiveKind::Materialize.accepts_inputs(&[Numeric, Position]));
        // Non-variadic rejects extras.
        assert!(!PrimitiveKind::Materialize.accepts_inputs(&[Numeric, Bitmap, Bitmap]));
        // Variadic hash build takes key + payloads.
        assert!(PrimitiveKind::HashBuild.accepts_inputs(&[Numeric, Numeric, Numeric]));
        // PrefixSum result usable as numeric input.
        assert!(PrimitiveKind::Map.accepts_inputs(&[PrefixSum]));
    }
}
