//! Kernel and data containers (paper §III-B1).

use crate::hashtable::{AggHashTable, JoinHashTable};
use crate::params::AggFunc;
use crate::primitive::PrimitiveKind;
use crate::semantics::DataSemantic;
use adamant_device::buffer::BufferData;
use adamant_device::kernel::{KernelFn, KernelSource};
use adamant_device::sdk::SdkKind;

/// The default variant name.
pub const DEFAULT_VARIANT: &str = "default";

/// A kernel container: one implementation of one primitive for one SDK,
/// "a simple adapter with additional runtime information required for
/// executing a custom written function".
#[derive(Clone)]
pub struct KernelContainer {
    /// Which primitive this implements.
    pub primitive: PrimitiveKind,
    /// Which SDK the implementation targets.
    pub sdk: SdkKind,
    /// Variant label (`"default"`, `"branchless"`, …) — the task layer holds
    /// multiple implementations of one primitive side by side.
    pub variant: String,
    /// The executable entry point.
    pub entry: KernelFn,
    /// Kernel source, when the implementation is runtime-compiled
    /// ("in case of runtime compilation, the kernel string … is present in
    /// the container").
    pub source: Option<String>,
}

impl KernelContainer {
    /// Creates a built-in (pre-compiled) container.
    pub fn builtin(primitive: PrimitiveKind, sdk: SdkKind, entry: KernelFn) -> Self {
        KernelContainer {
            primitive,
            sdk,
            variant: DEFAULT_VARIANT.to_string(),
            entry,
            source: None,
        }
    }

    /// Creates a named variant.
    pub fn variant(
        primitive: PrimitiveKind,
        sdk: SdkKind,
        variant: impl Into<String>,
        entry: KernelFn,
    ) -> Self {
        KernelContainer {
            primitive,
            sdk,
            variant: variant.into(),
            entry,
            source: None,
        }
    }

    /// Attaches kernel source, marking the container runtime-compiled.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// The name this kernel is bound under on a device
    /// (`primitive` for the default variant, `primitive@variant` otherwise).
    pub fn kernel_name(&self) -> String {
        if self.variant == DEFAULT_VARIANT {
            self.primitive.kernel_name().to_string()
        } else {
            format!("{}@{}", self.primitive.kernel_name(), self.variant)
        }
    }

    /// The [`KernelSource`] handed to `Device::prepare_kernel`.
    pub fn kernel_source(&self) -> KernelSource {
        match &self.source {
            Some(src) => KernelSource::Source {
                source: src.clone(),
                entry: self.entry.clone(),
            },
            None => KernelSource::Builtin(self.entry.clone()),
        }
    }
}

impl std::fmt::Debug for KernelContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelContainer")
            .field("primitive", &self.primitive)
            .field("sdk", &self.sdk)
            .field("variant", &self.variant)
            .field("has_source", &self.source.is_some())
            .finish()
    }
}

/// The data container: manages data formats for tasks — allocating
/// correctly-typed output payloads per I/O semantic and constructing the
/// device-resident table structures.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataContainer;

impl DataContainer {
    /// An empty output payload for the given semantic (filled by kernels).
    pub fn empty_payload(semantic: DataSemantic) -> BufferData {
        match semantic {
            DataSemantic::Numeric | DataSemantic::PrefixSum => BufferData::I64(Vec::new()),
            DataSemantic::Bitmap => BufferData::BitWords(Vec::new()),
            DataSemantic::Position => BufferData::U32(Vec::new()),
            DataSemantic::HashTable | DataSemantic::Generic => BufferData::Raw(Vec::new()),
        }
    }

    /// A fresh join hash table payload.
    pub fn join_table(expected: usize, payload_cols: usize) -> BufferData {
        BufferData::Generic(Box::new(JoinHashTable::with_capacity(
            expected,
            payload_cols,
        )))
    }

    /// A fresh aggregation hash table payload.
    pub fn agg_table(
        expected_groups: usize,
        aggs: Vec<AggFunc>,
        payload_cols: usize,
    ) -> BufferData {
        BufferData::Generic(Box::new(AggHashTable::with_capacity(
            expected_groups,
            aggs,
            payload_cols,
        )))
    }

    /// Estimated output bytes for a primitive's result over `n` input rows
    /// (the runtime's `prepare_output_buffer` sizing).
    pub fn estimate_output_bytes(semantic: DataSemantic, n: usize) -> u64 {
        match semantic {
            DataSemantic::Numeric => (n * 8) as u64,
            DataSemantic::PrefixSum => ((n + 1) * 8) as u64,
            DataSemantic::Bitmap => (n.div_ceil(64) * 8) as u64,
            DataSemantic::Position => (n * 4) as u64,
            // Tables size themselves; reserve nothing up front.
            DataSemantic::HashTable | DataSemantic::Generic => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::cost::CostClass;
    use adamant_device::kernel::KernelStats;
    use std::sync::Arc;

    fn noop() -> KernelFn {
        Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)))
    }

    #[test]
    fn kernel_names() {
        let c = KernelContainer::builtin(PrimitiveKind::Map, SdkKind::Cuda, noop());
        assert_eq!(c.kernel_name(), "map");
        let v = KernelContainer::variant(
            PrimitiveKind::FilterBitmap,
            SdkKind::OpenCl,
            "branchless",
            noop(),
        );
        assert_eq!(v.kernel_name(), "filter_bitmap@branchless");
    }

    #[test]
    fn source_marks_runtime_compiled() {
        let c = KernelContainer::builtin(PrimitiveKind::Map, SdkKind::OpenCl, noop())
            .with_source("__kernel void map() {}");
        assert!(matches!(c.kernel_source(), KernelSource::Source { .. }));
        let b = KernelContainer::builtin(PrimitiveKind::Map, SdkKind::Cuda, noop());
        assert!(matches!(b.kernel_source(), KernelSource::Builtin(_)));
    }

    #[test]
    fn payload_kinds() {
        assert_eq!(
            DataContainer::empty_payload(DataSemantic::Bitmap).kind(),
            "bitwords"
        );
        assert_eq!(
            DataContainer::empty_payload(DataSemantic::Position).kind(),
            "u32"
        );
        assert_eq!(
            DataContainer::empty_payload(DataSemantic::Numeric).kind(),
            "i64"
        );
        assert_eq!(DataContainer::join_table(8, 1).kind(), "generic");
        assert_eq!(
            DataContainer::agg_table(8, vec![AggFunc::Sum], 0).kind(),
            "generic"
        );
    }

    #[test]
    fn output_estimates() {
        assert_eq!(
            DataContainer::estimate_output_bytes(DataSemantic::Numeric, 100),
            800
        );
        assert_eq!(
            DataContainer::estimate_output_bytes(DataSemantic::Bitmap, 100),
            16
        );
        assert_eq!(
            DataContainer::estimate_output_bytes(DataSemantic::Position, 100),
            400
        );
        assert_eq!(
            DataContainer::estimate_output_bytes(DataSemantic::HashTable, 100),
            0
        );
    }
}
