//! Operator parameters and their scalar encodings.
//!
//! Kernels receive scalar parameters as `&[i64]` (the analogue of
//! `clSetKernelArg` scalar arguments in the paper's Listing 5). Each
//! parameter enum here provides a stable `to_code`/`from_code` pair so the
//! runtime can encode plan parameters and kernels can decode them without
//! sharing Rust types across the interface boundary.

/// Arithmetic map operations (`MAP` primitive).
///
/// Binary ops take two input columns; `*Const` ops take one column and a
/// constant parameter. `RsubConst` computes `c - x`, which expresses
/// `(1 - discount)` in fixed-point form (`100 - disc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b` (b=0 yields 0, matching typical GPU guarded division)
    Div,
    /// `a % b` (b=0 yields 0)
    Mod,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a + c`
    AddConst,
    /// `a - c`
    SubConst,
    /// `a * c`
    MulConst,
    /// `a / c`
    DivConst,
    /// `c - a`
    RsubConst,
    /// `(a == c) as i64` — 0/1 indicator (CASE-style conditional sums).
    EqConst,
    /// `(a != c) as i64`
    NeConst,
    /// `(a < c) as i64`
    LtConst,
    /// `(a <= c) as i64`
    LeConst,
    /// `(a > c) as i64`
    GtConst,
    /// `(a >= c) as i64`
    GeConst,
}

impl MapOp {
    /// Whether this op consumes a constant instead of a second column.
    pub fn is_const(self) -> bool {
        matches!(
            self,
            MapOp::AddConst
                | MapOp::SubConst
                | MapOp::MulConst
                | MapOp::DivConst
                | MapOp::RsubConst
                | MapOp::EqConst
                | MapOp::NeConst
                | MapOp::LtConst
                | MapOp::LeConst
                | MapOp::GtConst
                | MapOp::GeConst
        )
    }

    /// Scalar code for kernel parameters.
    pub fn to_code(self) -> i64 {
        match self {
            MapOp::Add => 0,
            MapOp::Sub => 1,
            MapOp::Mul => 2,
            MapOp::Div => 3,
            MapOp::Mod => 4,
            MapOp::Min => 5,
            MapOp::Max => 6,
            MapOp::AddConst => 7,
            MapOp::SubConst => 8,
            MapOp::MulConst => 9,
            MapOp::DivConst => 10,
            MapOp::RsubConst => 11,
            MapOp::EqConst => 12,
            MapOp::NeConst => 13,
            MapOp::LtConst => 14,
            MapOp::LeConst => 15,
            MapOp::GtConst => 16,
            MapOp::GeConst => 17,
        }
    }

    /// Decodes a scalar code.
    pub fn from_code(code: i64) -> Option<MapOp> {
        Some(match code {
            0 => MapOp::Add,
            1 => MapOp::Sub,
            2 => MapOp::Mul,
            3 => MapOp::Div,
            4 => MapOp::Mod,
            5 => MapOp::Min,
            6 => MapOp::Max,
            7 => MapOp::AddConst,
            8 => MapOp::SubConst,
            9 => MapOp::MulConst,
            10 => MapOp::DivConst,
            11 => MapOp::RsubConst,
            12 => MapOp::EqConst,
            13 => MapOp::NeConst,
            14 => MapOp::LtConst,
            15 => MapOp::LeConst,
            16 => MapOp::GtConst,
            17 => MapOp::GeConst,
            _ => return None,
        })
    }

    /// Applies the op to two operands (for const ops, `b` is the constant).
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            MapOp::Add | MapOp::AddConst => a.wrapping_add(b),
            MapOp::Sub | MapOp::SubConst => a.wrapping_sub(b),
            MapOp::Mul | MapOp::MulConst => a.wrapping_mul(b),
            MapOp::Div | MapOp::DivConst => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            MapOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            MapOp::Min => a.min(b),
            MapOp::Max => a.max(b),
            MapOp::RsubConst => b.wrapping_sub(a),
            MapOp::EqConst => (a == b) as i64,
            MapOp::NeConst => (a != b) as i64,
            MapOp::LtConst => (a < b) as i64,
            MapOp::LeConst => (a <= b) as i64,
            MapOp::GtConst => (a > b) as i64,
            MapOp::GeConst => (a >= b) as i64,
        }
    }
}

/// Comparison operators (`FILTER_*` primitives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `x < v`
    Lt,
    /// `x <= v`
    Le,
    /// `x > v`
    Gt,
    /// `x >= v`
    Ge,
    /// `x == v`
    Eq,
    /// `x != v`
    Ne,
    /// `lo <= x && x <= hi` (two parameters)
    Between,
}

impl CmpOp {
    /// Scalar code for kernel parameters.
    pub fn to_code(self) -> i64 {
        match self {
            CmpOp::Lt => 0,
            CmpOp::Le => 1,
            CmpOp::Gt => 2,
            CmpOp::Ge => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
            CmpOp::Between => 6,
        }
    }

    /// Decodes a scalar code.
    pub fn from_code(code: i64) -> Option<CmpOp> {
        Some(match code {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            3 => CmpOp::Ge,
            4 => CmpOp::Eq,
            5 => CmpOp::Ne,
            6 => CmpOp::Between,
            _ => return None,
        })
    }

    /// Evaluates the predicate (`hi` is ignored except for `Between`).
    #[inline]
    pub fn eval(self, x: i64, v: i64, hi: i64) -> bool {
        match self {
            CmpOp::Lt => x < v,
            CmpOp::Le => x <= v,
            CmpOp::Gt => x > v,
            CmpOp::Ge => x >= v,
            CmpOp::Eq => x == v,
            CmpOp::Ne => x != v,
            CmpOp::Between => v <= x && x <= hi,
        }
    }
}

/// Bitmap combination operators (extension primitive `BITMAP_OP`, used to
/// conjoin the per-predicate bitmaps of multi-predicate filters like Q6's).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BitmapOp {
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a & !b`
    AndNot,
    /// `a ^ b`
    Xor,
}

impl BitmapOp {
    /// Scalar code for kernel parameters.
    pub fn to_code(self) -> i64 {
        match self {
            BitmapOp::And => 0,
            BitmapOp::Or => 1,
            BitmapOp::AndNot => 2,
            BitmapOp::Xor => 3,
        }
    }

    /// Decodes a scalar code.
    pub fn from_code(code: i64) -> Option<BitmapOp> {
        Some(match code {
            0 => BitmapOp::And,
            1 => BitmapOp::Or,
            2 => BitmapOp::AndNot,
            3 => BitmapOp::Xor,
            _ => return None,
        })
    }

    /// Applies the op to two words.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BitmapOp::And => a & b,
            BitmapOp::Or => a | b,
            BitmapOp::AndNot => a & !b,
            BitmapOp::Xor => a ^ b,
        }
    }
}

/// Aggregation functions (`AGG_BLOCK`, `HASH_AGG`, `SORT_AGG`).
///
/// `Avg` is decomposed into `Sum` + `Count` by the planner and finalized on
/// the host, as the paper's integer primitives do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of values.
    Sum,
    /// Row count (the value column is ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Scalar code for kernel parameters.
    pub fn to_code(self) -> i64 {
        match self {
            AggFunc::Sum => 0,
            AggFunc::Count => 1,
            AggFunc::Min => 2,
            AggFunc::Max => 3,
        }
    }

    /// Decodes a scalar code.
    pub fn from_code(code: i64) -> Option<AggFunc> {
        Some(match code {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Min,
            3 => AggFunc::Max,
            _ => return None,
        })
    }

    /// The identity element of this aggregate.
    pub fn identity(self) -> i64 {
        match self {
            AggFunc::Sum | AggFunc::Count => 0,
            AggFunc::Min => i64::MAX,
            AggFunc::Max => i64::MIN,
        }
    }

    /// Folds one value into an accumulator.
    #[inline]
    pub fn fold(self, acc: i64, v: i64) -> i64 {
        match self {
            AggFunc::Sum => acc.wrapping_add(v),
            AggFunc::Count => acc + 1,
            AggFunc::Min => acc.min(v),
            AggFunc::Max => acc.max(v),
        }
    }

    /// Merges two partial accumulators (chunk combination).
    #[inline]
    pub fn merge(self, a: i64, b: i64) -> i64 {
        match self {
            AggFunc::Sum | AggFunc::Count => a.wrapping_add(b),
            AggFunc::Min => a.min(b),
            AggFunc::Max => a.max(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_codes_roundtrip() {
        for code in 0..18 {
            let op = MapOp::from_code(code).unwrap();
            assert_eq!(op.to_code(), code);
        }
        assert!(MapOp::from_code(99).is_none());
    }

    #[test]
    fn map_semantics() {
        assert_eq!(MapOp::Add.apply(2, 3), 5);
        assert_eq!(MapOp::Mul.apply(4, -2), -8);
        assert_eq!(MapOp::Div.apply(7, 0), 0);
        assert_eq!(MapOp::Mod.apply(7, 0), 0);
        assert_eq!(MapOp::Mod.apply(7, 3), 1);
        assert_eq!(MapOp::RsubConst.apply(6, 100), 94);
        assert_eq!(MapOp::Min.apply(3, -1), -1);
        assert_eq!(MapOp::Max.apply(3, -1), 3);
        assert!(MapOp::MulConst.is_const());
        assert!(!MapOp::Mul.is_const());
        assert_eq!(MapOp::EqConst.apply(5, 5), 1);
        assert_eq!(MapOp::EqConst.apply(5, 6), 0);
        assert_eq!(MapOp::LtConst.apply(3, 5), 1);
        assert_eq!(MapOp::GeConst.apply(3, 5), 0);
        assert!(MapOp::EqConst.is_const());
    }

    #[test]
    fn cmp_codes_roundtrip() {
        for code in 0..7 {
            let op = CmpOp::from_code(code).unwrap();
            assert_eq!(op.to_code(), code);
        }
        assert!(CmpOp::from_code(-1).is_none());
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Lt.eval(1, 2, 0));
        assert!(!CmpOp::Lt.eval(2, 2, 0));
        assert!(CmpOp::Le.eval(2, 2, 0));
        assert!(CmpOp::Between.eval(5, 1, 10));
        assert!(CmpOp::Between.eval(1, 1, 10));
        assert!(CmpOp::Between.eval(10, 1, 10));
        assert!(!CmpOp::Between.eval(0, 1, 10));
        assert!(CmpOp::Ne.eval(1, 2, 0));
    }

    #[test]
    fn bitmap_op_semantics() {
        assert_eq!(BitmapOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(BitmapOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(BitmapOp::AndNot.apply(0b1100, 0b1010), 0b0100);
        assert_eq!(BitmapOp::Xor.apply(0b1100, 0b1010), 0b0110);
        for code in 0..4 {
            assert_eq!(BitmapOp::from_code(code).unwrap().to_code(), code);
        }
    }

    #[test]
    fn agg_semantics() {
        assert_eq!(AggFunc::Sum.fold(10, 5), 15);
        assert_eq!(AggFunc::Count.fold(3, 999), 4);
        assert_eq!(AggFunc::Min.fold(i64::MAX, 7), 7);
        assert_eq!(AggFunc::Max.fold(i64::MIN, -7), -7);
        assert_eq!(AggFunc::Min.merge(3, 5), 3);
        assert_eq!(AggFunc::Count.merge(3, 5), 8);
        for code in 0..4 {
            assert_eq!(AggFunc::from_code(code).unwrap().to_code(), code);
        }
        assert!(AggFunc::from_code(4).is_none());
    }
}
