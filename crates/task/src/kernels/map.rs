//! `MAP` and `BITMAP_OP` kernels.

use super::{bad_args, input_bitwords, input_i64, need_bufs, need_params, write_output};
use crate::params::{BitmapOp, MapOp};
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `map` — element-wise arithmetic.
///
/// * const ops: buffers `[in, out]`, params `[opcode, constant]`
/// * binary ops: buffers `[a, b, out]`, params `[opcode]`
pub fn map(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_params("map", params, 1)?;
    let op = MapOp::from_code(params[0]).ok_or_else(|| bad_args("map", "unknown opcode"))?;
    let out_data = if op.is_const() {
        need_bufs("map", bufs, 2)?;
        need_params("map", params, 2)?;
        let c = params[1];
        let input = input_i64(pool, "map", bufs[0])?;
        BufferData::I64(input.iter().map(|&x| op.apply(x, c)).collect())
    } else {
        need_bufs("map", bufs, 3)?;
        let a = input_i64(pool, "map", bufs[0])?;
        let b = input_i64(pool, "map", bufs[1])?;
        if a.len() != b.len() {
            return Err(bad_args(
                "map",
                format!("input length mismatch: {} vs {}", a.len(), b.len()),
            ));
        }
        BufferData::I64(a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect())
    };
    let n = out_data.len() as u64;
    let out_id = *bufs.last().expect("checked above");
    write_output(pool, out_id, out_data)?;
    Ok(KernelStats::new(n, CostClass::MapLike))
}

/// `map@blocked` — a variant of `map` that processes the input in
/// cache-sized blocks. Results are identical; it exists to demonstrate (and
/// test) that the task layer carries multiple implementations of one
/// primitive side by side (paper §III-B1).
pub fn map_blocked(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
) -> Result<KernelStats> {
    need_params("map", params, 1)?;
    let op = MapOp::from_code(params[0]).ok_or_else(|| bad_args("map", "unknown opcode"))?;
    const BLOCK: usize = 4096;
    let out_data = if op.is_const() {
        need_bufs("map", bufs, 2)?;
        need_params("map", params, 2)?;
        let c = params[1];
        let input = input_i64(pool, "map", bufs[0])?;
        let mut out = Vec::with_capacity(input.len());
        for block in input.chunks(BLOCK) {
            out.extend(block.iter().map(|&x| op.apply(x, c)));
        }
        BufferData::I64(out)
    } else {
        need_bufs("map", bufs, 3)?;
        let a = input_i64(pool, "map", bufs[0])?;
        let b = input_i64(pool, "map", bufs[1])?;
        if a.len() != b.len() {
            return Err(bad_args("map", "input length mismatch"));
        }
        let mut out = Vec::with_capacity(a.len());
        for (ab, bb) in a.chunks(BLOCK).zip(b.chunks(BLOCK)) {
            out.extend(ab.iter().zip(bb).map(|(&x, &y)| op.apply(x, y)));
        }
        BufferData::I64(out)
    };
    let n = out_data.len() as u64;
    write_output(pool, *bufs.last().expect("checked"), out_data)?;
    Ok(KernelStats::new(n, CostClass::MapLike))
}

/// `bitmap_op` — combines two filter bitmaps word-wise.
///
/// Buffers `[a, b, out]`, params `[opcode]`.
pub fn bitmap_op(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_bufs("bitmap_op", bufs, 3)?;
    need_params("bitmap_op", params, 1)?;
    let op =
        BitmapOp::from_code(params[0]).ok_or_else(|| bad_args("bitmap_op", "unknown opcode"))?;
    let a = input_bitwords(pool, "bitmap_op", bufs[0])?;
    let b = input_bitwords(pool, "bitmap_op", bufs[1])?;
    if a.len() != b.len() {
        return Err(bad_args(
            "bitmap_op",
            format!("word count mismatch: {} vs {}", a.len(), b.len()),
        ));
    }
    let out: Vec<u64> = a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect();
    let n = out.len() as u64;
    write_output(pool, bufs[2], BufferData::BitWords(out))?;
    Ok(KernelStats::new(n, CostClass::MapLike))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;

    #[test]
    fn map_const() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 3]));
        out(&mut p, 2);
        let stats = map(&mut p, &[b(1), b(2)], &[MapOp::MulConst.to_code(), 10]).unwrap();
        assert_eq!(stats.elements, 3);
        assert_eq!(read_i64(&p, 2), vec![10, 20, 30]);
    }

    #[test]
    fn map_binary() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![10, 20, 30]));
        put(&mut p, 2, BufferData::I64(vec![1, 2, 3]));
        out(&mut p, 3);
        map(&mut p, &[b(1), b(2), b(3)], &[MapOp::Sub.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![9, 18, 27]);
    }

    #[test]
    fn map_rsub_for_discount() {
        // (1 - discount) in fixed point: 100 - disc.
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![6, 0, 10]));
        out(&mut p, 2);
        map(&mut p, &[b(1), b(2)], &[MapOp::RsubConst.to_code(), 100]).unwrap();
        assert_eq!(read_i64(&p, 2), vec![94, 100, 90]);
    }

    #[test]
    fn map_errors() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1]));
        put(&mut p, 2, BufferData::I64(vec![1, 2]));
        out(&mut p, 3);
        assert!(map(&mut p, &[b(1), b(2), b(3)], &[MapOp::Add.to_code()]).is_err());
        assert!(map(&mut p, &[b(1), b(3)], &[999]).is_err());
        assert!(map(&mut p, &[b(1), b(3)], &[]).is_err());
        // Const op without the constant param.
        assert!(map(&mut p, &[b(1), b(3)], &[MapOp::AddConst.to_code()]).is_err());
    }

    #[test]
    fn blocked_variant_matches_reference() {
        let mut p = pool();
        let input: Vec<i64> = (0..10_000).collect();
        put(&mut p, 1, BufferData::I64(input.clone()));
        out(&mut p, 2);
        out(&mut p, 3);
        map(&mut p, &[b(1), b(2)], &[MapOp::AddConst.to_code(), 7]).unwrap();
        map_blocked(&mut p, &[b(1), b(3)], &[MapOp::AddConst.to_code(), 7]).unwrap();
        assert_eq!(read_i64(&p, 2), read_i64(&p, 3));
    }

    #[test]
    fn bitmap_and() {
        let mut p = pool();
        put(&mut p, 1, BufferData::BitWords(vec![0b1100, u64::MAX]));
        put(&mut p, 2, BufferData::BitWords(vec![0b1010, 0]));
        out(&mut p, 3);
        bitmap_op(&mut p, &[b(1), b(2), b(3)], &[BitmapOp::And.to_code()]).unwrap();
        assert_eq!(read_words(&p, 3), vec![0b1000, 0]);
    }

    #[test]
    fn bitmap_op_rejects_mismatch() {
        let mut p = pool();
        put(&mut p, 1, BufferData::BitWords(vec![1]));
        put(&mut p, 2, BufferData::BitWords(vec![1, 2]));
        out(&mut p, 3);
        assert!(bitmap_op(&mut p, &[b(1), b(2), b(3)], &[0]).is_err());
        // Wrong payload kind.
        put(&mut p, 4, BufferData::I64(vec![1]));
        assert!(bitmap_op(&mut p, &[b(4), b(2), b(3)], &[0]).is_err());
    }
}
