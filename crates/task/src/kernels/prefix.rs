//! `PREFIX_SUM` kernel.

use super::{input_i64, need_bufs, write_output};
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `prefix_sum` — exclusive prefix sum with the grand total appended.
///
/// Buffers `[in, out]`; `out[i]` is the sum of `in[0..i]` and
/// `out[n] == sum(in)`. The exclusive form is what scatter-style
/// materialization and `SORT_AGG` consume (the total gives the output size).
pub fn prefix_sum(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    _params: &[i64],
) -> Result<KernelStats> {
    need_bufs("prefix_sum", bufs, 2)?;
    let input = input_i64(pool, "prefix_sum", bufs[0])?;
    let mut out = Vec::with_capacity(input.len() + 1);
    let mut acc = 0i64;
    for &x in input {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out.push(acc);
    let n = input.len() as u64;
    write_output(pool, bufs[1], BufferData::I64(out))?;
    Ok(KernelStats::new(n, CostClass::PrefixSum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;

    #[test]
    fn exclusive_with_total() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 0, 1, 1, 0]));
        out(&mut p, 2);
        let stats = prefix_sum(&mut p, &[b(1), b(2)], &[]).unwrap();
        assert_eq!(stats.elements, 5);
        assert_eq!(read_i64(&p, 2), vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn empty() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![]));
        out(&mut p, 2);
        prefix_sum(&mut p, &[b(1), b(2)], &[]).unwrap();
        assert_eq!(read_i64(&p, 2), vec![0]);
    }

    #[test]
    fn general_values() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![5, -2, 7]));
        out(&mut p, 2);
        prefix_sum(&mut p, &[b(1), b(2)], &[]).unwrap();
        assert_eq!(read_i64(&p, 2), vec![0, 5, 3, 10]);
    }
}
