//! Reference kernel implementations for every primitive.
//!
//! Kernels execute against the owning device's buffer pool following the
//! take-inputs-by-reference / take-output-by-value pattern: outputs are
//! removed from the pool for the duration of the call (the pool keeps their
//! bytes charged) and restored afterwards, which re-checks capacity for any
//! growth — so a kernel that overflows device memory fails exactly like a
//! real device allocation would.
//!
//! One *reference* implementation exists per primitive; per-SDK performance
//! differences come from the device cost models (the paper's
//! "semantically similar implementations" across drivers, §V). Additional
//! *variants* (e.g. the branchless filter) demonstrate the multiple-
//! implementations-per-primitive capability of the task layer.

pub mod agg;
pub mod filter;
pub mod fused;
pub mod join;
pub mod map;
pub mod materialize;
pub mod prefix;
pub mod sort;

use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::error::{DeviceError, Result};
use adamant_device::pool::BufferPool;

/// Builds a `BadKernelArgs` error.
pub(crate) fn bad_args(kernel: &str, reason: impl Into<String>) -> DeviceError {
    DeviceError::BadKernelArgs {
        kernel: kernel.into(),
        reason: reason.into(),
    }
}

/// Requires at least `n` buffer arguments.
pub(crate) fn need_bufs(kernel: &str, bufs: &[BufferId], n: usize) -> Result<()> {
    if bufs.len() < n {
        Err(bad_args(
            kernel,
            format!("expected at least {n} buffers, got {}", bufs.len()),
        ))
    } else {
        Ok(())
    }
}

/// Requires at least `n` scalar parameters.
pub(crate) fn need_params(kernel: &str, params: &[i64], n: usize) -> Result<()> {
    if params.len() < n {
        Err(bad_args(
            kernel,
            format!("expected at least {n} params, got {}", params.len()),
        ))
    } else {
        Ok(())
    }
}

/// Borrows an input buffer's payload as `i64`s.
pub(crate) fn input_i64<'p>(
    pool: &'p BufferPool,
    kernel: &str,
    id: BufferId,
) -> Result<&'p Vec<i64>> {
    let buf = pool.get(id)?;
    buf.data.as_i64().ok_or_else(|| {
        bad_args(
            kernel,
            format!("buffer {id} is {}, need i64", buf.data.kind()),
        )
    })
}

/// Borrows an input buffer's payload as bitmap words.
pub(crate) fn input_bitwords<'p>(
    pool: &'p BufferPool,
    kernel: &str,
    id: BufferId,
) -> Result<&'p Vec<u64>> {
    let buf = pool.get(id)?;
    buf.data.as_bitwords().ok_or_else(|| {
        bad_args(
            kernel,
            format!("buffer {id} is {}, need bitwords", buf.data.kind()),
        )
    })
}

/// Borrows an input buffer's payload as positions.
pub(crate) fn input_u32<'p>(
    pool: &'p BufferPool,
    kernel: &str,
    id: BufferId,
) -> Result<&'p Vec<u32>> {
    let buf = pool.get(id)?;
    buf.data.as_u32().ok_or_else(|| {
        bad_args(
            kernel,
            format!("buffer {id} is {}, need u32", buf.data.kind()),
        )
    })
}

/// Replaces the payload of a taken output buffer and restores it,
/// re-checking pool capacity.
pub(crate) fn write_output(pool: &mut BufferPool, id: BufferId, data: BufferData) -> Result<()> {
    let mut out = pool.take(id)?;
    out.data = data;
    pool.restore(id, out)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared scaffolding for kernel unit tests.
    use adamant_device::buffer::{Buffer, BufferData, BufferId};
    use adamant_device::pool::BufferPool;
    use adamant_device::sdk::SdkRepr;

    /// A pool big enough for kernel tests.
    pub fn pool() -> BufferPool {
        BufferPool::new(1 << 24, 1 << 20)
    }

    /// Inserts a payload under `id`.
    pub fn put(pool: &mut BufferPool, id: u64, data: BufferData) {
        pool.insert(
            BufferId(id),
            Buffer {
                data,
                repr: SdkRepr::HostVec,
                pinned: false,
                reserved_bytes: 0,
            },
        )
        .unwrap();
    }

    /// Inserts an empty output slot under `id`.
    pub fn out(pool: &mut BufferPool, id: u64) {
        put(pool, id, BufferData::Raw(Vec::new()));
    }

    /// Reads back an i64 payload.
    pub fn read_i64(pool: &BufferPool, id: u64) -> Vec<i64> {
        pool.get(BufferId(id))
            .unwrap()
            .data
            .as_i64()
            .unwrap()
            .clone()
    }

    /// Reads back a u32 payload.
    pub fn read_u32(pool: &BufferPool, id: u64) -> Vec<u32> {
        pool.get(BufferId(id))
            .unwrap()
            .data
            .as_u32()
            .unwrap()
            .clone()
    }

    /// Reads back bitmap words.
    pub fn read_words(pool: &BufferPool, id: u64) -> Vec<u64> {
        pool.get(BufferId(id))
            .unwrap()
            .data
            .as_bitwords()
            .unwrap()
            .clone()
    }

    /// Buffer id shorthand.
    pub fn b(id: u64) -> BufferId {
        BufferId(id)
    }
}
