//! `FILTER_BITMAP`, `FILTER_BITMAP_COL` and `FILTER_POSITION` kernels.

use super::{bad_args, input_i64, need_bufs, need_params, write_output};
use crate::params::CmpOp;
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

fn pack_bits(bools: impl Iterator<Item = bool>, n: usize) -> Vec<u64> {
    let mut words = vec![0u64; n.div_ceil(64)];
    for (i, b) in bools.enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// `filter_bitmap` — constant predicate producing a bit-packed result.
///
/// Buffers `[in, out]`, params `[cmp, value, hi]` (`hi` only used by
/// `Between`).
pub fn filter_bitmap(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
) -> Result<KernelStats> {
    need_bufs("filter_bitmap", bufs, 2)?;
    need_params("filter_bitmap", params, 2)?;
    let cmp = CmpOp::from_code(params[0])
        .ok_or_else(|| bad_args("filter_bitmap", "unknown comparison"))?;
    let v = params[1];
    let hi = params.get(2).copied().unwrap_or(0);
    let input = input_i64(pool, "filter_bitmap", bufs[0])?;
    let n = input.len();
    let words = pack_bits(input.iter().map(|&x| cmp.eval(x, v, hi)), n);
    write_output(pool, bufs[1], BufferData::BitWords(words))?;
    Ok(KernelStats::new(n as u64, CostClass::FilterBitmap))
}

/// `filter_bitmap@branchless` — predication-style variant (no data-dependent
/// branch in the inner loop). Identical results; registered as an
/// alternative implementation for the ablation benches.
pub fn filter_bitmap_branchless(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
) -> Result<KernelStats> {
    need_bufs("filter_bitmap", bufs, 2)?;
    need_params("filter_bitmap", params, 2)?;
    let cmp = CmpOp::from_code(params[0])
        .ok_or_else(|| bad_args("filter_bitmap", "unknown comparison"))?;
    let v = params[1];
    let hi = params.get(2).copied().unwrap_or(0);
    let input = input_i64(pool, "filter_bitmap", bufs[0])?;
    let n = input.len();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (w, block) in input.chunks(64).enumerate() {
        let mut word = 0u64;
        for (i, &x) in block.iter().enumerate() {
            // Branch-free accumulate: bool -> 0/1 -> shifted bit.
            word |= (cmp.eval(x, v, hi) as u64) << i;
        }
        words[w] = word;
    }
    write_output(pool, bufs[1], BufferData::BitWords(words))?;
    Ok(KernelStats::new(n as u64, CostClass::FilterBitmap))
}

/// `filter_bitmap_col` — column-column predicate (Q4's
/// `l_commitdate < l_receiptdate`).
///
/// Buffers `[a, b, out]`, params `[cmp]`.
pub fn filter_bitmap_col(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
) -> Result<KernelStats> {
    need_bufs("filter_bitmap_col", bufs, 3)?;
    need_params("filter_bitmap_col", params, 1)?;
    let cmp = CmpOp::from_code(params[0])
        .ok_or_else(|| bad_args("filter_bitmap_col", "unknown comparison"))?;
    if cmp == CmpOp::Between {
        return Err(bad_args("filter_bitmap_col", "Between needs a constant"));
    }
    let a = input_i64(pool, "filter_bitmap_col", bufs[0])?;
    let b = input_i64(pool, "filter_bitmap_col", bufs[1])?;
    if a.len() != b.len() {
        return Err(bad_args("filter_bitmap_col", "input length mismatch"));
    }
    let n = a.len();
    let words = pack_bits(a.iter().zip(b).map(|(&x, &y)| cmp.eval(x, y, 0)), n);
    write_output(pool, bufs[2], BufferData::BitWords(words))?;
    Ok(KernelStats::new(n as u64, CostClass::FilterBitmap))
}

/// `filter_position` — constant predicate producing a position list.
///
/// Buffers `[in, out]`, params `[cmp, value, hi]`.
pub fn filter_position(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
) -> Result<KernelStats> {
    need_bufs("filter_position", bufs, 2)?;
    need_params("filter_position", params, 2)?;
    let cmp = CmpOp::from_code(params[0])
        .ok_or_else(|| bad_args("filter_position", "unknown comparison"))?;
    let v = params[1];
    let hi = params.get(2).copied().unwrap_or(0);
    let input = input_i64(pool, "filter_position", bufs[0])?;
    let n = input.len();
    let positions: Vec<u32> = input
        .iter()
        .enumerate()
        .filter_map(|(i, &x)| cmp.eval(x, v, hi).then_some(i as u32))
        .collect();
    write_output(pool, bufs[1], BufferData::U32(positions))?;
    Ok(KernelStats::new(n as u64, CostClass::FilterPosition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;

    #[test]
    fn bitmap_filter_lt() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![5, 10, 3, 24, 1]));
        out(&mut p, 2);
        let stats = filter_bitmap(&mut p, &[b(1), b(2)], &[CmpOp::Lt.to_code(), 10, 0]).unwrap();
        assert_eq!(stats.elements, 5);
        let words = read_words(&p, 2);
        assert_eq!(words, vec![0b10101]); // rows 0,2,4
    }

    #[test]
    fn bitmap_filter_between() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![4, 5, 6, 7, 8]));
        out(&mut p, 2);
        filter_bitmap(&mut p, &[b(1), b(2)], &[CmpOp::Between.to_code(), 5, 7]).unwrap();
        assert_eq!(read_words(&p, 2), vec![0b01110]);
    }

    #[test]
    fn branchless_matches_reference() {
        let mut p = pool();
        let data: Vec<i64> = (0..1000).map(|i| (i * 37) % 256).collect();
        put(&mut p, 1, BufferData::I64(data));
        out(&mut p, 2);
        out(&mut p, 3);
        filter_bitmap(&mut p, &[b(1), b(2)], &[CmpOp::Ge.to_code(), 128, 0]).unwrap();
        filter_bitmap_branchless(&mut p, &[b(1), b(3)], &[CmpOp::Ge.to_code(), 128, 0]).unwrap();
        assert_eq!(read_words(&p, 2), read_words(&p, 3));
    }

    #[test]
    fn column_column_filter() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 5, 3]));
        put(&mut p, 2, BufferData::I64(vec![2, 4, 3]));
        out(&mut p, 3);
        filter_bitmap_col(&mut p, &[b(1), b(2), b(3)], &[CmpOp::Lt.to_code()]).unwrap();
        assert_eq!(read_words(&p, 3), vec![0b001]);
        // Between is rejected for column-column.
        assert!(
            filter_bitmap_col(&mut p, &[b(1), b(2), b(3)], &[CmpOp::Between.to_code()]).is_err()
        );
    }

    #[test]
    fn position_filter() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![5, 10, 3, 24, 1]));
        out(&mut p, 2);
        let stats = filter_position(&mut p, &[b(1), b(2)], &[CmpOp::Gt.to_code(), 4, 0]).unwrap();
        assert_eq!(stats.elements, 5);
        assert_eq!(read_u32(&p, 2), vec![0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![]));
        out(&mut p, 2);
        filter_bitmap(&mut p, &[b(1), b(2)], &[CmpOp::Lt.to_code(), 10, 0]).unwrap();
        assert!(read_words(&p, 2).is_empty());
    }
}
