//! `FUSED` and `FUSED_AGG` — the interpreter kernel behind graph fusion.
//!
//! A fused node carries a flattened stage program in its scalar parameters
//! (encoded by `NodeParams::Fused::to_scalars` in `adamant-core`); this
//! kernel interprets the stages in order, keeping every interior value in
//! kernel-local memory. No interior stage touches the buffer pool — that is
//! the whole point of fusion: the intermediates the unfused graph would have
//! materialized through the hub (bitmaps, mapped columns) never get a buffer
//! id, never charge the pool and never ride a transfer.
//!
//! Stage semantics replicate the standalone kernels bit for bit (same
//! packing, same error conditions, same accumulator layout), so fused and
//! unfused execution are reference-exact. Per-stage `(CostClass, elements)`
//! pairs are reported in `KernelStats::stages`; the device prices them
//! through `CostModel::fused_kernel_ns` (one launch + discounted bodies).
//!
//! Registered through the ordinary task-registry defaults — a fused chain is
//! just another primitive to the plug-in interface, so per-SDK variants can
//! override it like any other kernel (Breß et al.'s portability argument).

use super::{bad_args, input_bitwords, input_i64, need_bufs, write_output};
use crate::hashtable::AggHashTable;
use crate::params::{AggFunc, BitmapOp, CmpOp, MapOp};
use crate::primitive::PrimitiveKind;
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

const K: &str = "fused";

/// One decoded stage: the original primitive, its operand sources and its
/// own scalar parameters (exactly what the standalone kernel would receive).
struct Stage {
    kind: PrimitiveKind,
    /// `>= 0`: external input index (position in the fused node's buffer
    /// list); `< 0`: result of stage `-(code + 1)`.
    operands: Vec<i64>,
    params: Vec<i64>,
}

/// Decodes the flattened stage program:
/// `[n_stages, (kind, n_operands, operands.., n_params, params..)*]`.
fn decode(params: &[i64]) -> Result<Vec<Stage>> {
    let mut it = params.iter().copied();
    let mut next = |what: &str| {
        it.next()
            .ok_or_else(|| bad_args(K, format!("truncated stage program at {what}")))
    };
    let n_stages = next("stage count")?;
    if n_stages < 1 {
        return Err(bad_args(K, "empty stage program"));
    }
    let mut stages = Vec::with_capacity(n_stages as usize);
    for si in 0..n_stages {
        let kind = PrimitiveKind::from_op_code(next("stage kind")?)
            .ok_or_else(|| bad_args(K, "unknown stage op code"))?;
        let n_ops = next("operand count")?;
        if n_ops < 0 {
            return Err(bad_args(K, "negative operand count"));
        }
        let mut operands = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let code = next("operand")?;
            if code < 0 && -(code + 1) >= si {
                return Err(bad_args(K, "stage operand references a later stage"));
            }
            operands.push(code);
        }
        let n_params = next("param count")?;
        if n_params < 0 {
            return Err(bad_args(K, "negative param count"));
        }
        let mut sp = Vec::with_capacity(n_params as usize);
        for _ in 0..n_params {
            sp.push(next("stage param")?);
        }
        stages.push(Stage {
            kind,
            operands,
            params: sp,
        });
    }
    Ok(stages)
}

/// An interior value held in kernel-local memory instead of the pool.
enum Val {
    I64(Vec<i64>),
    Bits(Vec<u64>),
}

/// Resolves an operand to an `i64` slice (external buffer or earlier stage).
fn i64_operand<'a>(
    pool: &'a BufferPool,
    bufs: &[BufferId],
    results: &'a [Val],
    code: i64,
) -> Result<&'a [i64]> {
    if code >= 0 {
        let idx = code as usize;
        if idx + 1 >= bufs.len() {
            return Err(bad_args(K, "external operand index out of range"));
        }
        Ok(input_i64(pool, K, bufs[idx])?.as_slice())
    } else {
        match results.get((-(code + 1)) as usize) {
            Some(Val::I64(v)) => Ok(v),
            Some(Val::Bits(_)) => Err(bad_args(K, "stage operand is a bitmap, need i64")),
            None => Err(bad_args(K, "stage operand index out of range")),
        }
    }
}

/// Resolves an operand to a bitmap-word slice.
fn bits_operand<'a>(
    pool: &'a BufferPool,
    bufs: &[BufferId],
    results: &'a [Val],
    code: i64,
) -> Result<&'a [u64]> {
    if code >= 0 {
        let idx = code as usize;
        if idx + 1 >= bufs.len() {
            return Err(bad_args(K, "external operand index out of range"));
        }
        Ok(input_bitwords(pool, K, bufs[idx])?.as_slice())
    } else {
        match results.get((-(code + 1)) as usize) {
            Some(Val::Bits(v)) => Ok(v),
            Some(Val::I64(_)) => Err(bad_args(K, "stage operand is i64, need bitmap")),
            None => Err(bad_args(K, "stage operand index out of range")),
        }
    }
}

fn pack_bits(bools: impl Iterator<Item = bool>, n: usize) -> Vec<u64> {
    let mut words = vec![0u64; n.div_ceil(64)];
    for (i, b) in bools.enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

fn need_operands(stage: &Stage, n: usize) -> Result<()> {
    if stage.operands.len() < n {
        Err(bad_args(
            K,
            format!(
                "{} stage expects {n} operands, got {}",
                stage.kind,
                stage.operands.len()
            ),
        ))
    } else {
        Ok(())
    }
}

fn need_stage_params(stage: &Stage, n: usize) -> Result<()> {
    if stage.params.len() < n {
        Err(bad_args(
            K,
            format!(
                "{} stage expects {n} params, got {}",
                stage.kind,
                stage.params.len()
            ),
        ))
    } else {
        Ok(())
    }
}

/// Evaluates one non-accumulating stage, mirroring the standalone kernel.
fn eval_stage(
    pool: &BufferPool,
    bufs: &[BufferId],
    results: &[Val],
    stage: &Stage,
    stats: &mut Vec<(CostClass, u64)>,
) -> Result<Val> {
    let p = &stage.params;
    match stage.kind {
        PrimitiveKind::FilterBitmap => {
            need_operands(stage, 1)?;
            need_stage_params(stage, 2)?;
            let cmp = CmpOp::from_code(p[0]).ok_or_else(|| bad_args(K, "unknown comparison"))?;
            let v = p[1];
            let hi = p.get(2).copied().unwrap_or(0);
            let input = i64_operand(pool, bufs, results, stage.operands[0])?;
            let n = input.len();
            stats.push((CostClass::FilterBitmap, n as u64));
            Ok(Val::Bits(pack_bits(
                input.iter().map(|&x| cmp.eval(x, v, hi)),
                n,
            )))
        }
        PrimitiveKind::FilterBitmapCol => {
            need_operands(stage, 2)?;
            need_stage_params(stage, 1)?;
            let cmp = CmpOp::from_code(p[0]).ok_or_else(|| bad_args(K, "unknown comparison"))?;
            if cmp == CmpOp::Between {
                return Err(bad_args(K, "Between needs a constant"));
            }
            let a = i64_operand(pool, bufs, results, stage.operands[0])?;
            let b = i64_operand(pool, bufs, results, stage.operands[1])?;
            if a.len() != b.len() {
                return Err(bad_args(K, "input length mismatch"));
            }
            let n = a.len();
            stats.push((CostClass::FilterBitmap, n as u64));
            Ok(Val::Bits(pack_bits(
                a.iter().zip(b).map(|(&x, &y)| cmp.eval(x, y, 0)),
                n,
            )))
        }
        PrimitiveKind::BitmapOp => {
            need_operands(stage, 2)?;
            need_stage_params(stage, 1)?;
            let op = BitmapOp::from_code(p[0]).ok_or_else(|| bad_args(K, "unknown opcode"))?;
            let a = bits_operand(pool, bufs, results, stage.operands[0])?;
            let b = bits_operand(pool, bufs, results, stage.operands[1])?;
            if a.len() != b.len() {
                return Err(bad_args(
                    K,
                    format!("word count mismatch: {} vs {}", a.len(), b.len()),
                ));
            }
            let out: Vec<u64> = a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect();
            stats.push((CostClass::MapLike, out.len() as u64));
            Ok(Val::Bits(out))
        }
        PrimitiveKind::Map => {
            need_stage_params(stage, 1)?;
            let op = MapOp::from_code(p[0]).ok_or_else(|| bad_args(K, "unknown opcode"))?;
            let out = if op.is_const() {
                need_operands(stage, 1)?;
                need_stage_params(stage, 2)?;
                let c = p[1];
                let input = i64_operand(pool, bufs, results, stage.operands[0])?;
                input.iter().map(|&x| op.apply(x, c)).collect::<Vec<i64>>()
            } else {
                need_operands(stage, 2)?;
                let a = i64_operand(pool, bufs, results, stage.operands[0])?;
                let b = i64_operand(pool, bufs, results, stage.operands[1])?;
                if a.len() != b.len() {
                    return Err(bad_args(
                        K,
                        format!("input length mismatch: {} vs {}", a.len(), b.len()),
                    ));
                }
                a.iter().zip(b).map(|(&x, &y)| op.apply(x, y)).collect()
            };
            stats.push((CostClass::MapLike, out.len() as u64));
            Ok(Val::I64(out))
        }
        PrimitiveKind::Materialize => {
            need_operands(stage, 2)?;
            let values = i64_operand(pool, bufs, results, stage.operands[0])?;
            let words = bits_operand(pool, bufs, results, stage.operands[1])?;
            let n = values.len();
            if words.len() * 64 < n {
                return Err(bad_args(
                    K,
                    format!("bitmap covers {} rows, values have {n}", words.len() * 64),
                ));
            }
            let mut out = Vec::new();
            for (w, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let idx = w * 64 + bit;
                    if idx < n {
                        out.push(values[idx]);
                    }
                }
            }
            stats.push((CostClass::MaterializeBitmap, n as u64));
            Ok(Val::I64(out))
        }
        other => Err(bad_args(K, format!("stage kind {other} is not fusible"))),
    }
}

/// Shared driver for both fused kernels. Buffers are
/// `[external_0, .., external_{m-1}, out]` where `out` is per-chunk scratch
/// (`fused`) or the persistent accumulator (`fused_agg`).
fn run_chain(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    params: &[i64],
    agg_terminal: bool,
) -> Result<KernelStats> {
    need_bufs(K, bufs, 2)?;
    let stages = decode(params)?;
    let last = stages.len() - 1;
    let out_id = bufs[bufs.len() - 1];
    let mut results: Vec<Val> = Vec::with_capacity(stages.len());
    let mut stage_stats: Vec<(CostClass, u64)> = Vec::with_capacity(stages.len());

    let interior = if agg_terminal { last } else { stages.len() };
    for stage in &stages[..interior] {
        let val = eval_stage(pool, bufs, &results, stage, &mut stage_stats)?;
        results.push(val);
    }

    if agg_terminal {
        let stage = &stages[last];
        match stage.kind {
            PrimitiveKind::AggBlock => {
                need_operands(stage, 1)?;
                need_stage_params(stage, 1)?;
                let agg = AggFunc::from_code(stage.params[0])
                    .ok_or_else(|| bad_args(K, "unknown aggregate"))?;
                let (mut state, mut rows) = {
                    let acc = pool.get(out_id)?;
                    match acc.data.as_i64() {
                        Some(v) if v.len() >= 2 => (v[0], v[1]),
                        _ => (agg.identity(), 0),
                    }
                };
                let input = i64_operand(pool, bufs, &results, stage.operands[0])?;
                for &x in input {
                    state = agg.fold(state, x);
                }
                rows += input.len() as i64;
                let n = input.len() as u64;
                stage_stats.push((CostClass::ReduceLike, n));
                write_output(pool, out_id, BufferData::I64(vec![state, rows]))?;
            }
            PrimitiveKind::HashAgg => {
                need_stage_params(stage, 2)?;
                let payload_cols = stage.params[0] as usize;
                let agg_count = stage.params[1] as usize;
                need_operands(stage, 1 + payload_cols + agg_count)?;
                let mut table_buf = pool.take(out_id)?;
                let result = (|| -> Result<u64> {
                    let table = table_buf
                        .data
                        .as_generic_mut::<AggHashTable>()
                        .ok_or_else(|| bad_args(K, "table buffer does not hold an AggHashTable"))?;
                    if table.agg_funcs().len() != agg_count {
                        return Err(bad_args(
                            K,
                            format!(
                                "table has {} aggregates, call supplies {agg_count}",
                                table.agg_funcs().len()
                            ),
                        ));
                    }
                    let keys = i64_operand(pool, bufs, &results, stage.operands[0])?;
                    let mut payload_refs = Vec::with_capacity(payload_cols);
                    for i in 0..payload_cols {
                        let col = i64_operand(pool, bufs, &results, stage.operands[1 + i])?;
                        if col.len() != keys.len() {
                            return Err(bad_args(K, "payload length mismatch"));
                        }
                        payload_refs.push(col);
                    }
                    let mut val_refs = Vec::with_capacity(agg_count);
                    for i in 0..agg_count {
                        let col = i64_operand(
                            pool,
                            bufs,
                            &results,
                            stage.operands[1 + payload_cols + i],
                        )?;
                        if col.len() != keys.len() {
                            return Err(bad_args(K, "value length mismatch"));
                        }
                        val_refs.push(col);
                    }
                    let mut payload_row = vec![0i64; payload_cols];
                    let mut val_row = vec![0i64; agg_count];
                    for (i, &key) in keys.iter().enumerate() {
                        for (c, col) in payload_refs.iter().enumerate() {
                            payload_row[c] = col[i];
                        }
                        for (c, col) in val_refs.iter().enumerate() {
                            val_row[c] = col[i];
                        }
                        table.update(key, &payload_row, &val_row);
                    }
                    stage_stats.push((
                        CostClass::HashAgg {
                            groups: table.group_count() as u64,
                        },
                        keys.len() as u64,
                    ));
                    Ok(keys.len() as u64)
                })();
                pool.restore(out_id, table_buf)?;
                result?;
            }
            other => {
                return Err(bad_args(
                    K,
                    format!("fused_agg terminal stage {other} is not an aggregation"),
                ))
            }
        }
    } else {
        let data = match results.pop().expect("at least one stage") {
            Val::I64(v) => BufferData::I64(v),
            Val::Bits(w) => BufferData::BitWords(w),
        };
        write_output(pool, out_id, data)?;
    }

    let (class, elements) = *stage_stats.last().expect("at least one stage");
    Ok(KernelStats::fused(elements, class, stage_stats))
}

/// `fused` — interprets a non-accumulating fused chain into scratch output.
pub fn fused(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    run_chain(pool, bufs, params, false)
}

/// `fused_agg` — a fused chain terminating in `AGG_BLOCK` or `HASH_AGG`;
/// accumulates into the last buffer across chunks like its terminal would.
pub fn fused_agg(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    run_chain(pool, bufs, params, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;
    use crate::kernels::{agg, filter, map, materialize};

    // Stage program builder mirroring `NodeParams::Fused::to_scalars`.
    fn program(stages: &[(PrimitiveKind, &[i64], &[i64])]) -> Vec<i64> {
        let mut out = vec![stages.len() as i64];
        for (kind, ops, params) in stages {
            out.push(kind.op_code());
            out.push(ops.len() as i64);
            out.extend_from_slice(ops);
            out.push(params.len() as i64);
            out.extend_from_slice(params);
        }
        out
    }

    #[test]
    fn filter_map_agg_matches_unfused() {
        let data: Vec<i64> = (0..500).map(|i| (i * 37) % 100).collect();
        let vals: Vec<i64> = (0..500).map(|i| i * 3).collect();

        // Unfused: filter -> materialize -> agg_block through the pool.
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(data.clone()));
        put(&mut p, 2, BufferData::I64(vals.clone()));
        out(&mut p, 3); // bitmap
        out(&mut p, 4); // materialized
        out(&mut p, 5); // acc
        filter::filter_bitmap(&mut p, &[b(1), b(3)], &[CmpOp::Lt.to_code(), 50, 0]).unwrap();
        materialize::materialize(&mut p, &[b(2), b(3), b(4)], &[]).unwrap();
        agg::agg_block(&mut p, &[b(4), b(5)], &[AggFunc::Sum.to_code()]).unwrap();
        let expect = read_i64(&p, 5);

        // Fused: one kernel, no interior buffers.
        let mut q = pool();
        put(&mut q, 1, BufferData::I64(data));
        put(&mut q, 2, BufferData::I64(vals));
        out(&mut q, 9); // acc only
        let prog = program(&[
            (
                PrimitiveKind::FilterBitmap,
                &[0],
                &[CmpOp::Lt.to_code(), 50, 0],
            ),
            (PrimitiveKind::Materialize, &[1, -1], &[]),
            (PrimitiveKind::AggBlock, &[-2], &[AggFunc::Sum.to_code()]),
        ]);
        let stats = fused_agg(&mut q, &[b(1), b(2), b(9)], &prog).unwrap();
        assert_eq!(read_i64(&q, 9), expect);
        assert_eq!(stats.stages.len(), 3);
        assert_eq!(stats.stages[0].0, CostClass::FilterBitmap);
        assert_eq!(stats.stages[0].1, 500);
    }

    #[test]
    fn fused_map_chain_writes_scratch() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 3, 4]));
        out(&mut p, 2);
        // map *10 then map +1, all in registers.
        let prog = program(&[
            (PrimitiveKind::Map, &[0], &[MapOp::MulConst.to_code(), 10]),
            (PrimitiveKind::Map, &[-1], &[MapOp::AddConst.to_code(), 1]),
        ]);
        let stats = fused(&mut p, &[b(1), b(2)], &prog).unwrap();
        assert_eq!(read_i64(&p, 2), vec![11, 21, 31, 41]);
        assert_eq!(stats.stages.len(), 2);
        // Matches the two standalone map kernels.
        let mut q = pool();
        put(&mut q, 1, BufferData::I64(vec![1, 2, 3, 4]));
        out(&mut q, 2);
        out(&mut q, 3);
        map::map(&mut q, &[b(1), b(2)], &[MapOp::MulConst.to_code(), 10]).unwrap();
        map::map(&mut q, &[b(2), b(3)], &[MapOp::AddConst.to_code(), 1]).unwrap();
        assert_eq!(read_i64(&q, 3), read_i64(&p, 2));
    }

    #[test]
    fn accumulates_across_calls() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 3]));
        out(&mut p, 2);
        let prog = program(&[(PrimitiveKind::AggBlock, &[0], &[AggFunc::Sum.to_code()])]);
        fused_agg(&mut p, &[b(1), b(2)], &prog).unwrap();
        assert_eq!(read_i64(&p, 2), vec![6, 3]);
        // Second chunk folds into the same accumulator.
        fused_agg(&mut p, &[b(1), b(2)], &prog).unwrap();
        assert_eq!(read_i64(&p, 2), vec![12, 6]);
    }

    #[test]
    fn malformed_programs_rejected() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1]));
        out(&mut p, 2);
        // Empty program.
        assert!(fused(&mut p, &[b(1), b(2)], &[0]).is_err());
        // Truncated.
        assert!(fused(&mut p, &[b(1), b(2)], &[1, PrimitiveKind::Map.op_code()]).is_err());
        // Forward stage reference.
        let prog = program(&[(PrimitiveKind::Map, &[-1], &[MapOp::AddConst.to_code(), 1])]);
        assert!(fused(&mut p, &[b(1), b(2)], &prog).is_err());
        // Non-fusible stage kind.
        let prog = program(&[(PrimitiveKind::Sort, &[0], &[])]);
        assert!(fused(&mut p, &[b(1), b(2)], &prog).is_err());
        // Non-agg terminal under fused_agg.
        let prog = program(&[(PrimitiveKind::Map, &[0], &[MapOp::AddConst.to_code(), 1])]);
        assert!(fused_agg(&mut p, &[b(1), b(2)], &prog).is_err());
        // External operand out of range.
        let prog = program(&[(PrimitiveKind::Map, &[7], &[MapOp::AddConst.to_code(), 1])]);
        assert!(fused(&mut p, &[b(1), b(2)], &prog).is_err());
    }
}
