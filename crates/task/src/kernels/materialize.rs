//! `MATERIALIZE` and `MATERIALIZE_POSITION` kernels.

use super::{bad_args, input_i64, input_u32, need_bufs, write_output};
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `materialize` — extracts the values selected by a bitmap.
///
/// Buffers `[values, bitmap, out]`. The bitmap must cover at least
/// `values.len()` rows (trailing bits are ignored). On SIMT devices the
/// cost model charges the bit-extraction penalty (paper Fig. 9b).
pub fn materialize(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    _params: &[i64],
) -> Result<KernelStats> {
    need_bufs("materialize", bufs, 3)?;
    let values = input_i64(pool, "materialize", bufs[0])?;
    let bitmap = pool.get(bufs[1])?;
    let words = bitmap.data.as_bitwords().ok_or_else(|| {
        bad_args(
            "materialize",
            format!(
                "buffer {} is {}, need bitwords",
                bufs[1],
                bitmap.data.kind()
            ),
        )
    })?;
    let n = values.len();
    if words.len() * 64 < n {
        return Err(bad_args(
            "materialize",
            format!("bitmap covers {} rows, values have {n}", words.len() * 64),
        ));
    }
    let mut out = Vec::new();
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let idx = w * 64 + bit;
            if idx < n {
                out.push(values[idx]);
            }
        }
    }
    write_output(pool, bufs[2], BufferData::I64(out))?;
    Ok(KernelStats::new(n as u64, CostClass::MaterializeBitmap))
}

/// `materialize_position` — gathers values at the given positions.
///
/// Buffers `[values, positions, out]`.
pub fn materialize_position(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    _params: &[i64],
) -> Result<KernelStats> {
    need_bufs("materialize_position", bufs, 3)?;
    let values = input_i64(pool, "materialize_position", bufs[0])?;
    let positions = input_u32(pool, "materialize_position", bufs[1])?;
    let mut out = Vec::with_capacity(positions.len());
    for &pos in positions {
        let pos = pos as usize;
        if pos >= values.len() {
            return Err(bad_args(
                "materialize_position",
                format!("position {pos} out of bounds for {} values", values.len()),
            ));
        }
        out.push(values[pos]);
    }
    let n = positions.len() as u64;
    write_output(pool, bufs[2], BufferData::I64(out))?;
    Ok(KernelStats::new(n, CostClass::MaterializePosition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;

    #[test]
    fn bitmap_materialize() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![10, 20, 30, 40, 50]));
        put(&mut p, 2, BufferData::BitWords(vec![0b10110]));
        out(&mut p, 3);
        let stats = materialize(&mut p, &[b(1), b(2), b(3)], &[]).unwrap();
        assert_eq!(stats.elements, 5);
        assert_eq!(read_i64(&p, 3), vec![20, 30, 50]);
    }

    #[test]
    fn bitmap_trailing_bits_ignored() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2]));
        // Bitmap word has bits set beyond row 1.
        put(&mut p, 2, BufferData::BitWords(vec![u64::MAX]));
        out(&mut p, 3);
        materialize(&mut p, &[b(1), b(2), b(3)], &[]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![1, 2]);
    }

    #[test]
    fn bitmap_too_short_rejected() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![0; 100]));
        put(&mut p, 2, BufferData::BitWords(vec![0])); // 64 < 100
        out(&mut p, 3);
        assert!(materialize(&mut p, &[b(1), b(2), b(3)], &[]).is_err());
    }

    #[test]
    fn position_materialize() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![10, 20, 30, 40]));
        put(&mut p, 2, BufferData::U32(vec![3, 0, 3]));
        out(&mut p, 3);
        let stats = materialize_position(&mut p, &[b(1), b(2), b(3)], &[]).unwrap();
        assert_eq!(stats.elements, 3);
        assert_eq!(read_i64(&p, 3), vec![40, 10, 40]);
    }

    #[test]
    fn position_out_of_bounds() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![10]));
        put(&mut p, 2, BufferData::U32(vec![5]));
        out(&mut p, 3);
        assert!(materialize_position(&mut p, &[b(1), b(2), b(3)], &[]).is_err());
    }

    #[test]
    fn empty_selection() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 3]));
        put(&mut p, 2, BufferData::BitWords(vec![0]));
        out(&mut p, 3);
        materialize(&mut p, &[b(1), b(2), b(3)], &[]).unwrap();
        assert!(read_i64(&p, 3).is_empty());
    }
}
