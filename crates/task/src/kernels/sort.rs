//! `SORT` kernel.

use super::{bad_args, input_i64, need_bufs, write_output};
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `sort` — computes the lexicographic sorted permutation of one or more
/// key columns.
///
/// Buffers `[key_0, .., key_{k-1}, out_perm]`, params `[desc_mask]` where
/// bit `i` of `desc_mask` selects descending order for key `i`. A
/// full-buffer pipeline breaker: the runtime runs it on materialized data
/// (ORDER BY / top-N in Q3). The permutation feeds
/// `MATERIALIZE_POSITION` for the payload columns.
pub fn sort(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_bufs("sort", bufs, 2)?;
    let desc_mask = params.first().copied().unwrap_or(0) as u64;
    let key_count = bufs.len() - 1;
    if key_count > 63 {
        return Err(bad_args("sort", "too many key columns"));
    }
    let mut keys = Vec::with_capacity(key_count);
    let mut n = None;
    for &buf in &bufs[..key_count] {
        let col = input_i64(pool, "sort", buf)?;
        if let Some(n) = n {
            if col.len() != n {
                return Err(bad_args("sort", "key column length mismatch"));
            }
        } else {
            n = Some(col.len());
        }
        keys.push(col);
    }
    let n = n.unwrap_or(0);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for (i, col) in keys.iter().enumerate() {
            let (x, y) = (col[a as usize], col[b as usize]);
            let ord = if desc_mask >> i & 1 == 1 {
                y.cmp(&x)
            } else {
                x.cmp(&y)
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        // Stable tie-break on original position for determinism.
        a.cmp(&b)
    });
    write_output(pool, *bufs.last().expect("checked"), BufferData::U32(perm))?;
    Ok(KernelStats::new(n as u64, CostClass::Sort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;

    #[test]
    fn single_key_ascending() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![30, 10, 20]));
        out(&mut p, 2);
        sort(&mut p, &[b(1), b(2)], &[0]).unwrap();
        assert_eq!(read_u32(&p, 2), vec![1, 2, 0]);
    }

    #[test]
    fn single_key_descending() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![30, 10, 20]));
        out(&mut p, 2);
        sort(&mut p, &[b(1), b(2)], &[1]).unwrap();
        assert_eq!(read_u32(&p, 2), vec![0, 2, 1]);
    }

    #[test]
    fn multi_key_q3_style() {
        // Q3: ORDER BY revenue DESC, o_orderdate ASC.
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![100, 200, 100, 200]));
        put(&mut p, 2, BufferData::I64(vec![5, 9, 3, 1]));
        out(&mut p, 3);
        sort(&mut p, &[b(1), b(2), b(3)], &[0b01]).unwrap();
        // revenue desc: (200,1)@3, (200,9)@1, then (100,3)@2, (100,5)@0.
        assert_eq!(read_u32(&p, 3), vec![3, 1, 2, 0]);
    }

    #[test]
    fn stability_on_full_ties() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![7, 7, 7]));
        out(&mut p, 2);
        sort(&mut p, &[b(1), b(2)], &[0]).unwrap();
        assert_eq!(read_u32(&p, 2), vec![0, 1, 2]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2]));
        put(&mut p, 2, BufferData::I64(vec![1]));
        out(&mut p, 3);
        assert!(sort(&mut p, &[b(1), b(2), b(3)], &[0]).is_err());
    }

    #[test]
    fn empty_input() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![]));
        out(&mut p, 2);
        sort(&mut p, &[b(1), b(2)], &[0]).unwrap();
        assert!(read_u32(&p, 2).is_empty());
    }
}
