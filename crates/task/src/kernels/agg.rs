//! `AGG_BLOCK`, `HASH_AGG` and `SORT_AGG` kernels.

use super::{bad_args, input_i64, need_bufs, need_params, write_output};
use crate::hashtable::AggHashTable;
use crate::params::AggFunc;
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `agg_block` — block-wise reduction into a persistent accumulator.
///
/// Buffers `[in, acc]`, params `[aggfunc]`. The accumulator buffer holds two
/// `i64`s: `[state, rows_seen]`; the first call initializes it with the
/// aggregate's identity. Chunked execution calls this once per chunk and the
/// accumulator carries across calls (the primitive is a pipeline breaker —
/// its output persists in device memory).
pub fn agg_block(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_bufs("agg_block", bufs, 2)?;
    need_params("agg_block", params, 1)?;
    let agg =
        AggFunc::from_code(params[0]).ok_or_else(|| bad_args("agg_block", "unknown aggregate"))?;
    let (mut state, mut rows) = {
        let acc = pool.get(bufs[1])?;
        match acc.data.as_i64() {
            Some(v) if v.len() >= 2 => (v[0], v[1]),
            _ => (agg.identity(), 0),
        }
    };
    let input = input_i64(pool, "agg_block", bufs[0])?;
    for &x in input {
        state = agg.fold(state, x);
    }
    rows += input.len() as i64;
    let n = input.len() as u64;
    write_output(pool, bufs[1], BufferData::I64(vec![state, rows]))?;
    Ok(KernelStats::new(n, CostClass::ReduceLike))
}

/// `hash_agg` — group-by aggregation into a shared device-resident table.
///
/// Buffers `[keys, payload_0.., val_0.., table]`, params
/// `[payload_cols, agg_count]`. The table buffer must already hold an
/// [`AggHashTable`] with matching aggregate functions and payload columns
/// (the runtime creates it via `prepare_output_buffer`). Accumulates across
/// chunks.
pub fn hash_agg(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_params("hash_agg", params, 2)?;
    let payload_cols = params[0] as usize;
    let agg_count = params[1] as usize;
    let expected_bufs = 1 + payload_cols + agg_count + 1;
    need_bufs("hash_agg", bufs, expected_bufs)?;
    let table_id = bufs[expected_bufs - 1];

    let mut table_buf = pool.take(table_id)?;
    let result = (|| -> Result<KernelStats> {
        let table = table_buf
            .data
            .as_generic_mut::<AggHashTable>()
            .ok_or_else(|| bad_args("hash_agg", "table buffer does not hold an AggHashTable"))?;
        if table.agg_funcs().len() != agg_count {
            return Err(bad_args(
                "hash_agg",
                format!(
                    "table has {} aggregates, call supplies {agg_count}",
                    table.agg_funcs().len()
                ),
            ));
        }
        let keys = input_i64(pool, "hash_agg", bufs[0])?;
        let mut payload_refs = Vec::with_capacity(payload_cols);
        for i in 0..payload_cols {
            let col = input_i64(pool, "hash_agg", bufs[1 + i])?;
            if col.len() != keys.len() {
                return Err(bad_args("hash_agg", "payload length mismatch"));
            }
            payload_refs.push(col);
        }
        let mut val_refs = Vec::with_capacity(agg_count);
        for i in 0..agg_count {
            let col = input_i64(pool, "hash_agg", bufs[1 + payload_cols + i])?;
            if col.len() != keys.len() {
                return Err(bad_args("hash_agg", "value length mismatch"));
            }
            val_refs.push(col);
        }
        let mut payload_row = vec![0i64; payload_cols];
        let mut val_row = vec![0i64; agg_count];
        for (i, &key) in keys.iter().enumerate() {
            for (c, col) in payload_refs.iter().enumerate() {
                payload_row[c] = col[i];
            }
            for (c, col) in val_refs.iter().enumerate() {
                val_row[c] = col[i];
            }
            table.update(key, &payload_row, &val_row);
        }
        Ok(KernelStats::new(
            keys.len() as u64,
            CostClass::HashAgg {
                groups: table.group_count() as u64,
            },
        ))
    })();
    pool.restore(table_id, table_buf)?;
    result
}

/// `sort_agg` — aggregation over *sorted* keys by run detection.
///
/// Buffers `[keys, vals, out_keys, out_vals]`, params `[aggfunc]`. A
/// full-buffer breaker: the runtime materializes and sorts the pipeline's
/// output before invoking it (the paper pairs it with `PREFIX_SUM` group
/// boundaries; run detection over sorted keys is the equivalent sequential
/// form).
pub fn sort_agg(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_bufs("sort_agg", bufs, 4)?;
    need_params("sort_agg", params, 1)?;
    let agg =
        AggFunc::from_code(params[0]).ok_or_else(|| bad_args("sort_agg", "unknown aggregate"))?;
    let keys = input_i64(pool, "sort_agg", bufs[0])?;
    let vals = input_i64(pool, "sort_agg", bufs[1])?;
    if keys.len() != vals.len() {
        return Err(bad_args("sort_agg", "key/value length mismatch"));
    }
    if keys.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad_args("sort_agg", "input keys are not sorted"));
    }
    let mut out_keys = Vec::new();
    let mut out_vals = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let key = keys[i];
        let mut state = agg.identity();
        while i < keys.len() && keys[i] == key {
            state = agg.fold(state, vals[i]);
            i += 1;
        }
        out_keys.push(key);
        out_vals.push(state);
    }
    let n = keys.len() as u64;
    write_output(pool, bufs[2], BufferData::I64(out_keys))?;
    write_output(pool, bufs[3], BufferData::I64(out_vals))?;
    Ok(KernelStats::new(n, CostClass::SortAgg))
}

/// `agg_export` — exports an [`AggHashTable`]'s dense columns into numeric
/// buffers so downstream device primitives (e.g. `SORT` for ORDER BY) can
/// consume group-by results without a host round-trip.
///
/// Buffers `[table, out_keys, out_payload_0.., out_state_0..]`, params
/// `[payload_cols, agg_count]`. Extension primitive (documented in
/// DESIGN.md).
pub fn agg_export(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_params("agg_export", params, 2)?;
    let payload_cols = params[0] as usize;
    let agg_count = params[1] as usize;
    need_bufs("agg_export", bufs, 2 + payload_cols + agg_count)?;
    let (keys, payloads, states) = {
        let table_buf = pool.get(bufs[0])?;
        let table = table_buf
            .data
            .as_generic::<AggHashTable>()
            .ok_or_else(|| bad_args("agg_export", "buffer does not hold an AggHashTable"))?;
        if table.group_payload_count() != payload_cols || table.agg_funcs().len() != agg_count {
            return Err(bad_args(
                "agg_export",
                format!(
                    "table shape ({}, {}) does not match call ({payload_cols}, {agg_count})",
                    table.group_payload_count(),
                    table.agg_funcs().len()
                ),
            ));
        }
        table.export()
    };
    let n = keys.len() as u64;
    write_output(pool, bufs[1], BufferData::I64(keys))?;
    for (i, col) in payloads.into_iter().enumerate() {
        write_output(pool, bufs[2 + i], BufferData::I64(col))?;
    }
    for (i, col) in states.into_iter().enumerate() {
        write_output(pool, bufs[2 + payload_cols + i], BufferData::I64(col))?;
    }
    Ok(KernelStats::new(n, CostClass::MapLike))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;
    use adamant_device::buffer::{Buffer, BufferData};
    use adamant_device::sdk::SdkRepr;

    fn put_agg_table(
        p: &mut adamant_device::pool::BufferPool,
        id: u64,
        aggs: Vec<AggFunc>,
        pc: usize,
    ) {
        p.insert(
            b(id),
            Buffer {
                data: BufferData::Generic(Box::new(AggHashTable::with_capacity(16, aggs, pc))),
                repr: SdkRepr::HostVec,
                pinned: false,
                reserved_bytes: 0,
            },
        )
        .unwrap();
    }

    #[test]
    fn agg_block_accumulates_across_calls() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 3]));
        put(&mut p, 2, BufferData::I64(vec![10, 20]));
        out(&mut p, 3);
        agg_block(&mut p, &[b(1), b(3)], &[AggFunc::Sum.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![6, 3]);
        // Second chunk folds into the same accumulator.
        agg_block(&mut p, &[b(2), b(3)], &[AggFunc::Sum.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![36, 5]);
    }

    #[test]
    fn agg_block_min_and_count() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![4, -1, 9]));
        out(&mut p, 2);
        agg_block(&mut p, &[b(1), b(2)], &[AggFunc::Min.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 2)[0], -1);
        out(&mut p, 3);
        agg_block(&mut p, &[b(1), b(3)], &[AggFunc::Count.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![3, 3]);
    }

    #[test]
    fn hash_agg_groups_and_accumulates() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 2, 1, 2, 1]));
        put(&mut p, 2, BufferData::I64(vec![10, 20, 30, 40, 50]));
        put_agg_table(&mut p, 3, vec![AggFunc::Sum], 0);
        let stats = hash_agg(&mut p, &[b(1), b(2), b(3)], &[0, 1]).unwrap();
        assert!(matches!(stats.cost_class, CostClass::HashAgg { groups: 2 }));

        // Second chunk accumulates into the same table.
        put(&mut p, 4, BufferData::I64(vec![3, 1]));
        put(&mut p, 5, BufferData::I64(vec![100, 1]));
        hash_agg(&mut p, &[b(4), b(5), b(3)], &[0, 1]).unwrap();

        let buf = p.get(b(3)).unwrap();
        let table = buf.data.as_generic::<AggHashTable>().unwrap();
        assert_eq!(table.group_count(), 3);
        let (keys, _, states) = table.export();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(states[0], vec![91, 60, 100]);
    }

    #[test]
    fn hash_agg_with_payload_and_multi_agg() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![7, 7, 8]));
        put(&mut p, 2, BufferData::I64(vec![70, 70, 80])); // payload
        put(&mut p, 3, BufferData::I64(vec![1, 2, 3])); // sum vals
        put(&mut p, 4, BufferData::I64(vec![0, 0, 0])); // count vals
        put_agg_table(&mut p, 5, vec![AggFunc::Sum, AggFunc::Count], 1);
        hash_agg(&mut p, &[b(1), b(2), b(3), b(4), b(5)], &[1, 2]).unwrap();
        let buf = p.get(b(5)).unwrap();
        let t = buf.data.as_generic::<AggHashTable>().unwrap();
        let (keys, payloads, states) = t.export();
        assert_eq!(keys, vec![7, 8]);
        assert_eq!(payloads[0], vec![70, 80]);
        assert_eq!(states[0], vec![3, 3]);
        assert_eq!(states[1], vec![2, 1]);
    }

    #[test]
    fn hash_agg_rejects_bad_table() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1]));
        put(&mut p, 2, BufferData::I64(vec![1]));
        put(&mut p, 3, BufferData::I64(vec![0])); // not a table
        assert!(hash_agg(&mut p, &[b(1), b(2), b(3)], &[0, 1]).is_err());
        // Agg count mismatch.
        put_agg_table(&mut p, 4, vec![AggFunc::Sum, AggFunc::Count], 0);
        assert!(hash_agg(&mut p, &[b(1), b(2), b(4)], &[0, 1]).is_err());
    }

    #[test]
    fn sort_agg_runs() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1, 1, 2, 5, 5, 5]));
        put(&mut p, 2, BufferData::I64(vec![10, 20, 30, 1, 2, 3]));
        out(&mut p, 3);
        out(&mut p, 4);
        sort_agg(&mut p, &[b(1), b(2), b(3), b(4)], &[AggFunc::Sum.to_code()]).unwrap();
        assert_eq!(read_i64(&p, 3), vec![1, 2, 5]);
        assert_eq!(read_i64(&p, 4), vec![30, 30, 6]);
    }

    #[test]
    fn sort_agg_rejects_unsorted() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![2, 1]));
        put(&mut p, 2, BufferData::I64(vec![0, 0]));
        out(&mut p, 3);
        out(&mut p, 4);
        assert!(sort_agg(&mut p, &[b(1), b(2), b(3), b(4)], &[0]).is_err());
    }
}
