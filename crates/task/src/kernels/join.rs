//! `HASH_BUILD`, `HASH_PROBE` and `HASH_PROBE_SEMI` kernels.

use super::{bad_args, input_i64, need_bufs, need_params, write_output};
use crate::hashtable::JoinHashTable;
use adamant_device::buffer::{BufferData, BufferId};
use adamant_device::cost::CostClass;
use adamant_device::error::Result;
use adamant_device::kernel::KernelStats;
use adamant_device::pool::BufferPool;

/// `hash_build` — streams keys (plus payload columns) into a shared
/// device-resident join table.
///
/// Buffers `[keys, payload_0.., table]`, params `[payload_cols]`. The table
/// buffer must already hold a [`JoinHashTable`] with matching payload
/// column count. Accumulates across chunks (pipeline breaker).
pub fn hash_build(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_params("hash_build", params, 1)?;
    let payload_cols = params[0] as usize;
    need_bufs("hash_build", bufs, 2 + payload_cols)?;
    let table_id = bufs[1 + payload_cols];

    let mut table_buf = pool.take(table_id)?;
    let result = (|| -> Result<KernelStats> {
        let table = table_buf
            .data
            .as_generic_mut::<JoinHashTable>()
            .ok_or_else(|| bad_args("hash_build", "table buffer does not hold a JoinHashTable"))?;
        if table.payload_cols() != payload_cols {
            return Err(bad_args(
                "hash_build",
                format!(
                    "table has {} payload columns, call supplies {payload_cols}",
                    table.payload_cols()
                ),
            ));
        }
        let keys = input_i64(pool, "hash_build", bufs[0])?;
        let mut payload_refs = Vec::with_capacity(payload_cols);
        for i in 0..payload_cols {
            let col = input_i64(pool, "hash_build", bufs[1 + i])?;
            if col.len() != keys.len() {
                return Err(bad_args("hash_build", "payload length mismatch"));
            }
            payload_refs.push(col);
        }
        let mut row = vec![0i64; payload_cols];
        for (i, &key) in keys.iter().enumerate() {
            for (c, col) in payload_refs.iter().enumerate() {
                row[c] = col[i];
            }
            table.insert(key, &row);
        }
        Ok(KernelStats::new(keys.len() as u64, CostClass::HashBuild))
    })();
    pool.restore(table_id, table_buf)?;
    result
}

/// `hash_probe` — inner-join probe.
///
/// Buffers `[keys, table, out_probe_pos, out_payload_0..]`, params
/// `[payload_outs]`. For every probe row `i` and every matching build entry,
/// emits `i` into `out_probe_pos` (chunk-relative) and the entry's payload
/// values into the payload outputs. Multi-match keys emit one row per match.
pub fn hash_probe(pool: &mut BufferPool, bufs: &[BufferId], params: &[i64]) -> Result<KernelStats> {
    need_params("hash_probe", params, 1)?;
    let payload_outs = params[0] as usize;
    need_bufs("hash_probe", bufs, 3 + payload_outs)?;
    let keys = input_i64(pool, "hash_probe", bufs[0])?;
    let table_buf = pool.get(bufs[1])?;
    let table = table_buf
        .data
        .as_generic::<JoinHashTable>()
        .ok_or_else(|| bad_args("hash_probe", "table buffer does not hold a JoinHashTable"))?;
    if table.payload_cols() < payload_outs {
        return Err(bad_args(
            "hash_probe",
            format!(
                "table has {} payload columns, call requests {payload_outs}",
                table.payload_cols()
            ),
        ));
    }
    let mut probe_pos: Vec<u32> = Vec::new();
    let mut payload_out: Vec<Vec<i64>> = vec![Vec::new(); payload_outs];
    let mut slots = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        slots.clear();
        table.probe_into(key, &mut slots);
        for &slot in &slots {
            probe_pos.push(i as u32);
            for (c, out) in payload_out.iter_mut().enumerate() {
                out.push(table.payload(c, slot));
            }
        }
    }
    let n = keys.len() as u64;
    write_output(pool, bufs[2], BufferData::U32(probe_pos))?;
    for (c, col) in payload_out.into_iter().enumerate() {
        write_output(pool, bufs[3 + c], BufferData::I64(col))?;
    }
    Ok(KernelStats::new(n, CostClass::HashProbe))
}

/// `hash_probe_semi` — EXISTS probe producing a bitmap over the probe rows
/// (Q4's subquery).
///
/// Buffers `[keys, table, out_bitmap]`.
pub fn hash_probe_semi(
    pool: &mut BufferPool,
    bufs: &[BufferId],
    _params: &[i64],
) -> Result<KernelStats> {
    need_bufs("hash_probe_semi", bufs, 3)?;
    let keys = input_i64(pool, "hash_probe_semi", bufs[0])?;
    let table_buf = pool.get(bufs[1])?;
    let table = table_buf
        .data
        .as_generic::<JoinHashTable>()
        .ok_or_else(|| {
            bad_args(
                "hash_probe_semi",
                "table buffer does not hold a JoinHashTable",
            )
        })?;
    let n = keys.len();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (i, &key) in keys.iter().enumerate() {
        if table.contains(key) {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    write_output(pool, bufs[2], BufferData::BitWords(words))?;
    Ok(KernelStats::new(n as u64, CostClass::HashProbe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::*;
    use adamant_device::buffer::Buffer;
    use adamant_device::sdk::SdkRepr;

    fn put_join_table(p: &mut adamant_device::pool::BufferPool, id: u64, payload_cols: usize) {
        p.insert(
            b(id),
            Buffer {
                data: BufferData::Generic(Box::new(JoinHashTable::with_capacity(16, payload_cols))),
                repr: SdkRepr::HostVec,
                pinned: false,
                reserved_bytes: 0,
            },
        )
        .unwrap();
    }

    #[test]
    fn build_then_probe_inner() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![10, 20, 10]));
        put(&mut p, 2, BufferData::I64(vec![100, 200, 101])); // payload rows
        put_join_table(&mut p, 3, 1);
        let stats = hash_build(&mut p, &[b(1), b(2), b(3)], &[1]).unwrap();
        assert_eq!(stats.elements, 3);

        put(&mut p, 4, BufferData::I64(vec![20, 10, 99]));
        out(&mut p, 5);
        out(&mut p, 6);
        hash_probe(&mut p, &[b(4), b(3), b(5), b(6)], &[1]).unwrap();
        let pos = read_u32(&p, 5);
        let pay = read_i64(&p, 6);
        // Probe row 0 (key 20) -> one match (200); probe row 1 (key 10) ->
        // two matches (100, 101); key 99 -> none.
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0], 0);
        assert_eq!(&pos[1..], &[1, 1]);
        assert_eq!(pay[0], 200);
        let mut two: Vec<i64> = pay[1..].to_vec();
        two.sort_unstable();
        assert_eq!(two, vec![100, 101]);
    }

    #[test]
    fn build_accumulates_across_chunks() {
        let mut p = pool();
        put_join_table(&mut p, 3, 0);
        put(&mut p, 1, BufferData::I64(vec![1, 2]));
        hash_build(&mut p, &[b(1), b(3)], &[0]).unwrap();
        put(&mut p, 2, BufferData::I64(vec![3]));
        hash_build(&mut p, &[b(2), b(3)], &[0]).unwrap();
        let buf = p.get(b(3)).unwrap();
        let t = buf.data.as_generic::<JoinHashTable>().unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains(3));
    }

    #[test]
    fn semi_probe_bitmap() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![5, 6]));
        put_join_table(&mut p, 2, 0);
        hash_build(&mut p, &[b(1), b(2)], &[0]).unwrap();
        put(&mut p, 3, BufferData::I64(vec![6, 7, 5, 5]));
        out(&mut p, 4);
        hash_probe_semi(&mut p, &[b(3), b(2), b(4)], &[]).unwrap();
        assert_eq!(read_words(&p, 4), vec![0b1101]);
    }

    #[test]
    fn errors() {
        let mut p = pool();
        put(&mut p, 1, BufferData::I64(vec![1]));
        put(&mut p, 2, BufferData::I64(vec![9])); // not a table
        out(&mut p, 3);
        assert!(hash_build(&mut p, &[b(1), b(2)], &[0]).is_err());
        assert!(hash_probe(&mut p, &[b(1), b(2), b(3)], &[0]).is_err());
        assert!(hash_probe_semi(&mut p, &[b(1), b(2), b(3)], &[]).is_err());

        // Payload column count mismatch.
        put_join_table(&mut p, 4, 2);
        assert!(hash_build(&mut p, &[b(1), b(4)], &[0]).is_err());
        // Probe requesting more payload outs than the table has.
        out(&mut p, 5);
        assert!(hash_probe(&mut p, &[b(1), b(4), b(3), b(5), b(5)], &[3]).is_err());
    }
}
