//! # adamant-task
//!
//! The **task layer** of ADAMANT (paper §III-B): it encapsulates multiple
//! implementations of each database *primitive* behind fixed functional
//! signatures, so any SDK's implementation can be plugged in and freely
//! combined with others.
//!
//! * [`primitive::PrimitiveKind`] — the primitive definitions of Table I
//!   (plus documented extensions), with their I/O signatures.
//! * [`semantics::DataSemantic`] — the I/O semantics (`NUMERIC`, `BITMAP`,
//!   `POSITION`, `PREFIX_SUM`, `HASH_TABLE`, `GENERIC`).
//! * [`kernels`] — the reference kernel implementations (they run on every
//!   simulated SDK; per-SDK *performance* differences come from the device
//!   cost models, per-SDK *variants* can be registered alongside).
//! * [`registry::TaskRegistry`] — the kernel/data containers keyed by
//!   `(primitive, SDK)`, consulted by the runtime when binding a plan.
//! * [`hashtable`] — device-resident join and aggregation hash tables
//!   (open addressing, linear probing, as in the paper's §V-A).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod container;
pub mod hashtable;
pub mod kernels;
pub mod params;
pub mod primitive;
pub mod registry;
pub mod semantics;

pub use container::{DataContainer, KernelContainer};
pub use hashtable::{AggHashTable, JoinHashTable};
pub use params::{AggFunc, BitmapOp, CmpOp, MapOp};
pub use primitive::{PrimitiveKind, PrimitiveSignature};
pub use registry::TaskRegistry;
pub use semantics::DataSemantic;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::container::{DataContainer, KernelContainer};
    pub use crate::hashtable::{AggHashTable, JoinHashTable};
    pub use crate::params::{AggFunc, BitmapOp, CmpOp, MapOp};
    pub use crate::primitive::{PrimitiveKind, PrimitiveSignature};
    pub use crate::registry::TaskRegistry;
    pub use crate::semantics::DataSemantic;
}
