//! The task registry: implementations keyed by `(primitive, SDK)`.

use crate::container::{KernelContainer, DEFAULT_VARIANT};
use crate::kernels;
use crate::primitive::PrimitiveKind;
use adamant_device::device::Device;
use adamant_device::error::Result;
use adamant_device::kernel::KernelFn;
use adamant_device::sdk::SdkKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Holds every registered kernel implementation.
///
/// The runtime resolves `(primitive, device SDK)` here when binding a plan;
/// [`TaskRegistry::install_on`] pushes the matching containers into a device
/// via its `prepare_kernel` interface ("our system compiles all the
/// pre-existing kernels during initialization").
#[derive(Default)]
pub struct TaskRegistry {
    containers: HashMap<(PrimitiveKind, SdkKind), Vec<KernelContainer>>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TaskRegistry::default()
    }

    /// A registry pre-populated with the reference implementation of every
    /// primitive for each given SDK, plus the demonstration variants
    /// (`map@blocked`, `filter_bitmap@branchless`).
    pub fn with_defaults(sdks: &[SdkKind]) -> Self {
        let mut reg = TaskRegistry::new();
        for &sdk in sdks {
            reg.register_defaults_for(sdk);
        }
        reg
    }

    /// Registers the reference implementations for one SDK. This is what a
    /// driver author calls after plugging a new SDK whose kernels follow the
    /// standard signatures.
    pub fn register_defaults_for(&mut self, sdk: SdkKind) {
        use PrimitiveKind::*;
        let defaults: [(PrimitiveKind, KernelFn); 18] = [
            (Map, Arc::new(kernels::map::map)),
            (BitmapOp, Arc::new(kernels::map::bitmap_op)),
            (FilterBitmap, Arc::new(kernels::filter::filter_bitmap)),
            (
                FilterBitmapCol,
                Arc::new(kernels::filter::filter_bitmap_col),
            ),
            (FilterPosition, Arc::new(kernels::filter::filter_position)),
            (Materialize, Arc::new(kernels::materialize::materialize)),
            (
                MaterializePosition,
                Arc::new(kernels::materialize::materialize_position),
            ),
            (PrefixSum, Arc::new(kernels::prefix::prefix_sum)),
            (AggBlock, Arc::new(kernels::agg::agg_block)),
            (HashAgg, Arc::new(kernels::agg::hash_agg)),
            (SortAgg, Arc::new(kernels::agg::sort_agg)),
            (HashBuild, Arc::new(kernels::join::hash_build)),
            (HashProbe, Arc::new(kernels::join::hash_probe)),
            (HashProbeSemi, Arc::new(kernels::join::hash_probe_semi)),
            (Sort, Arc::new(kernels::sort::sort)),
            (AggExport, Arc::new(kernels::agg::agg_export)),
            (Fused, Arc::new(kernels::fused::fused)),
            (FusedAgg, Arc::new(kernels::fused::fused_agg)),
        ];
        for (kind, entry) in defaults {
            self.register(KernelContainer::builtin(kind, sdk, entry));
        }
        // Demonstration variants: alternative implementations of the same
        // primitive, selectable per plan node.
        self.register(KernelContainer::variant(
            Map,
            sdk,
            "blocked",
            Arc::new(kernels::map::map_blocked),
        ));
        self.register(KernelContainer::variant(
            FilterBitmap,
            sdk,
            "branchless",
            Arc::new(kernels::filter::filter_bitmap_branchless),
        ));
    }

    /// Registers a container (new SDKs, new variants, user kernels).
    pub fn register(&mut self, container: KernelContainer) {
        self.containers
            .entry((container.primitive, container.sdk))
            .or_default()
            .push(container);
    }

    /// Resolves an implementation. `variant = None` selects the default.
    pub fn resolve(
        &self,
        primitive: PrimitiveKind,
        sdk: SdkKind,
        variant: Option<&str>,
    ) -> Option<&KernelContainer> {
        let variant = variant.unwrap_or(DEFAULT_VARIANT);
        self.containers
            .get(&(primitive, sdk))?
            .iter()
            .find(|c| c.variant == variant)
    }

    /// All containers registered for an SDK.
    pub fn containers_for(&self, sdk: SdkKind) -> Vec<&KernelContainer> {
        let mut out: Vec<&KernelContainer> = self
            .containers
            .iter()
            .filter(|((_, s), _)| *s == sdk)
            .flat_map(|(_, v)| v)
            .collect();
        out.sort_by_key(|c| (c.primitive.kernel_name(), c.variant.clone()));
        out
    }

    /// Binds every container matching the device's SDK onto the device.
    /// Returns the number of kernels installed.
    pub fn install_on(&self, device: &mut dyn Device) -> Result<usize> {
        let sdk = device.info().sdk;
        let mut count = 0;
        for container in self.containers_for(sdk) {
            device.prepare_kernel(&container.kernel_name(), container.kernel_source())?;
            count += 1;
        }
        Ok(count)
    }

    /// Total number of registered containers.
    pub fn len(&self) -> usize {
        self.containers.values().map(|v| v.len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::device::DeviceId;
    use adamant_device::profiles::DeviceProfile;

    #[test]
    fn defaults_cover_all_primitives() {
        let reg = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::OpenCl]);
        for kind in PrimitiveKind::ALL {
            assert!(
                reg.resolve(kind, SdkKind::Cuda, None).is_some(),
                "missing {kind} for cuda"
            );
            assert!(
                reg.resolve(kind, SdkKind::OpenCl, None).is_some(),
                "missing {kind} for opencl"
            );
        }
        // 18 defaults + 2 variants per SDK.
        assert_eq!(reg.len(), 2 * 20);
    }

    #[test]
    fn variant_resolution() {
        let reg = TaskRegistry::with_defaults(&[SdkKind::OpenMp]);
        let v = reg
            .resolve(
                PrimitiveKind::FilterBitmap,
                SdkKind::OpenMp,
                Some("branchless"),
            )
            .unwrap();
        assert_eq!(v.kernel_name(), "filter_bitmap@branchless");
        assert!(reg
            .resolve(PrimitiveKind::FilterBitmap, SdkKind::OpenMp, Some("nope"))
            .is_none());
        assert!(reg
            .resolve(PrimitiveKind::FilterBitmap, SdkKind::Cuda, None)
            .is_none());
    }

    #[test]
    fn install_on_device() {
        let reg = TaskRegistry::with_defaults(&[SdkKind::Cuda]);
        let mut dev = DeviceProfile::cuda_rtx2080ti().build(DeviceId(0));
        let installed = reg.install_on(&mut dev).unwrap();
        assert_eq!(installed, 20);
        assert!(dev.kernel_names().contains(&"hash_probe"));
        assert!(dev.kernel_names().contains(&"map@blocked"));
    }

    #[test]
    fn install_skips_foreign_sdk() {
        let reg = TaskRegistry::with_defaults(&[SdkKind::OpenCl]);
        let mut dev = DeviceProfile::cuda_rtx2080ti().build(DeviceId(0));
        assert_eq!(reg.install_on(&mut dev).unwrap(), 0);
    }
}
