//! Randomized tests: the device-resident hash tables against `std` oracles.
//!
//! Driven by the workspace's deterministic [`Rng`] — every case is seeded,
//! so a failure reproduces exactly without a stored regression corpus.

use adamant_storage::rng::Rng;
use adamant_task::hashtable::{AggHashTable, JoinHashTable};
use adamant_task::params::AggFunc;
use std::collections::HashMap;

const CASES: u64 = 64;

/// JoinHashTable probe returns exactly the multiset of payloads the
/// key was inserted with, regardless of growth/collisions.
#[test]
fn join_table_matches_multimap() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x70AB_1E00 + case);
        let n_entries = rng.gen_range(0usize..600);
        let entries: Vec<(i64, i64)> = (0..n_entries)
            .map(|_| (rng.gen_range(0i64..200), rng.gen_range(-1000i64..1000)))
            .collect();
        let n_probes = rng.gen_range(0usize..100);
        let probes: Vec<i64> = (0..n_probes).map(|_| rng.gen_range(0i64..300)).collect();

        let mut table = JoinHashTable::with_capacity(4, 1); // force growth
        let mut oracle: HashMap<i64, Vec<i64>> = HashMap::new();
        for (k, v) in &entries {
            table.insert(*k, &[*v]);
            oracle.entry(*k).or_default().push(*v);
        }
        assert_eq!(table.len(), entries.len());
        let mut slots = Vec::new();
        for &k in &probes {
            slots.clear();
            table.probe_into(k, &mut slots);
            let mut got: Vec<i64> = slots.iter().map(|&s| table.payload(0, s)).collect();
            got.sort_unstable();
            let mut want = oracle.get(&k).cloned().unwrap_or_default();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
            assert_eq!(table.contains(k), oracle.contains_key(&k));
        }
    }
}

/// AggHashTable matches a std-map group-by for all four aggregates
/// simultaneously, including payload capture semantics.
#[test]
fn agg_table_matches_hashmap() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA66_7AB0 + case);
        let n_rows = rng.gen_range(0usize..800);
        let rows: Vec<(i64, i64)> = (0..n_rows)
            .map(|_| (rng.gen_range(0i64..50), rng.gen_range(-500i64..500)))
            .collect();

        let mut table = AggHashTable::with_capacity(
            2, // force growth
            vec![AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max],
            1,
        );
        #[derive(Default, Clone)]
        struct Acc {
            sum: i64,
            count: i64,
            min: i64,
            max: i64,
            payload: i64,
        }
        let mut oracle: HashMap<i64, Acc> = HashMap::new();
        for (k, v) in &rows {
            table.update(*k, &[*k * 3], &[*v, 0, *v, *v]);
            let e = oracle.entry(*k).or_insert(Acc {
                min: i64::MAX,
                max: i64::MIN,
                payload: *k * 3,
                ..Default::default()
            });
            e.sum += v;
            e.count += 1;
            e.min = e.min.min(*v);
            e.max = e.max.max(*v);
        }
        assert_eq!(table.group_count(), oracle.len());
        let (keys, payloads, states) = table.export();
        for (i, k) in keys.iter().enumerate() {
            let o = &oracle[k];
            assert_eq!(states[0][i], o.sum);
            assert_eq!(states[1][i], o.count);
            assert_eq!(states[2][i], o.min);
            assert_eq!(states[3][i], o.max);
            assert_eq!(payloads[0][i], o.payload);
        }
    }
}

/// Group keys export in first-seen order.
#[test]
fn agg_table_first_seen_order() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xF125_75EE + case);
        let n_keys = rng.gen_range(0usize..300);
        let keys: Vec<i64> = (0..n_keys).map(|_| rng.gen_range(0i64..30)).collect();

        let mut table = AggHashTable::with_capacity(4, vec![AggFunc::Count], 0);
        let mut first_seen = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            table.update(k, &[], &[0]);
            if seen.insert(k) {
                first_seen.push(k);
            }
        }
        assert_eq!(table.group_keys(), &first_seen[..]);
    }
}
