//! Property tests: the device-resident hash tables against `std` oracles.

use adamant_task::hashtable::{AggHashTable, JoinHashTable};
use adamant_task::params::AggFunc;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// JoinHashTable probe returns exactly the multiset of payloads the
    /// key was inserted with, regardless of growth/collisions.
    #[test]
    fn join_table_matches_multimap(
        entries in prop::collection::vec((0i64..200, -1000i64..1000), 0..600),
        probes in prop::collection::vec(0i64..300, 0..100),
    ) {
        let mut table = JoinHashTable::with_capacity(4, 1); // force growth
        let mut oracle: HashMap<i64, Vec<i64>> = HashMap::new();
        for (k, v) in &entries {
            table.insert(*k, &[*v]);
            oracle.entry(*k).or_default().push(*v);
        }
        prop_assert_eq!(table.len(), entries.len());
        let mut slots = Vec::new();
        for &k in &probes {
            slots.clear();
            table.probe_into(k, &mut slots);
            let mut got: Vec<i64> = slots.iter().map(|&s| table.payload(0, s)).collect();
            got.sort_unstable();
            let mut want = oracle.get(&k).cloned().unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(got, want, "key {}", k);
            prop_assert_eq!(table.contains(k), oracle.contains_key(&k));
        }
    }

    /// AggHashTable matches a std-map group-by for all four aggregates
    /// simultaneously, including payload capture semantics.
    #[test]
    fn agg_table_matches_hashmap(
        rows in prop::collection::vec((0i64..50, -500i64..500), 0..800),
    ) {
        let mut table = AggHashTable::with_capacity(
            2, // force growth
            vec![AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max],
            1,
        );
        #[derive(Default, Clone)]
        struct Acc { sum: i64, count: i64, min: i64, max: i64, payload: i64 }
        let mut oracle: HashMap<i64, Acc> = HashMap::new();
        for (k, v) in &rows {
            table.update(*k, &[*k * 3], &[*v, 0, *v, *v]);
            let e = oracle.entry(*k).or_insert(Acc {
                min: i64::MAX,
                max: i64::MIN,
                payload: *k * 3,
                ..Default::default()
            });
            e.sum += v;
            e.count += 1;
            e.min = e.min.min(*v);
            e.max = e.max.max(*v);
        }
        prop_assert_eq!(table.group_count(), oracle.len());
        let (keys, payloads, states) = table.export();
        for (i, k) in keys.iter().enumerate() {
            let o = &oracle[k];
            prop_assert_eq!(states[0][i], o.sum);
            prop_assert_eq!(states[1][i], o.count);
            prop_assert_eq!(states[2][i], o.min);
            prop_assert_eq!(states[3][i], o.max);
            prop_assert_eq!(payloads[0][i], o.payload);
        }
    }

    /// Group keys export in first-seen order.
    #[test]
    fn agg_table_first_seen_order(keys in prop::collection::vec(0i64..30, 0..300)) {
        let mut table = AggHashTable::with_capacity(4, vec![AggFunc::Count], 0);
        let mut first_seen = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            table.update(k, &[], &[0]);
            if seen.insert(k) {
                first_seen.push(k);
            }
        }
        prop_assert_eq!(table.group_keys(), &first_seen[..]);
    }
}
