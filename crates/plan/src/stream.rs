//! Lowering relational operations to primitive graphs.
//!
//! [`PlanBuilder`] owns the underlying `GraphBuilder`; [`Stream`] tracks one
//! scan's lowering state — which columns exist in the *raw* domain, the
//! chain of selection bitmaps and join position lists that map raw rows to
//! the current row domain, and a cache of already-materialized columns.
//! Late materialization falls out naturally: a column is only pushed
//! through `MATERIALIZE`/`MATERIALIZE_POSITION` when something consumes it.

use crate::expr::{Expr, Predicate};
use adamant_core::error::{ExecError, Result};
use adamant_core::graph::{DataRef, GraphBuilder, NodeParams, PrimitiveGraph};
use adamant_device::device::DeviceId;
use adamant_task::params::{AggFunc, BitmapOp, MapOp};
use adamant_task::primitive::PrimitiveKind;
use std::collections::BTreeMap;

/// One link in a stream's row-domain chain.
#[derive(Clone, Copy, Debug)]
enum Link {
    /// A selection bitmap: apply with `MATERIALIZE`.
    Sel(DataRef),
    /// A join position list: apply with `MATERIALIZE_POSITION`.
    Pos(DataRef),
}

/// Builds a primitive graph from relational operations.
#[derive(Debug)]
pub struct PlanBuilder {
    gb: GraphBuilder,
    device: DeviceId,
    counter: usize,
}

impl PlanBuilder {
    /// Creates a builder targeting one device (per-node overrides via
    /// [`PlanBuilder::graph_mut`]).
    pub fn new(device: DeviceId) -> Self {
        PlanBuilder {
            gb: GraphBuilder::new(),
            device,
            counter: 0,
        }
    }

    fn label(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}#{}", self.counter)
    }

    /// Starts a stream over `table`, registering its columns as chunked
    /// scan inputs. Input binding names are the bare column names.
    pub fn scan(&mut self, table: impl Into<String>, columns: &[&str]) -> Stream {
        let table = table.into();
        let mut cols = BTreeMap::new();
        for &c in columns {
            let r = self.gb.scan_input(table.clone(), c);
            cols.insert(c.to_string(), (r, 0usize));
        }
        Stream {
            scan: table,
            cols,
            chain: Vec::new(),
            cache: BTreeMap::new(),
        }
    }

    /// Block aggregation (no grouping): returns the accumulator ref
    /// (`[state, rows]`).
    pub fn agg_block(&mut self, input: DataRef, agg: AggFunc, label: &str) -> DataRef {
        let label = format!("{label}:{}", self.label("agg_block"));
        self.gb
            .add(
                PrimitiveKind::AggBlock,
                NodeParams::AggBlock { agg },
                vec![input],
                1,
                self.device,
                label,
            )
            .remove(0)
    }

    /// Exports an aggregation hash table's dense columns.
    pub fn group_result(
        &mut self,
        table: DataRef,
        payload_cols: usize,
        agg_count: usize,
    ) -> GroupResult {
        let label = self.label("agg_export");
        let outs = self.gb.add(
            PrimitiveKind::AggExport,
            NodeParams::AggExport {
                payload_cols,
                agg_count,
            },
            vec![table],
            1 + payload_cols + agg_count,
            self.device,
            label,
        );
        GroupResult {
            keys: outs[0],
            payloads: outs[1..1 + payload_cols].to_vec(),
            states: outs[1 + payload_cols..].to_vec(),
        }
    }

    /// Sorts by the given key columns (`true` = descending); returns the
    /// permutation (a `POSITION` list usable with [`PlanBuilder::take`]).
    pub fn sort(&mut self, keys: &[(DataRef, bool)]) -> DataRef {
        let desc_mask = keys
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, (_, d))| m | ((*d as u64) << i));
        let inputs: Vec<DataRef> = keys.iter().map(|(r, _)| *r).collect();
        let label = self.label("sort");
        self.gb
            .add(
                PrimitiveKind::Sort,
                NodeParams::Sort { desc_mask },
                inputs,
                1,
                self.device,
                label,
            )
            .remove(0)
    }

    /// Sort-based aggregation (the paper's `SORT_AGG` path, the
    /// alternative to `HASH_AGG` for materialized group-by inputs): sorts
    /// by `keys`, gathers `vals` through the permutation and reduces the
    /// sorted runs. Returns `(group_keys, aggregates)`.
    pub fn sort_agg(&mut self, keys: DataRef, vals: DataRef, agg: AggFunc) -> (DataRef, DataRef) {
        let perm = self.sort(&[(keys, false)]);
        let sorted_keys = self.take(keys, perm);
        let sorted_vals = self.take(vals, perm);
        let label = self.label("sort_agg");
        let outs = self.gb.add(
            PrimitiveKind::SortAgg,
            NodeParams::SortAgg { agg },
            vec![sorted_keys, sorted_vals],
            2,
            self.device,
            label,
        );
        (outs[0], outs[1])
    }

    /// Exclusive prefix sum with the grand total appended
    /// (`PREFIX_SUM`; pairs with scatter-style materialization).
    pub fn prefix_sum(&mut self, input: DataRef) -> DataRef {
        let label = self.label("prefix_sum");
        self.gb
            .add(
                PrimitiveKind::PrefixSum,
                NodeParams::None,
                vec![input],
                1,
                self.device,
                label,
            )
            .remove(0)
    }

    /// Gathers `values` at `positions` (`MATERIALIZE_POSITION`).
    pub fn take(&mut self, values: DataRef, positions: DataRef) -> DataRef {
        let label = self.label("take");
        self.gb
            .add(
                PrimitiveKind::MaterializePosition,
                NodeParams::None,
                vec![values, positions],
                1,
                self.device,
                label,
            )
            .remove(0)
    }

    /// Declares a named graph output.
    pub fn output(&mut self, name: impl Into<String>, data: DataRef) {
        self.gb.output(name, data);
    }

    /// Direct access to the underlying graph builder (custom primitives,
    /// per-node device overrides).
    pub fn graph_mut(&mut self) -> &mut GraphBuilder {
        &mut self.gb
    }

    /// The target device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Validates and finalizes the primitive graph.
    pub fn build(self) -> Result<PrimitiveGraph> {
        self.gb.build()
    }
}

/// Dense columns exported from a group-by aggregation.
#[derive(Clone, Debug)]
pub struct GroupResult {
    /// Group keys, first-seen order.
    pub keys: DataRef,
    /// Carried payload columns.
    pub payloads: Vec<DataRef>,
    /// Aggregate state columns (one per aggregate function).
    pub states: Vec<DataRef>,
}

/// Lowering state for one scan.
#[derive(Debug)]
pub struct Stream {
    scan: String,
    /// Column name → (ref, index into `chain` from which links still apply).
    cols: BTreeMap<String, (DataRef, usize)>,
    chain: Vec<Link>,
    cache: BTreeMap<String, DataRef>,
}

impl Stream {
    /// The scan this stream reads.
    pub fn scan_name(&self) -> &str {
        &self.scan
    }

    fn raw_col(&self, name: &str) -> Result<DataRef> {
        match self.cols.get(name) {
            Some(&(r, 0)) => Ok(r),
            Some(_) => Err(ExecError::InvalidGraph(format!(
                "column `{name}` is join-derived; project/filter it before the join"
            ))),
            None => Err(ExecError::InvalidGraph(format!(
                "unknown column `{name}` in scan `{}`",
                self.scan
            ))),
        }
    }

    /// Applies a filter predicate. Filters must precede joins (predicate
    /// pushdown — the standard TPC-H shape); the boolean tree is lowered to
    /// `FILTER_BITMAP`/`FILTER_BITMAP_COL` leaves combined by
    /// `BITMAP_OP(And/Or)` chains.
    pub fn filter(&mut self, pb: &mut PlanBuilder, predicate: Predicate) -> Result<()> {
        if !self.chain.is_empty() {
            return Err(ExecError::InvalidGraph(
                "filters must be applied before joins on this stream".into(),
            ));
        }
        let bitmap = self.lower_predicate(pb, &predicate)?;
        if let Some(bm) = bitmap {
            // Merge with an existing selection from a previous filter call.
            let merged = match self.chain.first() {
                Some(Link::Sel(prev)) => {
                    let label = pb.label("and");
                    let out = pb
                        .gb
                        .add(
                            PrimitiveKind::BitmapOp,
                            NodeParams::Bitmap { op: BitmapOp::And },
                            vec![*prev, bm],
                            1,
                            pb.device,
                            label,
                        )
                        .remove(0);
                    self.chain.clear();
                    out
                }
                _ => bm,
            };
            self.chain.push(Link::Sel(merged));
            self.cache.clear();
        }
        Ok(())
    }

    /// Recursively lowers a predicate tree to a bitmap ref (`None` for an
    /// empty conjunction/disjunction).
    fn lower_predicate(
        &mut self,
        pb: &mut PlanBuilder,
        predicate: &Predicate,
    ) -> Result<Option<DataRef>> {
        let combine = |pb: &mut PlanBuilder, op: BitmapOp, a: DataRef, b: DataRef| {
            let label = pb.label(if op == BitmapOp::And { "and" } else { "or" });
            pb.gb
                .add(
                    PrimitiveKind::BitmapOp,
                    NodeParams::Bitmap { op },
                    vec![a, b],
                    1,
                    pb.device,
                    label,
                )
                .remove(0)
        };
        match predicate {
            Predicate::Cmp {
                col,
                cmp,
                value,
                hi,
            } => {
                let input = self.raw_col(col)?;
                let label = format!("filter({col}):{}", pb.label("f"));
                Ok(Some(
                    pb.gb
                        .add(
                            PrimitiveKind::FilterBitmap,
                            NodeParams::Filter {
                                cmp: *cmp,
                                value: *value,
                                hi: *hi,
                            },
                            vec![input],
                            1,
                            pb.device,
                            label,
                        )
                        .remove(0),
                ))
            }
            Predicate::CmpCols { left, cmp, right } => {
                let a = self.raw_col(left)?;
                let b = self.raw_col(right)?;
                let label = format!("filter({left},{right}):{}", pb.label("f"));
                Ok(Some(
                    pb.gb
                        .add(
                            PrimitiveKind::FilterBitmapCol,
                            NodeParams::FilterCol { cmp: *cmp },
                            vec![a, b],
                            1,
                            pb.device,
                            label,
                        )
                        .remove(0),
                ))
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                let op = if matches!(predicate, Predicate::And(_)) {
                    BitmapOp::And
                } else {
                    BitmapOp::Or
                };
                let mut acc: Option<DataRef> = None;
                for p in ps {
                    if let Some(bm) = self.lower_predicate(pb, p)? {
                        acc = Some(match acc {
                            None => bm,
                            Some(prev) => combine(pb, op, prev, bm),
                        });
                    }
                }
                Ok(acc)
            }
        }
    }

    /// Projects a derived column computed element-wise.
    ///
    /// When every referenced column is still in the raw scan domain the
    /// expression is computed there (late materialization — selections
    /// apply when the result is consumed, the paper's Q6 shape). When any
    /// referenced column is join-derived, all inputs are materialized into
    /// the current row domain first and the result lives there.
    pub fn project(&mut self, pb: &mut PlanBuilder, name: &str, expr: Expr) -> Result<()> {
        let all_raw = expr
            .columns()
            .iter()
            .all(|c| matches!(self.cols.get(*c), Some(&(_, 0))));
        if all_raw {
            let r = self.lower_expr(pb, &expr)?;
            self.cols.insert(name.to_string(), (r, 0));
        } else {
            let r = self.lower_expr_current(pb, &expr)?;
            let upto = self.chain.len();
            self.cols.insert(name.to_string(), (r, upto));
            self.cache.insert(name.to_string(), r);
        }
        Ok(())
    }

    /// Lowers an expression with every column materialized into the
    /// current row domain.
    fn lower_expr_current(&mut self, pb: &mut PlanBuilder, expr: &Expr) -> Result<DataRef> {
        // Materialize the referenced columns first, then rewrite the
        // expression against temporary names bound to those refs.
        match expr {
            Expr::Col(c) => self.materialized(pb, c),
            Expr::Lit(_) => Err(ExecError::InvalidGraph(
                "a bare literal is not a column expression".into(),
            )),
            Expr::Add(a, b) => self.lower_binary_current(pb, a, b, MapOp::Add),
            Expr::Sub(a, b) => self.lower_binary_current(pb, a, b, MapOp::Sub),
            Expr::Mul(a, b) => self.lower_binary_current(pb, a, b, MapOp::Mul),
            Expr::Div(a, b) => self.lower_binary_current(pb, a, b, MapOp::Div),
            Expr::Indicator(a, op, c) => {
                let inner = self.lower_expr_current(pb, a)?;
                let label = pb.label("map");
                Ok(pb
                    .gb
                    .add(
                        PrimitiveKind::Map,
                        NodeParams::Map {
                            op: *op,
                            constant: *c,
                        },
                        vec![inner],
                        1,
                        pb.device,
                        label,
                    )
                    .remove(0))
            }
        }
    }

    fn lower_binary_current(
        &mut self,
        pb: &mut PlanBuilder,
        a: &Expr,
        b: &Expr,
        binary: MapOp,
    ) -> Result<DataRef> {
        let add_map = |pb: &mut PlanBuilder, params: NodeParams, inputs: Vec<DataRef>| {
            let label = pb.label("map");
            pb.gb
                .add(PrimitiveKind::Map, params, inputs, 1, pb.device, label)
                .remove(0)
        };
        let (rhs_const, lhs_const) = match binary {
            MapOp::Add => (MapOp::AddConst, Some(MapOp::AddConst)),
            MapOp::Sub => (MapOp::SubConst, Some(MapOp::RsubConst)),
            MapOp::Mul => (MapOp::MulConst, Some(MapOp::MulConst)),
            MapOp::Div => (MapOp::DivConst, None),
            _ => unreachable!("binary arithmetic only"),
        };
        match (const_of(a), const_of(b)) {
            (None, Some(c)) => {
                let lhs = self.lower_expr_current(pb, a)?;
                Ok(add_map(
                    pb,
                    NodeParams::Map {
                        op: rhs_const,
                        constant: c,
                    },
                    vec![lhs],
                ))
            }
            (Some(c), None) => {
                let rhs = self.lower_expr_current(pb, b)?;
                match lhs_const {
                    Some(op) => Ok(add_map(pb, NodeParams::Map { op, constant: c }, vec![rhs])),
                    None => Err(ExecError::InvalidGraph(
                        "literal-on-left division is not lowerable".into(),
                    )),
                }
            }
            (None, None) => {
                let lhs = self.lower_expr_current(pb, a)?;
                let rhs = self.lower_expr_current(pb, b)?;
                Ok(add_map(
                    pb,
                    NodeParams::Map {
                        op: binary,
                        constant: 0,
                    },
                    vec![lhs, rhs],
                ))
            }
            (Some(_), Some(_)) => Err(ExecError::InvalidGraph(
                "constant-only expressions have no row domain".into(),
            )),
        }
    }

    fn lower_expr(&mut self, pb: &mut PlanBuilder, expr: &Expr) -> Result<DataRef> {
        match expr {
            Expr::Col(c) => self.raw_col(c),
            Expr::Lit(_) => Err(ExecError::InvalidGraph(
                "a bare literal is not a column expression".into(),
            )),
            Expr::Add(a, b) => self.lower_binary(pb, a, b, MapOp::Add, MapOp::AddConst, None),
            Expr::Sub(a, b) => self.lower_binary(
                pb,
                a,
                b,
                MapOp::Sub,
                MapOp::SubConst,
                Some(MapOp::RsubConst),
            ),
            Expr::Mul(a, b) => self.lower_binary(pb, a, b, MapOp::Mul, MapOp::MulConst, None),
            Expr::Div(a, b) => self.lower_binary(pb, a, b, MapOp::Div, MapOp::DivConst, None),
            Expr::Indicator(a, op, c) => {
                let inner = self.lower_expr(pb, a)?;
                let label = pb.label("map");
                Ok(pb
                    .gb
                    .add(
                        PrimitiveKind::Map,
                        NodeParams::Map {
                            op: *op,
                            constant: *c,
                        },
                        vec![inner],
                        1,
                        pb.device,
                        label,
                    )
                    .remove(0))
            }
        }
    }

    fn lower_binary(
        &mut self,
        pb: &mut PlanBuilder,
        a: &Expr,
        b: &Expr,
        binary: MapOp,
        rhs_const: MapOp,
        lhs_const: Option<MapOp>,
    ) -> Result<DataRef> {
        let add_map = |pb: &mut PlanBuilder, params: NodeParams, inputs: Vec<DataRef>| {
            let label = pb.label("map");
            pb.gb
                .add(PrimitiveKind::Map, params, inputs, 1, pb.device, label)
                .remove(0)
        };
        match (const_of(a), const_of(b)) {
            (None, Some(c)) => {
                let lhs = self.lower_expr(pb, a)?;
                Ok(add_map(
                    pb,
                    NodeParams::Map {
                        op: rhs_const,
                        constant: c,
                    },
                    vec![lhs],
                ))
            }
            (Some(c), None) => {
                let rhs = self.lower_expr(pb, b)?;
                match (binary, lhs_const) {
                    // Commutative ops reuse the rhs-const form.
                    (MapOp::Add, _) | (MapOp::Mul, _) => Ok(add_map(
                        pb,
                        NodeParams::Map {
                            op: if binary == MapOp::Add {
                                MapOp::AddConst
                            } else {
                                MapOp::MulConst
                            },
                            constant: c,
                        },
                        vec![rhs],
                    )),
                    (_, Some(op)) => {
                        Ok(add_map(pb, NodeParams::Map { op, constant: c }, vec![rhs]))
                    }
                    _ => Err(ExecError::InvalidGraph(format!(
                        "literal-on-left form of {binary:?} is not lowerable"
                    ))),
                }
            }
            (None, None) => {
                let lhs = self.lower_expr(pb, a)?;
                let rhs = self.lower_expr(pb, b)?;
                Ok(add_map(
                    pb,
                    NodeParams::Map {
                        op: binary,
                        constant: 0,
                    },
                    vec![lhs, rhs],
                ))
            }
            (Some(_), Some(_)) => Err(ExecError::InvalidGraph(
                "constant-only expressions have no row domain".into(),
            )),
        }
    }

    /// The column fully materialized into the current row domain.
    pub fn materialized(&mut self, pb: &mut PlanBuilder, name: &str) -> Result<DataRef> {
        if let Some(&r) = self.cache.get(name) {
            return Ok(r);
        }
        let &(mut r, upto) = self.cols.get(name).ok_or_else(|| {
            ExecError::InvalidGraph(format!("unknown column `{name}` in scan `{}`", self.scan))
        })?;
        let pending: Vec<Link> = self.chain[upto..].to_vec();
        for link in pending {
            r = match link {
                Link::Sel(bm) => {
                    let label = format!("mat({name}):{}", pb.label("m"));
                    pb.gb
                        .add(
                            PrimitiveKind::Materialize,
                            NodeParams::None,
                            vec![r, bm],
                            1,
                            pb.device,
                            label,
                        )
                        .remove(0)
                }
                Link::Pos(pos) => {
                    let label = format!("gather({name}):{}", pb.label("g"));
                    pb.gb
                        .add(
                            PrimitiveKind::MaterializePosition,
                            NodeParams::None,
                            vec![r, pos],
                            1,
                            pb.device,
                            label,
                        )
                        .remove(0)
                }
            };
        }
        self.cache.insert(name.to_string(), r);
        Ok(r)
    }

    /// Builds a join hash table keyed by `key`, materializing the named
    /// payload columns into it. Ends this stream's pipeline (breaker).
    pub fn hash_build(
        &mut self,
        pb: &mut PlanBuilder,
        key: &str,
        payload: &[&str],
        expected: usize,
    ) -> Result<DataRef> {
        let mut inputs = vec![self.materialized(pb, key)?];
        for p in payload {
            inputs.push(self.materialized(pb, p)?);
        }
        let label = format!("hash_build({key}):{}", pb.label("hb"));
        Ok(pb
            .gb
            .add(
                PrimitiveKind::HashBuild,
                NodeParams::HashBuild {
                    payload_cols: payload.len(),
                    expected,
                },
                inputs,
                1,
                pb.device,
                label,
            )
            .remove(0))
    }

    /// Inner-join probe against `table`, pulling `payload_names.len()`
    /// payload columns out of the table into this stream under the given
    /// names. Multi-match keys fan out rows.
    pub fn hash_probe(
        &mut self,
        pb: &mut PlanBuilder,
        key: &str,
        table: DataRef,
        payload_names: &[&str],
    ) -> Result<()> {
        let key_ref = self.materialized(pb, key)?;
        let label = format!("hash_probe({key}):{}", pb.label("hp"));
        let outs = pb.gb.add(
            PrimitiveKind::HashProbe,
            NodeParams::HashProbe {
                payload_outs: payload_names.len(),
            },
            vec![key_ref, table],
            1 + payload_names.len(),
            pb.device,
            label,
        );
        self.chain.push(Link::Pos(outs[0]));
        let upto = self.chain.len();
        for (i, &name) in payload_names.iter().enumerate() {
            self.cols.insert(name.to_string(), (outs[1 + i], upto));
        }
        self.cache.clear();
        Ok(())
    }

    /// EXISTS semi-join: keeps rows whose `key` appears in `table`
    /// (lowered to `HASH_PROBE_SEMI` + a selection link).
    pub fn semi_join(&mut self, pb: &mut PlanBuilder, key: &str, table: DataRef) -> Result<()> {
        let key_ref = self.materialized(pb, key)?;
        let label = format!("semi({key}):{}", pb.label("sj"));
        let bm = pb
            .gb
            .add(
                PrimitiveKind::HashProbeSemi,
                NodeParams::None,
                vec![key_ref, table],
                1,
                pb.device,
                label,
            )
            .remove(0);
        self.chain.push(Link::Sel(bm));
        self.cache.clear();
        Ok(())
    }

    /// Group-by aggregation keyed by `group`, carrying `payload` columns
    /// and computing `aggs` (each `(func, value_column)`; `Count` may use
    /// any column). Returns the `HASH_TABLE` ref. Ends the pipeline.
    pub fn hash_agg(
        &mut self,
        pb: &mut PlanBuilder,
        group: &str,
        payload: &[&str],
        aggs: &[(AggFunc, &str)],
        expected_groups: usize,
    ) -> Result<DataRef> {
        let mut inputs = vec![self.materialized(pb, group)?];
        for p in payload {
            inputs.push(self.materialized(pb, p)?);
        }
        for (_, col) in aggs {
            inputs.push(self.materialized(pb, col)?);
        }
        let label = format!("hash_agg({group}):{}", pb.label("ha"));
        Ok(pb
            .gb
            .add(
                PrimitiveKind::HashAgg,
                NodeParams::HashAgg {
                    payload_cols: payload.len(),
                    aggs: aggs.iter().map(|(f, _)| *f).collect(),
                    expected_groups,
                },
                inputs,
                1,
                pb.device,
                label,
            )
            .remove(0))
    }
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Lit(v) => Some(*v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_core::pipeline::PipelineSet;
    use adamant_task::params::CmpOp;

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    #[test]
    fn q6_shape_lowers_to_one_pipeline() {
        let mut pb = PlanBuilder::new(dev());
        let mut li = pb.scan("lineitem", &["date", "disc", "qty", "price"]);
        li.filter(
            &mut pb,
            Predicate::and(vec![
                Predicate::between("date", 100, 200),
                Predicate::between("disc", 5, 7),
                Predicate::cmp("qty", CmpOp::Lt, 24),
            ]),
        )
        .unwrap();
        li.project(&mut pb, "rev", Expr::col("price").mul(Expr::col("disc")))
            .unwrap();
        let rev = li.materialized(&mut pb, "rev").unwrap();
        let sum = pb.agg_block(rev, AggFunc::Sum, "revenue");
        pb.output("revenue", sum);
        let g = pb.build().unwrap();
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 1, "Q6 is a single pipeline");
        // 3 filters + 2 ands + 1 map + 1 materialize + 1 agg = 8 nodes.
        assert_eq!(g.nodes().len(), 8);
    }

    #[test]
    fn filter_after_join_rejected() {
        let mut pb = PlanBuilder::new(dev());
        let mut build = pb.scan("b", &["k"]);
        let ht = build.hash_build(&mut pb, "k", &[], 16).unwrap();
        let mut probe = pb.scan("p", &["k", "v"]);
        probe.hash_probe(&mut pb, "k", ht, &[]).unwrap();
        let err = probe
            .filter(&mut pb, Predicate::cmp("v", CmpOp::Lt, 5))
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidGraph(_)));
    }

    #[test]
    fn unknown_column_rejected() {
        let mut pb = PlanBuilder::new(dev());
        let mut s = pb.scan("t", &["x"]);
        assert!(s.materialized(&mut pb, "nope").is_err());
        assert!(s
            .filter(&mut pb, Predicate::cmp("nope", CmpOp::Eq, 1))
            .is_err());
    }

    #[test]
    fn expr_lowering_const_forms() {
        let mut pb = PlanBuilder::new(dev());
        let mut s = pb.scan("t", &["x", "y"]);
        // 100 - x (literal on the left of Sub -> RsubConst)
        s.project(&mut pb, "a", Expr::lit(100).sub(Expr::col("x")))
            .unwrap();
        // x * 3 and 3 * x both lower.
        s.project(&mut pb, "b", Expr::col("x").mul(Expr::lit(3)))
            .unwrap();
        s.project(&mut pb, "c", Expr::lit(3).mul(Expr::col("x")))
            .unwrap();
        // x + y binary.
        s.project(&mut pb, "d", Expr::col("x").add(Expr::col("y")))
            .unwrap();
        // Nested: (100 - x) * y.
        s.project(
            &mut pb,
            "e",
            Expr::lit(100).sub(Expr::col("x")).mul(Expr::col("y")),
        )
        .unwrap();
        // Constant-only rejected.
        assert!(s
            .project(&mut pb, "f", Expr::lit(1).add(Expr::lit(2)))
            .is_err());
        // Bare literal rejected.
        assert!(s.project(&mut pb, "g", Expr::lit(1)).is_err());
        let r = s.materialized(&mut pb, "e").unwrap();
        pb.output("e", r);
        assert!(pb.build().is_ok());
    }

    #[test]
    fn materialization_cache_reuses_nodes() {
        let mut pb = PlanBuilder::new(dev());
        let mut s = pb.scan("t", &["x"]);
        s.filter(&mut pb, Predicate::cmp("x", CmpOp::Gt, 0))
            .unwrap();
        let a = s.materialized(&mut pb, "x").unwrap();
        let b = s.materialized(&mut pb, "x").unwrap();
        assert_eq!(a, b, "second materialization hits the cache");
    }

    #[test]
    fn sort_agg_path_builds() {
        // hash_agg and sort_agg are alternative aggregation strategies over
        // the same inputs; both must lower to valid graphs.
        let mut pb = PlanBuilder::new(dev());
        let mut s = pb.scan("t", &["k", "v"]);
        let k = s.materialized(&mut pb, "k").unwrap();
        let v = s.materialized(&mut pb, "v").unwrap();
        let (gk, ga) = pb.sort_agg(k, v, AggFunc::Sum);
        pb.output("keys", gk);
        pb.output("sums", ga);
        let g = pb.build().unwrap();
        // sort + 2 takes + sort_agg = 4 nodes.
        assert_eq!(g.nodes().len(), 4);
    }

    #[test]
    fn prefix_sum_builds() {
        let mut pb = PlanBuilder::new(dev());
        let mut s = pb.scan("t", &["x"]);
        let x = s.materialized(&mut pb, "x").unwrap();
        let px = pb.prefix_sum(x);
        pb.output("px", px);
        assert!(pb.build().is_ok());
    }

    #[test]
    fn join_chain_materializes_through_positions() {
        let mut pb = PlanBuilder::new(dev());
        let mut build = pb.scan("b", &["bk", "bv"]);
        let ht = build.hash_build(&mut pb, "bk", &["bv"], 8).unwrap();
        let mut probe = pb.scan("p", &["pk", "pv"]);
        probe
            .filter(&mut pb, Predicate::cmp("pv", CmpOp::Gt, 0))
            .unwrap();
        probe.hash_probe(&mut pb, "pk", ht, &["bv"]).unwrap();
        // bv is already in the joined domain; pv needs sel + positions.
        let bv = probe.materialized(&mut pb, "bv").unwrap();
        let pv = probe.materialized(&mut pb, "pv").unwrap();
        pb.output("bv", bv);
        pb.output("pv", pv);
        let g = pb.build().unwrap();
        // pv path: materialize (sel) for probe key, then another for pv,
        // then gather by positions. Just validate it builds & splits.
        let ps = PipelineSet::split(&g).unwrap();
        assert_eq!(ps.len(), 2);
    }
}
