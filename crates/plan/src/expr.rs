//! Scalar expressions and predicates over scan columns.

use adamant_task::params::{CmpOp, MapOp};

/// An arithmetic expression over columns and integer literals.
///
/// Expressions are evaluated element-wise by lowering to `MAP` primitives;
/// fixed-point decimal arithmetic is expressed with scaled integers as in
/// the paper's all-integer evaluation (e.g. `1 - discount` becomes
/// `100 - disc_pct`).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A scan (or projected) column by name.
    Col(String),
    /// An integer literal.
    Lit(i64),
    /// `left + right`.
    Add(Box<Expr>, Box<Expr>),
    /// `left - right`.
    Sub(Box<Expr>, Box<Expr>),
    /// `left * right`.
    Mul(Box<Expr>, Box<Expr>),
    /// `left / right` (guarded: x/0 = 0).
    Div(Box<Expr>, Box<Expr>),
    /// `(inner <op> constant) as 0/1` — indicator for CASE-style
    /// conditional aggregation (`sum(case when … then 1 else 0 end)`).
    Indicator(Box<Expr>, MapOp, i64),
}

#[allow(clippy::should_implement_trait)] // DSL builders named after SQL ops
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `(self == c) as 0/1`.
    pub fn eq_const(self, c: i64) -> Expr {
        Expr::Indicator(Box::new(self), MapOp::EqConst, c)
    }

    /// `(self < c) as 0/1`.
    pub fn lt_const(self, c: i64) -> Expr {
        Expr::Indicator(Box::new(self), MapOp::LtConst, c)
    }

    /// `(self >= c) as 0/1`.
    pub fn ge_const(self, c: i64) -> Expr {
        Expr::Indicator(Box::new(self), MapOp::GeConst, c)
    }

    /// Column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Indicator(a, _, _) => a.collect_columns(out),
        }
    }
}

/// A filter predicate over scan columns.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `col <cmp> value` (for `Between`, `value..=hi`).
    Cmp {
        /// Column name.
        col: String,
        /// Comparison.
        cmp: CmpOp,
        /// Constant (lower bound for `Between`).
        value: i64,
        /// Upper bound for `Between`.
        hi: i64,
    },
    /// `left <cmp> right` over two columns.
    CmpCols {
        /// Left column.
        left: String,
        /// Comparison.
        cmp: CmpOp,
        /// Right column.
        right: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction (e.g. `l_shipmode IN ('MAIL','SHIP')`).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// `col <cmp> value`.
    pub fn cmp(col: impl Into<String>, cmp: CmpOp, value: i64) -> Predicate {
        Predicate::Cmp {
            col: col.into(),
            cmp,
            value,
            hi: 0,
        }
    }

    /// `lo <= col <= hi`.
    pub fn between(col: impl Into<String>, lo: i64, hi: i64) -> Predicate {
        Predicate::Cmp {
            col: col.into(),
            cmp: CmpOp::Between,
            value: lo,
            hi,
        }
    }

    /// `left <cmp> right` over two columns.
    pub fn cmp_cols(left: impl Into<String>, cmp: CmpOp, right: impl Into<String>) -> Predicate {
        Predicate::CmpCols {
            left: left.into(),
            cmp,
            right: right.into(),
        }
    }

    /// Conjunction of predicates.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        Predicate::And(preds)
    }

    /// Disjunction of predicates.
    pub fn or(preds: Vec<Predicate>) -> Predicate {
        Predicate::Or(preds)
    }

    /// `col IN (values…)` as a disjunction of equalities.
    pub fn in_set(col: impl Into<String>, values: &[i64]) -> Predicate {
        let col = col.into();
        Predicate::Or(
            values
                .iter()
                .map(|&v| Predicate::cmp(col.clone(), CmpOp::Eq, v))
                .collect(),
        )
    }

    /// The leaf predicates of this (possibly nested) boolean tree.
    pub fn leaves(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().flat_map(|p| p.leaves()).collect(),
            leaf => vec![leaf],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::col("price").mul(Expr::lit(100).sub(Expr::col("disc")));
        assert_eq!(e.columns(), vec!["price", "disc"]);
        match &e {
            Expr::Mul(a, b) => {
                assert_eq!(**a, Expr::Col("price".into()));
                assert!(matches!(**b, Expr::Sub(_, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn predicate_builders() {
        let p = Predicate::and(vec![
            Predicate::between("date", 10, 20),
            Predicate::cmp("qty", CmpOp::Lt, 24),
            Predicate::cmp_cols("commit", CmpOp::Lt, "receipt"),
        ]);
        let leaves = p.leaves();
        assert_eq!(leaves.len(), 3);
        assert!(matches!(
            leaves[0],
            Predicate::Cmp {
                cmp: CmpOp::Between,
                ..
            }
        ));
        assert!(matches!(leaves[2], Predicate::CmpCols { .. }));
    }

    #[test]
    fn indicator_builders() {
        let e = Expr::col("prio").eq_const(3);
        assert_eq!(e.columns(), vec!["prio"]);
        assert!(matches!(e, Expr::Indicator(_, MapOp::EqConst, 3)));
        assert!(matches!(
            Expr::col("x").lt_const(5),
            Expr::Indicator(_, MapOp::LtConst, 5)
        ));
        assert!(matches!(
            Expr::col("x").ge_const(5),
            Expr::Indicator(_, MapOp::GeConst, 5)
        ));
    }

    #[test]
    fn in_set_builds_disjunction() {
        let p = Predicate::in_set("mode", &[3, 7]);
        match &p {
            Predicate::Or(ps) => {
                assert_eq!(ps.len(), 2);
                assert!(matches!(
                    &ps[0],
                    Predicate::Cmp {
                        cmp: CmpOp::Eq,
                        value: 3,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.leaves().len(), 2);
    }

    #[test]
    fn nested_and_flattens() {
        let p = Predicate::and(vec![
            Predicate::and(vec![
                Predicate::cmp("a", CmpOp::Eq, 1),
                Predicate::cmp("b", CmpOp::Eq, 2),
            ]),
            Predicate::cmp("c", CmpOp::Eq, 3),
        ]);
        assert_eq!(p.leaves().len(), 3);
    }
}
