//! Device placement policies.
//!
//! The runtime executes primitive graphs whose nodes carry *device
//! annotations* "generated from any existing optimizer" (paper §III). This
//! module is a minimal such optimizer front end: given the plugged devices'
//! descriptions, a [`PlacementPolicy`] picks the target device a plan is
//! built against — by kind preference, by SDK, by memory headroom, or
//! pinned explicitly.

use adamant_core::error::{ExecError, Result};
use adamant_device::device::{DeviceId, DeviceInfo, DeviceKind};
use adamant_device::sdk::SdkKind;

/// How to choose the device a plan targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// A fixed device id.
    Fixed(DeviceId),
    /// The first device of the given kind (falls back to any device).
    PreferKind(DeviceKind),
    /// The first device speaking the given SDK (no fallback — SDK choice
    /// changes which kernels run).
    RequireSdk(SdkKind),
    /// The device with the most free *capacity* for the given estimated
    /// working set; devices too small are skipped.
    FitWorkingSet {
        /// Estimated resident bytes the query needs at once.
        estimated_bytes: u64,
    },
}

impl PlacementPolicy {
    /// Resolves the policy against the plugged devices.
    pub fn choose(&self, devices: &[DeviceInfo]) -> Result<DeviceId> {
        if devices.is_empty() {
            return Err(ExecError::InvalidGraph(
                "placement: no devices plugged".into(),
            ));
        }
        match self {
            PlacementPolicy::Fixed(id) => devices
                .iter()
                .find(|d| d.id == *id)
                .map(|d| d.id)
                .ok_or_else(|| {
                    ExecError::InvalidGraph(format!("placement: device {id} not plugged"))
                }),
            PlacementPolicy::PreferKind(kind) => Ok(devices
                .iter()
                .find(|d| d.kind == *kind)
                .unwrap_or(&devices[0])
                .id),
            PlacementPolicy::RequireSdk(sdk) => devices
                .iter()
                .find(|d| d.sdk == *sdk)
                .map(|d| d.id)
                .ok_or_else(|| {
                    ExecError::InvalidGraph(format!("placement: no plugged device speaks {sdk}"))
                }),
            PlacementPolicy::FitWorkingSet { estimated_bytes } => devices
                .iter()
                .filter(|d| d.memory_capacity >= *estimated_bytes)
                .max_by_key(|d| d.memory_capacity)
                .map(|d| d.id)
                .ok_or_else(|| {
                    ExecError::InvalidGraph(format!(
                        "placement: no device fits a {estimated_bytes}-byte working set"
                    ))
                }),
        }
    }

    /// Like [`PlacementPolicy::choose`], but prefers devices outside `avoid`
    /// (quarantined by the executor's health registry). The policy is first
    /// resolved against the non-avoided devices; when that leaves nothing to
    /// choose from (or the filtered resolution fails), the full set is used
    /// — a degraded device beats no device. [`PlacementPolicy::Fixed`] is
    /// honored as-is: an explicit pin overrides health.
    pub fn choose_avoiding(&self, devices: &[DeviceInfo], avoid: &[DeviceId]) -> Result<DeviceId> {
        if matches!(self, PlacementPolicy::Fixed(_)) || avoid.is_empty() {
            return self.choose(devices);
        }
        let preferred: Vec<DeviceInfo> = devices
            .iter()
            .filter(|d| !avoid.contains(&d.id))
            .cloned()
            .collect();
        if !preferred.is_empty() {
            if let Ok(id) = self.choose(&preferred) {
                return Ok(id);
            }
        }
        self.choose(devices)
    }

    /// Deadline-aware resolution: like [`PlacementPolicy::choose`], but
    /// devices whose modeled placement cost exceeds the query's remaining
    /// deadline budget are skipped, falling back to the cheapest feasible
    /// device when the policy's own preference is infeasible.
    ///
    /// `costs` pairs each candidate with its modeled
    /// `placement_cost_ns` (transfer + expected retry penalty, plus any
    /// backlog the caller wants to charge); devices missing from `costs`
    /// are treated as free. With no budget the plain policy applies;
    /// [`PlacementPolicy::Fixed`] is always honored as-is (an explicit pin
    /// overrides the deadline — the run itself will still abort if the
    /// budget truly cannot fit). When *no* device fits the budget the
    /// cheapest device overall is returned: the closest-to-feasible start
    /// beats refusing to place, and the runtime's deadline check remains
    /// the final arbiter.
    pub fn choose_within_budget(
        &self,
        devices: &[DeviceInfo],
        costs: &[(DeviceId, f64)],
        budget_ns: Option<f64>,
    ) -> Result<DeviceId> {
        let Some(budget_ns) = budget_ns else {
            return self.choose(devices);
        };
        if matches!(self, PlacementPolicy::Fixed(_)) {
            return self.choose(devices);
        }
        let cost_of = |id: DeviceId| -> f64 {
            costs
                .iter()
                .find(|(d, _)| *d == id)
                .map(|(_, c)| *c)
                .unwrap_or(0.0)
        };
        let feasible: Vec<DeviceInfo> = devices
            .iter()
            .filter(|d| cost_of(d.id) <= budget_ns)
            .cloned()
            .collect();
        if !feasible.is_empty() {
            if let Ok(id) = self.choose(&feasible) {
                return Ok(id);
            }
            // The policy's preference is infeasible (e.g. a strict SDK
            // requirement): cheapest feasible device wins.
            if let Some(id) = feasible
                .iter()
                .map(|d| d.id)
                .min_by(|a, b| cost_of(*a).total_cmp(&cost_of(*b)).then(a.cmp(b)))
            {
                return Ok(id);
            }
        }
        self.choose(devices).map(|preferred| {
            // Nothing fits the budget: cheapest overall, tie-broken toward
            // the policy's own preference then lowest id.
            devices
                .iter()
                .map(|d| d.id)
                .min_by(|a, b| {
                    cost_of(*a)
                        .total_cmp(&cost_of(*b))
                        .then((*a != preferred).cmp(&(*b != preferred)))
                        .then(a.cmp(b))
                })
                .unwrap_or(preferred)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<DeviceInfo> {
        vec![
            DeviceInfo {
                id: DeviceId(0),
                name: "cpu".into(),
                kind: DeviceKind::Cpu,
                sdk: SdkKind::OpenMp,
                memory_capacity: 32 << 30,
                pinned_capacity: 0,
            },
            DeviceInfo {
                id: DeviceId(1),
                name: "gpu".into(),
                kind: DeviceKind::Gpu,
                sdk: SdkKind::Cuda,
                memory_capacity: 11 << 30,
                pinned_capacity: 4 << 30,
            },
        ]
    }

    #[test]
    fn fixed_and_kind() {
        let d = infos();
        assert_eq!(
            PlacementPolicy::Fixed(DeviceId(1)).choose(&d).unwrap(),
            DeviceId(1)
        );
        assert!(PlacementPolicy::Fixed(DeviceId(9)).choose(&d).is_err());
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose(&d)
                .unwrap(),
            DeviceId(1)
        );
        // Missing kind falls back to the first device.
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Accelerator)
                .choose(&d)
                .unwrap(),
            DeviceId(0)
        );
    }

    #[test]
    fn sdk_requirement_is_strict() {
        let d = infos();
        assert_eq!(
            PlacementPolicy::RequireSdk(SdkKind::Cuda)
                .choose(&d)
                .unwrap(),
            DeviceId(1)
        );
        assert!(PlacementPolicy::RequireSdk(SdkKind::OpenCl)
            .choose(&d)
            .is_err());
    }

    #[test]
    fn working_set_fit() {
        let d = infos();
        // Fits both: the roomier CPU wins.
        assert_eq!(
            PlacementPolicy::FitWorkingSet {
                estimated_bytes: 1 << 30
            }
            .choose(&d)
            .unwrap(),
            DeviceId(0)
        );
        // Fits only the CPU.
        assert_eq!(
            PlacementPolicy::FitWorkingSet {
                estimated_bytes: 20 << 30
            }
            .choose(&d)
            .unwrap(),
            DeviceId(0)
        );
        // Fits nothing.
        assert!(PlacementPolicy::FitWorkingSet {
            estimated_bytes: 100 << 30
        }
        .choose(&d)
        .is_err());
    }

    #[test]
    fn avoiding_skips_quarantined_devices() {
        let d = infos();
        // The GPU is quarantined: kind preference degrades to the CPU.
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_avoiding(&d, &[DeviceId(1)])
                .unwrap(),
            DeviceId(0)
        );
        // Everything quarantined: fall back to the full set rather than fail.
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_avoiding(&d, &[DeviceId(0), DeviceId(1)])
                .unwrap(),
            DeviceId(1)
        );
        // A strict SDK requirement that only a quarantined device satisfies
        // still resolves (degraded beats impossible).
        assert_eq!(
            PlacementPolicy::RequireSdk(SdkKind::Cuda)
                .choose_avoiding(&d, &[DeviceId(1)])
                .unwrap(),
            DeviceId(1)
        );
        // An explicit pin overrides health.
        assert_eq!(
            PlacementPolicy::Fixed(DeviceId(1))
                .choose_avoiding(&d, &[DeviceId(1)])
                .unwrap(),
            DeviceId(1)
        );
    }

    #[test]
    fn budget_skips_devices_too_slow_to_finish() {
        let d = infos();
        // GPU preferred, but its modeled start cost (900) blows the 500 ns
        // remaining budget: the feasible CPU (cost 100) wins.
        let costs = vec![(DeviceId(0), 100.0), (DeviceId(1), 900.0)];
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_within_budget(&d, &costs, Some(500.0))
                .unwrap(),
            DeviceId(0)
        );
        // Roomy budget: the policy's own preference stands.
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_within_budget(&d, &costs, Some(1000.0))
                .unwrap(),
            DeviceId(1)
        );
        // No budget at all: plain resolution.
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_within_budget(&d, &costs, None)
                .unwrap(),
            DeviceId(1)
        );
        // Nothing feasible: cheapest overall rather than an error (the
        // runtime deadline check is the final arbiter).
        assert_eq!(
            PlacementPolicy::PreferKind(DeviceKind::Gpu)
                .choose_within_budget(&d, &costs, Some(50.0))
                .unwrap(),
            DeviceId(0)
        );
        // A strict SDK preference that is infeasible degrades to the
        // cheapest feasible device instead of failing.
        assert_eq!(
            PlacementPolicy::RequireSdk(SdkKind::Cuda)
                .choose_within_budget(&d, &costs, Some(500.0))
                .unwrap(),
            DeviceId(0)
        );
        // An explicit pin overrides the budget.
        assert_eq!(
            PlacementPolicy::Fixed(DeviceId(1))
                .choose_within_budget(&d, &costs, Some(50.0))
                .unwrap(),
            DeviceId(1)
        );
    }

    #[test]
    fn empty_registry_rejected() {
        assert!(PlacementPolicy::PreferKind(DeviceKind::Gpu)
            .choose(&[])
            .is_err());
    }
}
