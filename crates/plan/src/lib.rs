//! # adamant-plan
//!
//! A small logical-plan layer in front of the ADAMANT runtime.
//!
//! The paper's runtime "takes a query plan (generated from any existing
//! optimizer) translated into a primitive graph with annotations". This
//! crate is that translation: a [`PlanBuilder`] with relational operations
//! (scan, filter, project, hash join, aggregation, sort) that lowers to an
//! `adamant-core` [`PrimitiveGraph`](adamant_core::graph::PrimitiveGraph),
//! handling the fiddly parts — late materialization through selection
//! bitmaps, join position chains, group-by export — so query authors don't
//! build primitive graphs by hand.
//!
//! ```
//! use adamant_plan::prelude::*;
//! use adamant_device::device::DeviceId;
//! use adamant_task::params::{AggFunc, CmpOp};
//!
//! let mut pb = PlanBuilder::new(DeviceId(0));
//! let mut t = pb.scan("t", &["x", "y"]);
//! t.filter(&mut pb, Predicate::cmp("x", CmpOp::Gt, 10)).unwrap();
//! t.project(&mut pb, "xy", Expr::col("x").mul(Expr::col("y"))).unwrap();
//! let xy = t.materialized(&mut pb, "xy").unwrap();
//! let sum = pb.agg_block(xy, AggFunc::Sum, "sum_xy");
//! pb.output("sum_xy", sum);
//! let graph = pb.build().unwrap();
//! assert!(graph.nodes().len() >= 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod expr;
pub mod placement;
pub mod stream;

pub use expr::{Expr, Predicate};
pub use placement::PlacementPolicy;
pub use stream::{GroupResult, PlanBuilder, Stream};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::expr::{Expr, Predicate};
    pub use crate::placement::PlacementPolicy;
    pub use crate::stream::{GroupResult, PlanBuilder, Stream};
}
