//! Deterministic TPC-H data generation.

use adamant_storage::column::Column;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::{Catalog, Table};
use adamant_storage::rng::Rng;

/// The five market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
/// The five order priorities, in output order.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Return flags (`l_returnflag`).
pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
/// Ship modes (`l_shipmode`).
pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
/// Part types (`p_type`); Q14 matches the `PROMO` prefix.
pub const PART_TYPES: [&str; 9] = [
    "PROMO BURNISHED TIN",
    "PROMO PLATED COPPER",
    "PROMO ANODIZED STEEL",
    "STANDARD BURNISHED TIN",
    "STANDARD PLATED COPPER",
    "STANDARD ANODIZED STEEL",
    "ECONOMY BURNISHED TIN",
    "ECONOMY PLATED COPPER",
    "ECONOMY ANODIZED STEEL",
];
/// Line statuses (`l_linestatus`).
pub const LINE_STATUSES: [&str; 2] = ["F", "O"];

/// Rows per scale-factor-1 table (TPC-H spec §4.2.5).
pub mod base_rows {
    /// `customer` rows at SF 1.
    pub const CUSTOMER: usize = 150_000;
    /// `orders` rows at SF 1.
    pub const ORDERS: usize = 1_500_000;
    /// Average `lineitem` rows at SF 1 (orders × ~4).
    pub const LINEITEM: usize = 6_000_000;
    /// `part` rows at SF 1.
    pub const PART: usize = 200_000;
    /// `supplier` rows at SF 1.
    pub const SUPPLIER: usize = 10_000;
    /// `partsupp` rows at SF 1.
    pub const PARTSUPP: usize = 800_000;
    /// `nation` rows (fixed).
    pub const NATION: usize = 25;
    /// `region` rows (fixed).
    pub const REGION: usize = 5;
}

/// Deterministic TPC-H generator.
///
/// All randomness derives from the seed, so a `(sf, seed)` pair always
/// produces identical data — experiments are exactly reproducible.
#[derive(Clone, Debug)]
pub struct TpchGenerator {
    /// Scale factor (may be fractional for laptop-scale runs).
    pub scale_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpchGenerator {
    /// Creates a generator.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        assert!(scale_factor > 0.0, "scale factor must be positive");
        TpchGenerator { scale_factor, seed }
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale_factor) as usize).max(1)
    }

    /// Generates all eight tables into a catalog.
    pub fn generate(&self) -> Catalog {
        let mut catalog = Catalog::new();
        catalog.register(self.region());
        catalog.register(self.nation());
        catalog.register(self.supplier());
        catalog.register(self.customer());
        catalog.register(self.part());
        catalog.register(self.partsupp());
        let (orders, lineitem) = self.orders_and_lineitem();
        catalog.register(orders);
        catalog.register(lineitem);
        catalog
    }

    fn rng(&self, stream: u64) -> Rng {
        Rng::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream)
    }

    /// The `region` table.
    pub fn region(&self) -> Table {
        let names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
        Table::new(
            "region",
            vec![
                Column::from_i64("r_regionkey", (0..5).collect()),
                Column::from_strings("r_name", &names),
            ],
        )
        .expect("equal lengths")
    }

    /// The `nation` table.
    pub fn nation(&self) -> Table {
        let mut rng = self.rng(1);
        let n = base_rows::NATION;
        let keys: Vec<i64> = (0..n as i64).collect();
        let names: Vec<String> = (0..n).map(|i| format!("NATION_{i:02}")).collect();
        let regions: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..5)).collect();
        Table::new(
            "nation",
            vec![
                Column::from_i64("n_nationkey", keys),
                Column::from_strings("n_name", &names),
                Column::from_i64("n_regionkey", regions),
            ],
        )
        .expect("equal lengths")
    }

    /// The `supplier` table.
    pub fn supplier(&self) -> Table {
        let mut rng = self.rng(2);
        let n = self.scaled(base_rows::SUPPLIER);
        Table::new(
            "supplier",
            vec![
                Column::from_i64("s_suppkey", (1..=n as i64).collect()),
                Column::from_i64(
                    "s_nationkey",
                    (0..n).map(|_| rng.gen_range(0i64..25)).collect(),
                ),
                Column::from_i64(
                    "s_acctbal",
                    (0..n).map(|_| rng.gen_range(-99999i64..999999)).collect(),
                ),
            ],
        )
        .expect("equal lengths")
    }

    /// The `customer` table.
    pub fn customer(&self) -> Table {
        let mut rng = self.rng(3);
        let n = self.scaled(base_rows::CUSTOMER);
        let segments: Vec<&str> = (0..n)
            .map(|_| SEGMENTS[rng.gen_range(0..SEGMENTS.len())])
            .collect();
        Table::new(
            "customer",
            vec![
                Column::from_i64("c_custkey", (1..=n as i64).collect()),
                Column::from_strings("c_mktsegment", &segments),
                Column::from_i64(
                    "c_nationkey",
                    (0..n).map(|_| rng.gen_range(0i64..25)).collect(),
                ),
                Column::from_i64(
                    "c_acctbal",
                    (0..n).map(|_| rng.gen_range(-99999i64..999999)).collect(),
                ),
            ],
        )
        .expect("equal lengths")
    }

    /// The `part` table.
    pub fn part(&self) -> Table {
        let mut rng = self.rng(4);
        let n = self.scaled(base_rows::PART);
        let brands: Vec<String> = (0..n)
            .map(|_| format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6)))
            .collect();
        let types: Vec<&str> = (0..n)
            .map(|_| PART_TYPES[rng.gen_range(0..PART_TYPES.len())])
            .collect();
        Table::new(
            "part",
            vec![
                Column::from_i64("p_partkey", (1..=n as i64).collect()),
                Column::from_strings("p_brand", &brands),
                Column::from_strings("p_type", &types),
                Column::from_i64("p_size", (0..n).map(|_| rng.gen_range(1i64..51)).collect()),
                Column::from_i64(
                    "p_retailprice",
                    (0..n).map(|_| rng.gen_range(90_000i64..200_000)).collect(),
                ),
            ],
        )
        .expect("equal lengths")
    }

    /// The `partsupp` table.
    pub fn partsupp(&self) -> Table {
        let mut rng = self.rng(5);
        let parts = self.scaled(base_rows::PART) as i64;
        let supps = self.scaled(base_rows::SUPPLIER) as i64;
        let n = self.scaled(base_rows::PARTSUPP);
        Table::new(
            "partsupp",
            vec![
                Column::from_i64(
                    "ps_partkey",
                    (0..n).map(|i| (i as i64 / 4) % parts + 1).collect(),
                ),
                Column::from_i64(
                    "ps_suppkey",
                    (0..n).map(|_| rng.gen_range(1..=supps)).collect(),
                ),
                Column::from_i64(
                    "ps_availqty",
                    (0..n).map(|_| rng.gen_range(1i64..10_000)).collect(),
                ),
                Column::from_i64(
                    "ps_supplycost",
                    (0..n).map(|_| rng.gen_range(100i64..100_000)).collect(),
                ),
            ],
        )
        .expect("equal lengths")
    }

    /// The `orders` and `lineitem` tables (generated together to keep the
    /// 1:1–7 key relationship and date dependencies).
    pub fn orders_and_lineitem(&self) -> (Table, Table) {
        let mut rng = self.rng(6);
        let n_orders = self.scaled(base_rows::ORDERS);
        let n_customers = self.scaled(base_rows::CUSTOMER) as i64;

        let start = date_to_days(1992, 1, 1);
        let end = date_to_days(1998, 8, 2);
        // `l_linestatus` split date (spec: shipped before/after 1995-06-17).
        let status_split = date_to_days(1995, 6, 17);

        let mut o_orderkey = Vec::with_capacity(n_orders);
        let mut o_custkey = Vec::with_capacity(n_orders);
        let mut o_orderdate = Vec::with_capacity(n_orders);
        let mut o_orderpriority: Vec<&str> = Vec::with_capacity(n_orders);
        let mut o_shippriority = Vec::with_capacity(n_orders);
        let mut o_totalprice = Vec::with_capacity(n_orders);

        let est_lines = n_orders * 4;
        let mut l_orderkey = Vec::with_capacity(est_lines);
        let mut l_partkey = Vec::with_capacity(est_lines);
        let mut l_suppkey = Vec::with_capacity(est_lines);
        let mut l_linenumber = Vec::with_capacity(est_lines);
        let mut l_quantity = Vec::with_capacity(est_lines);
        let mut l_extendedprice = Vec::with_capacity(est_lines);
        let mut l_discount = Vec::with_capacity(est_lines);
        let mut l_tax = Vec::with_capacity(est_lines);
        let mut l_returnflag: Vec<&str> = Vec::with_capacity(est_lines);
        let mut l_shipmode: Vec<&str> = Vec::with_capacity(est_lines);
        let mut l_linestatus: Vec<&str> = Vec::with_capacity(est_lines);
        let mut l_shipdate = Vec::with_capacity(est_lines);
        let mut l_commitdate = Vec::with_capacity(est_lines);
        let mut l_receiptdate = Vec::with_capacity(est_lines);

        let parts = self.scaled(base_rows::PART) as i64;
        let supps = self.scaled(base_rows::SUPPLIER) as i64;

        for i in 0..n_orders {
            // TPC-H order keys are sparse; a simple stride keeps that shape.
            let okey = (i as i64) * 4 + 1;
            let odate = rng.gen_range(start..=end);
            o_orderkey.push(okey);
            o_custkey.push(rng.gen_range(1..=n_customers));
            o_orderdate.push(odate);
            o_orderpriority.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]);
            o_shippriority.push(0i64);

            let lines = rng.gen_range(1..=7);
            let mut total = 0i64;
            for ln in 1..=lines {
                let qty = rng.gen_range(1..=50) as i64;
                // extendedprice ~ qty * unit price (cents).
                let unit = rng.gen_range(90_000..200_000) as i64 / 100;
                let price = qty * unit;
                let disc = rng.gen_range(0..=10) as i64; // percent
                let tax = rng.gen_range(0..=8) as i64; // percent
                let ship = odate + rng.gen_range(1..=121);
                let commit = odate + rng.gen_range(30..=90);
                let receipt = ship + rng.gen_range(1..=30);
                let status = if ship > status_split { "O" } else { "F" };
                // Returned lines only among early-shipped ones (spec-like).
                let rflag = if status == "O" {
                    "N"
                } else {
                    RETURN_FLAGS[rng.gen_range(0usize..2) * 2] // "A" or "R"
                };
                l_orderkey.push(okey);
                l_partkey.push(rng.gen_range(1..=parts));
                l_suppkey.push(rng.gen_range(1..=supps));
                l_linenumber.push(ln as i64);
                l_quantity.push(qty);
                l_extendedprice.push(price);
                l_discount.push(disc);
                l_tax.push(tax);
                l_returnflag.push(rflag);
                l_shipmode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]);
                l_linestatus.push(status);
                l_shipdate.push(ship);
                l_commitdate.push(commit);
                l_receiptdate.push(receipt);
                total += price;
            }
            o_totalprice.push(total);
        }

        let orders = Table::new(
            "orders",
            vec![
                Column::from_i64("o_orderkey", o_orderkey),
                Column::from_i64("o_custkey", o_custkey),
                Column::from_dates("o_orderdate", o_orderdate),
                Column::from_strings("o_orderpriority", &o_orderpriority),
                Column::from_i64("o_shippriority", o_shippriority),
                Column::from_i64("o_totalprice", o_totalprice),
            ],
        )
        .expect("equal lengths");

        let lineitem = Table::new(
            "lineitem",
            vec![
                Column::from_i64("l_orderkey", l_orderkey),
                Column::from_i64("l_partkey", l_partkey),
                Column::from_i64("l_suppkey", l_suppkey),
                Column::from_i64("l_linenumber", l_linenumber),
                Column::from_i64("l_quantity", l_quantity),
                Column::from_i64("l_extendedprice", l_extendedprice),
                Column::from_i64("l_discount", l_discount),
                Column::from_i64("l_tax", l_tax),
                Column::from_strings("l_returnflag", &l_returnflag),
                Column::from_strings("l_linestatus", &l_linestatus),
                Column::from_strings("l_shipmode", &l_shipmode),
                Column::from_dates("l_shipdate", l_shipdate),
                Column::from_dates("l_commitdate", l_commitdate),
                Column::from_dates("l_receiptdate", l_receiptdate),
            ],
        )
        .expect("equal lengths");

        (orders, lineitem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_storage::datatype::format_date;

    fn small() -> Catalog {
        TpchGenerator::new(0.001, 42).generate()
    }

    #[test]
    fn all_tables_present() {
        let cat = small();
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(cat.table(t).is_ok(), "missing {t}");
        }
    }

    #[test]
    fn row_counts_scale() {
        let cat = small();
        assert_eq!(cat.table("customer").unwrap().row_count(), 150);
        assert_eq!(cat.table("orders").unwrap().row_count(), 1500);
        assert_eq!(cat.table("supplier").unwrap().row_count(), 10);
        assert_eq!(cat.table("nation").unwrap().row_count(), 25);
        assert_eq!(cat.table("region").unwrap().row_count(), 5);
        let li = cat.table("lineitem").unwrap().row_count();
        assert!((1500..=1500 * 7).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn determinism() {
        let a = TpchGenerator::new(0.001, 7).generate();
        let b = TpchGenerator::new(0.001, 7).generate();
        assert_eq!(
            a.table("lineitem")
                .unwrap()
                .column("l_extendedprice")
                .unwrap(),
            b.table("lineitem")
                .unwrap()
                .column("l_extendedprice")
                .unwrap()
        );
        let c = TpchGenerator::new(0.001, 8).generate();
        assert_ne!(
            a.table("lineitem")
                .unwrap()
                .column("l_extendedprice")
                .unwrap(),
            c.table("lineitem")
                .unwrap()
                .column("l_extendedprice")
                .unwrap()
        );
    }

    #[test]
    fn foreign_keys_resolve() {
        let cat = small();
        let orders = cat.table("orders").unwrap();
        let customers = cat.table("customer").unwrap().row_count() as i64;
        for v in orders.column("o_custkey").unwrap().to_i64_vec().unwrap() {
            assert!((1..=customers).contains(&v));
        }
        // Every lineitem order key exists in orders.
        let okeys: std::collections::HashSet<i64> = orders
            .column("o_orderkey")
            .unwrap()
            .to_i64_vec()
            .unwrap()
            .into_iter()
            .collect();
        let li = cat.table("lineitem").unwrap();
        for v in li.column("l_orderkey").unwrap().to_i64_vec().unwrap() {
            assert!(okeys.contains(&v));
        }
    }

    #[test]
    fn date_ranges_valid() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let ship = li.column("l_shipdate").unwrap().to_i64_vec().unwrap();
        let receipt = li.column("l_receiptdate").unwrap().to_i64_vec().unwrap();
        for (s, r) in ship.iter().zip(&receipt) {
            assert!(r > s, "receipt after ship");
        }
        let lo = date_to_days(1992, 1, 1) as i64;
        let hi = date_to_days(1999, 1, 1) as i64;
        for s in &ship {
            assert!(*s >= lo && *s <= hi, "date {}", format_date(*s as i32));
        }
    }

    #[test]
    fn value_domains() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        for d in li.column("l_discount").unwrap().to_i64_vec().unwrap() {
            assert!((0..=10).contains(&d));
        }
        for t in li.column("l_tax").unwrap().to_i64_vec().unwrap() {
            assert!((0..=8).contains(&t));
        }
        for q in li.column("l_quantity").unwrap().to_i64_vec().unwrap() {
            assert!((1..=50).contains(&q));
        }
        let seg = cat
            .table("customer")
            .unwrap()
            .column("c_mktsegment")
            .unwrap();
        assert!(seg.dict_code("BUILDING").is_some());
        let segs = seg.dictionary().unwrap().len();
        assert_eq!(segs, 5);
        let modes = cat.table("lineitem").unwrap().column("l_shipmode").unwrap();
        assert!(modes.dict_code("MAIL").is_some());
        assert!(modes.dict_code("SHIP").is_some());
        let types = cat.table("part").unwrap().column("p_type").unwrap();
        assert!(types
            .dictionary()
            .unwrap()
            .iter()
            .any(|t| t.starts_with("PROMO")));
    }

    #[test]
    fn returnflag_linestatus_consistent() {
        let cat = small();
        let li = cat.table("lineitem").unwrap();
        let rf = li.column("l_returnflag").unwrap();
        let ls = li.column("l_linestatus").unwrap();
        for i in 0..li.row_count() {
            let f = rf.value(i).unwrap().to_string();
            let s = ls.value(i).unwrap().to_string();
            if s == "O" {
                assert_eq!(f, "N", "open lines are not returned");
            } else {
                assert!(f == "A" || f == "R");
            }
        }
    }
}
