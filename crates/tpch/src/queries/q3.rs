//! TPC-H Q3 — shipping priority (the paper's "multiple joins" query).
//!
//! Three pipelines, exactly the paper's decomposition:
//!
//! 1. `customer` filtered to the BUILDING segment → `HASH_BUILD`;
//! 2. `orders` filtered by date → semi-probe against the customer table →
//!    `HASH_BUILD` keyed by `o_orderkey`, carrying `(o_orderdate,
//!    o_shippriority)` as payload;
//! 3. `lineitem` filtered by ship date → probe → revenue map →
//!    `HASH_AGG` by order key; then a full-buffer export/sort stage.

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::{AggFunc, CmpOp};

use crate::reference::Q3Row;

/// Columns Q3 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("customer", "c_custkey"),
    ("customer", "c_mktsegment"),
    ("orders", "o_orderkey"),
    ("orders", "o_custkey"),
    ("orders", "o_orderdate"),
    ("orders", "o_shippriority"),
    ("lineitem", "l_orderkey"),
    ("lineitem", "l_extendedprice"),
    ("lineitem", "l_discount"),
    ("lineitem", "l_shipdate"),
];

/// Builds the Q3 primitive graph.
pub fn plan(device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
    let date = date_to_days(1995, 3, 15) as i64;
    let customer = catalog
        .table("customer")
        .map_err(adamant_core::ExecError::from)?;
    let building = customer
        .column("c_mktsegment")
        .map_err(adamant_core::ExecError::from)?
        .dict_code("BUILDING")
        .expect("BUILDING segment exists") as i64;
    let n_cust = customer.row_count();
    let n_orders = catalog
        .table("orders")
        .map_err(adamant_core::ExecError::from)?
        .row_count();
    let n_li = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?
        .row_count();

    let mut pb = PlanBuilder::new(device);

    // Pipeline 1: BUILDING customers.
    let mut cust = pb.scan("customer", &["c_custkey", "c_mktsegment"]);
    cust.filter(&mut pb, Predicate::cmp("c_mktsegment", CmpOp::Eq, building))?;
    let ht_cust = cust.hash_build(&mut pb, "c_custkey", &[], n_cust / 4 + 8)?;

    // Pipeline 2: qualifying orders into a keyed table with payload.
    let mut orders = pb.scan(
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    );
    orders.filter(&mut pb, Predicate::cmp("o_orderdate", CmpOp::Lt, date))?;
    orders.semi_join(&mut pb, "o_custkey", ht_cust)?;
    let ht_orders = orders.hash_build(
        &mut pb,
        "o_orderkey",
        &["o_orderdate", "o_shippriority"],
        n_orders / 8 + 8,
    )?;

    // Pipeline 3: lineitem probe + revenue aggregation.
    let mut li = pb.scan(
        "lineitem",
        &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
    );
    li.filter(&mut pb, Predicate::cmp("l_shipdate", CmpOp::Gt, date))?;
    li.project(
        &mut pb,
        "rev",
        Expr::col("l_extendedprice").mul(Expr::lit(100).sub(Expr::col("l_discount"))),
    )?;
    li.hash_probe(
        &mut pb,
        "l_orderkey",
        ht_orders,
        &["o_orderdate", "o_shippriority"],
    )?;
    let ht_rev = li.hash_agg(
        &mut pb,
        "l_orderkey",
        &["o_orderdate", "o_shippriority"],
        &[(AggFunc::Sum, "rev")],
        n_li / 16 + 8,
    )?;

    // Post stage: export, ORDER BY revenue DESC, o_orderdate ASC.
    let groups = pb.group_result(ht_rev, 2, 1);
    let perm = pb.sort(&[
        (groups.states[0], true),
        (groups.payloads[0], false),
        (groups.keys, false),
    ]);
    let okey = pb.take(groups.keys, perm);
    let odate = pb.take(groups.payloads[0], perm);
    let oship = pb.take(groups.payloads[1], perm);
    let rev = pb.take(groups.states[0], perm);
    pb.output("l_orderkey", okey);
    pb.output("o_orderdate", odate);
    pb.output("o_shippriority", oship);
    pb.output("revenue", rev);
    pb.build()
}

/// Binds Q3 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into the top-10 [`Q3Row`]s.
pub fn decode(out: &QueryOutput) -> Vec<Q3Row> {
    let keys = out.i64_column("l_orderkey");
    let dates = out.i64_column("o_orderdate");
    let ships = out.i64_column("o_shippriority");
    let revs = out.i64_column("revenue");
    let n = keys.len().min(10);
    (0..n)
        .map(|i| Q3Row {
            orderkey: keys[i],
            revenue: revs[i],
            orderdate: dates[i],
            shippriority: ships[i],
        })
        .collect()
}
