//! TPC-H Q1 — pricing summary report (multi-aggregate group-by).
//!
//! Groups the filtered `lineitem` by `(l_returnflag, l_linestatus)` —
//! lowered to a packed integer key — and computes six aggregates in one
//! `HASH_AGG` pass; the group results are exported, sorted by key and
//! returned.

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::{AggFunc, CmpOp};

use crate::reference::Q1Row;

/// Columns Q1 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("lineitem", "l_shipdate"),
    ("lineitem", "l_quantity"),
    ("lineitem", "l_extendedprice"),
    ("lineitem", "l_discount"),
    ("lineitem", "l_tax"),
    ("lineitem", "l_returnflag"),
    ("lineitem", "l_linestatus"),
];

/// Builds the Q1 primitive graph.
pub fn plan(device: DeviceId, _catalog: &Catalog) -> Result<PrimitiveGraph> {
    let cutoff = date_to_days(1998, 9, 2) as i64;
    let mut pb = PlanBuilder::new(device);
    let mut li = pb.scan(
        "lineitem",
        &[
            "l_shipdate",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
        ],
    );
    li.filter(&mut pb, Predicate::cmp("l_shipdate", CmpOp::Le, cutoff))?;
    // Packed group key: returnflag_code * 16 + linestatus_code.
    li.project(
        &mut pb,
        "gkey",
        Expr::col("l_returnflag")
            .mul(Expr::lit(16))
            .add(Expr::col("l_linestatus")),
    )?;
    // disc_price = price * (100 - disc); charge = disc_price * (100 + tax).
    li.project(
        &mut pb,
        "disc_price",
        Expr::col("l_extendedprice").mul(Expr::lit(100).sub(Expr::col("l_discount"))),
    )?;
    li.project(
        &mut pb,
        "charge",
        Expr::col("disc_price").mul(Expr::col("l_tax").add(Expr::lit(100))),
    )?;
    let ht = li.hash_agg(
        &mut pb,
        "gkey",
        &[],
        &[
            (AggFunc::Sum, "l_quantity"),
            (AggFunc::Sum, "l_extendedprice"),
            (AggFunc::Sum, "disc_price"),
            (AggFunc::Sum, "charge"),
            (AggFunc::Sum, "l_discount"),
            (AggFunc::Count, "gkey"),
        ],
        8,
    )?;
    let groups = pb.group_result(ht, 0, 6);
    let perm = pb.sort(&[(groups.keys, false)]);
    let keys = pb.take(groups.keys, perm);
    pb.output("gkey", keys);
    let names = [
        "sum_qty",
        "sum_base_price",
        "sum_disc_price",
        "sum_charge",
        "sum_disc",
        "count",
    ];
    for (i, name) in names.iter().enumerate() {
        let sorted = pb.take(groups.states[i], perm);
        pb.output(*name, sorted);
    }
    pb.build()
}

/// Binds Q1 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into [`Q1Row`]s ordered by
/// `(returnflag, linestatus)` strings (re-sorted: the device sorts by the
/// packed code, dictionary order may differ).
pub fn decode(catalog: &Catalog, out: &QueryOutput) -> Result<Vec<Q1Row>> {
    let li = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?;
    let rf_dict = li
        .column("l_returnflag")
        .map_err(adamant_core::ExecError::from)?
        .dictionary()
        .expect("dict column")
        .to_vec();
    let ls_dict = li
        .column("l_linestatus")
        .map_err(adamant_core::ExecError::from)?
        .dictionary()
        .expect("dict column")
        .to_vec();
    let keys = out.i64_column("gkey");
    let mut rows: Vec<Q1Row> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Q1Row {
            returnflag: rf_dict[(k / 16) as usize].clone(),
            linestatus: ls_dict[(k % 16) as usize].clone(),
            sum_qty: out.i64_column("sum_qty")[i],
            sum_base_price: out.i64_column("sum_base_price")[i],
            sum_disc_price: out.i64_column("sum_disc_price")[i],
            sum_charge: out.i64_column("sum_charge")[i],
            sum_disc: out.i64_column("sum_disc")[i],
            count: out.i64_column("count")[i],
        })
        .collect();
    rows.sort_by(|a, b| {
        (a.returnflag.as_str(), a.linestatus.as_str())
            .cmp(&(b.returnflag.as_str(), b.linestatus.as_str()))
    });
    Ok(rows)
}
