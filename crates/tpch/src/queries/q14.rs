//! TPC-H Q14 — promotion effect.
//!
//! Exercises build-side *derived* payloads (the PROMO indicator is computed
//! on the `part` stream and materialized into the join table) and two
//! block aggregations over one probe pipeline:
//!
//! ```sql
//! SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
//!                          THEN l_extendedprice * (1 - l_discount)
//!                          ELSE 0 END)
//!               / sum(l_extendedprice * (1 - l_discount))
//! FROM lineitem JOIN part ON l_partkey = p_partkey
//! WHERE l_shipdate >= DATE '1995-09-01'
//!   AND l_shipdate <  DATE '1995-10-01';
//! ```

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::AggFunc;

/// Columns Q14 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("lineitem", "l_partkey"),
    ("lineitem", "l_shipdate"),
    ("lineitem", "l_extendedprice"),
    ("lineitem", "l_discount"),
    ("part", "p_partkey"),
    ("part", "p_type"),
];

/// Builds the Q14 primitive graph.
pub fn plan(device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
    let lo = date_to_days(1995, 9, 1) as i64;
    let hi = date_to_days(1995, 10, 1) as i64; // exclusive
    let part_table = catalog
        .table("part")
        .map_err(adamant_core::ExecError::from)?;
    let ptype = part_table
        .column("p_type")
        .map_err(adamant_core::ExecError::from)?;
    // `LIKE 'PROMO%'` over a dictionary column = the set of codes whose
    // entry has the prefix (prefix matching is a dictionary lookup).
    let promo_codes: Vec<i64> = ptype
        .dictionary()
        .expect("dict column")
        .iter()
        .enumerate()
        .filter(|(_, t)| t.starts_with("PROMO"))
        .map(|(c, _)| c as i64)
        .collect();
    assert!(
        !promo_codes.is_empty(),
        "generator always emits PROMO types"
    );
    let n_part = part_table.row_count();

    let mut pb = PlanBuilder::new(device);

    // Pipeline 1: parts with a derived PROMO indicator as join payload.
    let mut part = pb.scan("part", &["p_partkey", "p_type"]);
    let mut promo_expr = Expr::col("p_type").eq_const(promo_codes[0]);
    for &c in &promo_codes[1..] {
        promo_expr = promo_expr.add(Expr::col("p_type").eq_const(c));
    }
    part.project(&mut pb, "is_promo", promo_expr)?;
    let ht = part.hash_build(&mut pb, "p_partkey", &["is_promo"], n_part + 8)?;

    // Pipeline 2: lineitems in the ship-date window probe and aggregate.
    let mut li = pb.scan(
        "lineitem",
        &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
    );
    li.filter(&mut pb, Predicate::between("l_shipdate", lo, hi - 1))?;
    li.project(
        &mut pb,
        "rev",
        Expr::col("l_extendedprice").mul(Expr::lit(100).sub(Expr::col("l_discount"))),
    )?;
    li.hash_probe(&mut pb, "l_partkey", ht, &["is_promo"])?;
    // promo_rev mixes a raw projection with a joined payload — the plan
    // layer materializes `rev` through the join chain automatically.
    li.project(
        &mut pb,
        "promo_rev",
        Expr::col("rev").mul(Expr::col("is_promo")),
    )?;
    let rev = li.materialized(&mut pb, "rev")?;
    let promo_rev = li.materialized(&mut pb, "promo_rev")?;
    let total = pb.agg_block(rev, AggFunc::Sum, "total_revenue");
    let promo = pb.agg_block(promo_rev, AggFunc::Sum, "promo_revenue");
    pb.output("total_revenue", total);
    pb.output("promo_revenue", promo);
    pb.build()
}

/// Binds Q14 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into `(promo_revenue, total_revenue)` scaled
/// integers; `promo_percent` computes the reported percentage.
pub fn decode(out: &QueryOutput) -> (i64, i64) {
    (
        out.i64_column("promo_revenue")[0],
        out.i64_column("total_revenue")[0],
    )
}

/// The percentage Q14 reports.
pub fn promo_percent(promo: i64, total: i64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * promo as f64 / total as f64
    }
}
