//! Primitive-graph plans for the paper's evaluated queries.
//!
//! Each query module provides `plan` (lowered via `adamant-plan`), `bind`
//! (host columns → executor inputs) and `decode` (query output → typed
//! rows comparable with [`crate::reference`]).

pub mod q1;
pub mod q10;
pub mod q12;
pub mod q14;
pub mod q3;
pub mod q4;
pub mod q6;

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_device::device::DeviceId;
use adamant_storage::prelude::Catalog;

/// The TPC-H queries the paper evaluates (Q3: multiple joins, Q4: subquery,
/// Q6: heavy aggregation; Q1 exercises the multi-aggregate path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Pricing summary report.
    Q1,
    /// Shipping priority (multiple joins).
    Q3,
    /// Order priority checking (EXISTS subquery).
    Q4,
    /// Revenue forecast (heavy aggregation).
    Q6,
    /// Returned item reporting, reduced form (join + grouped revenue).
    Q10,
    /// Shipping modes and order priority (IN-lists + conditional counts).
    Q12,
    /// Promotion effect (derived join payload + conditional revenue).
    Q14,
}

impl TpchQuery {
    /// All implemented queries.
    pub const ALL: [TpchQuery; 7] = [
        TpchQuery::Q1,
        TpchQuery::Q3,
        TpchQuery::Q4,
        TpchQuery::Q6,
        TpchQuery::Q10,
        TpchQuery::Q12,
        TpchQuery::Q14,
    ];

    /// The queries the paper's Fig. 10/11 evaluate.
    pub const PAPER_SET: [TpchQuery; 3] = [TpchQuery::Q3, TpchQuery::Q4, TpchQuery::Q6];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TpchQuery::Q1 => "Q1",
            TpchQuery::Q3 => "Q3",
            TpchQuery::Q4 => "Q4",
            TpchQuery::Q6 => "Q6",
            TpchQuery::Q10 => "Q10",
            TpchQuery::Q12 => "Q12",
            TpchQuery::Q14 => "Q14",
        }
    }

    /// Builds the primitive graph targeting one device.
    pub fn plan(self, device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
        match self {
            TpchQuery::Q1 => q1::plan(device, catalog),
            TpchQuery::Q3 => q3::plan(device, catalog),
            TpchQuery::Q4 => q4::plan(device, catalog),
            TpchQuery::Q6 => q6::plan(device, catalog),
            TpchQuery::Q10 => q10::plan(device, catalog),
            TpchQuery::Q12 => q12::plan(device, catalog),
            TpchQuery::Q14 => q14::plan(device, catalog),
        }
    }

    /// Binds the query's input columns from the catalog.
    pub fn bind(self, catalog: &Catalog) -> Result<QueryInputs> {
        bind_columns(catalog, self.input_columns())
    }

    /// `(table, column)` pairs the query reads — its *input footprint*
    /// (the quantity of Fig. 7-left).
    pub fn input_columns(self) -> &'static [(&'static str, &'static str)] {
        match self {
            TpchQuery::Q1 => q1::COLUMNS,
            TpchQuery::Q3 => q3::COLUMNS,
            TpchQuery::Q4 => q4::COLUMNS,
            TpchQuery::Q6 => q6::COLUMNS,
            TpchQuery::Q10 => q10::COLUMNS,
            TpchQuery::Q12 => q12::COLUMNS,
            TpchQuery::Q14 => q14::COLUMNS,
        }
    }

    /// The query's number in the TPC-H specification (the index
    /// [`crate::footprint`] keys its per-query estimates by).
    pub fn footprint_index(self) -> usize {
        match self {
            TpchQuery::Q1 => 1,
            TpchQuery::Q3 => 3,
            TpchQuery::Q4 => 4,
            TpchQuery::Q6 => 6,
            TpchQuery::Q10 => 10,
            TpchQuery::Q12 => 12,
            TpchQuery::Q14 => 14,
        }
    }

    /// Analytic input-footprint estimate at scale factor `sf`, in bytes,
    /// without generating a catalog (the admission controller's estimator
    /// for TPC-H plans; see [`crate::footprint::query_input_bytes`]).
    pub fn analytic_footprint_bytes(self, sf: f64) -> u64 {
        crate::footprint::query_input_bytes(self.footprint_index(), sf)
    }

    /// Input footprint in bytes against a generated catalog.
    pub fn input_bytes(self, catalog: &Catalog) -> Result<u64> {
        let mut total = 0u64;
        for (table, col) in self.input_columns() {
            let t = catalog
                .table(table)
                .map_err(adamant_core::ExecError::from)?;
            let c = t.column(col).map_err(adamant_core::ExecError::from)?;
            total += c.byte_len() as u64;
        }
        Ok(total)
    }
}

impl std::fmt::Display for TpchQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Binds `(table, column)` pairs as executor inputs named by bare column.
pub fn bind_columns(catalog: &Catalog, specs: &[(&str, &str)]) -> Result<QueryInputs> {
    let mut inputs = QueryInputs::new();
    for (table, col) in specs {
        let t = catalog
            .table(table)
            .map_err(adamant_core::ExecError::from)?;
        let c = t.column(col).map_err(adamant_core::ExecError::from)?;
        inputs.bind_column(*col, c)?;
    }
    Ok(inputs)
}
