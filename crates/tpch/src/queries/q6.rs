//! TPC-H Q6 — revenue forecast (the paper's "heavy aggregation" query).
//!
//! ```sql
//! SELECT sum(l_extendedprice * l_discount) AS revenue
//! FROM lineitem
//! WHERE l_shipdate >= DATE '1994-01-01'
//!   AND l_shipdate <  DATE '1995-01-01'
//!   AND l_discount BETWEEN 0.05 AND 0.07
//!   AND l_quantity < 24;
//! ```
//!
//! Lowered shape (paper Fig. 7-middle): three filters → bitmap AND chain →
//! map (`price * disc`) → materialize → block-sum. One pipeline.

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::{AggFunc, CmpOp};

/// Columns Q6 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("lineitem", "l_shipdate"),
    ("lineitem", "l_discount"),
    ("lineitem", "l_quantity"),
    ("lineitem", "l_extendedprice"),
];

/// Builds the Q6 primitive graph.
pub fn plan(device: DeviceId, _catalog: &Catalog) -> Result<PrimitiveGraph> {
    let lo = date_to_days(1994, 1, 1) as i64;
    let hi = date_to_days(1995, 1, 1) as i64;
    let mut pb = PlanBuilder::new(device);
    let mut li = pb.scan(
        "lineitem",
        &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
    );
    li.filter(
        &mut pb,
        Predicate::and(vec![
            Predicate::between("l_shipdate", lo, hi - 1),
            Predicate::between("l_discount", 5, 7),
            Predicate::cmp("l_quantity", CmpOp::Lt, 24),
        ]),
    )?;
    li.project(
        &mut pb,
        "rev",
        Expr::col("l_extendedprice").mul(Expr::col("l_discount")),
    )?;
    let rev = li.materialized(&mut pb, "rev")?;
    let sum = pb.agg_block(rev, AggFunc::Sum, "q6_revenue");
    pb.output("revenue", sum);
    pb.build()
}

/// Binds Q6 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes the executor output into the scaled revenue sum.
pub fn decode(out: &QueryOutput) -> i64 {
    out.i64_column("revenue")[0]
}
