//! TPC-H Q4 — order priority checking (the paper's "subquery" query).
//!
//! The EXISTS subquery becomes a semi-join: `lineitem` rows with
//! `l_commitdate < l_receiptdate` build a key-set table; `orders` in the
//! date window semi-probe it and are counted per priority. The paper notes
//! this query "starts with building a hash table" with little compute to
//! hide the transfer behind — which is why 4-phase execution struggles on
//! it under OpenCL (Fig. 11).

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::{AggFunc, CmpOp};

use crate::reference::Q4Row;

/// Columns Q4 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("lineitem", "l_orderkey"),
    ("lineitem", "l_commitdate"),
    ("lineitem", "l_receiptdate"),
    ("orders", "o_orderkey"),
    ("orders", "o_orderdate"),
    ("orders", "o_orderpriority"),
];

/// Builds the Q4 primitive graph.
pub fn plan(device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
    let lo = date_to_days(1993, 7, 1) as i64;
    let hi = date_to_days(1993, 10, 1) as i64; // exclusive
    let n_li = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?
        .row_count();

    let mut pb = PlanBuilder::new(device);

    // Pipeline 1: late lineitems — the big build.
    let mut li = pb.scan("lineitem", &["l_orderkey", "l_commitdate", "l_receiptdate"]);
    li.filter(
        &mut pb,
        Predicate::cmp_cols("l_commitdate", CmpOp::Lt, "l_receiptdate"),
    )?;
    let ht_late = li.hash_build(&mut pb, "l_orderkey", &[], n_li / 2 + 8)?;

    // Pipeline 2: orders in the window, semi-probe, count per priority.
    let mut orders = pb.scan("orders", &["o_orderkey", "o_orderdate", "o_orderpriority"]);
    orders.filter(&mut pb, Predicate::between("o_orderdate", lo, hi - 1))?;
    orders.semi_join(&mut pb, "o_orderkey", ht_late)?;
    let ht_counts = orders.hash_agg(
        &mut pb,
        "o_orderpriority",
        &[],
        &[(AggFunc::Count, "o_orderpriority")],
        8,
    )?;

    // Post stage: export and order by priority code.
    let groups = pb.group_result(ht_counts, 0, 1);
    let perm = pb.sort(&[(groups.keys, false)]);
    let prio = pb.take(groups.keys, perm);
    let count = pb.take(groups.states[0], perm);
    pb.output("o_orderpriority", prio);
    pb.output("order_count", count);
    pb.build()
}

/// Binds Q4 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into [`Q4Row`]s ordered by priority string.
pub fn decode(catalog: &Catalog, out: &QueryOutput) -> Result<Vec<Q4Row>> {
    let dict = catalog
        .table("orders")
        .map_err(adamant_core::ExecError::from)?
        .column("o_orderpriority")
        .map_err(adamant_core::ExecError::from)?
        .dictionary()
        .expect("dict column")
        .to_vec();
    let codes = out.i64_column("o_orderpriority");
    let counts = out.i64_column("order_count");
    let mut rows: Vec<Q4Row> = codes
        .iter()
        .zip(counts)
        .map(|(&c, &n)| Q4Row {
            priority: dict[c as usize].clone(),
            count: n,
        })
        .collect();
    rows.sort_by(|a, b| a.priority.cmp(&b.priority));
    Ok(rows)
}
