//! TPC-H Q12 — shipping modes and order priority.
//!
//! Exercises `IN`-list predicates (lowered to `BITMAP_OP(Or)` chains),
//! column-column date comparisons, an inner join carrying a payload, and
//! CASE-style conditional counting via indicator `MAP`s:
//!
//! ```sql
//! SELECT l_shipmode,
//!        sum(CASE WHEN o_orderpriority IN ('1-URGENT','2-HIGH')
//!                 THEN 1 ELSE 0 END) AS high_line_count,
//!        sum(CASE … ELSE 1 END)      AS low_line_count
//! FROM orders JOIN lineitem ON o_orderkey = l_orderkey
//! WHERE l_shipmode IN ('MAIL', 'SHIP')
//!   AND l_commitdate < l_receiptdate
//!   AND l_shipdate < l_commitdate
//!   AND l_receiptdate >= DATE '1994-01-01'
//!   AND l_receiptdate <  DATE '1995-01-01'
//! GROUP BY l_shipmode ORDER BY l_shipmode;
//! ```

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::AggFunc;

use crate::reference::Q12Row;

/// Columns Q12 reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("orders", "o_orderkey"),
    ("orders", "o_orderpriority"),
    ("lineitem", "l_orderkey"),
    ("lineitem", "l_shipmode"),
    ("lineitem", "l_commitdate"),
    ("lineitem", "l_receiptdate"),
    ("lineitem", "l_shipdate"),
];

/// Builds the Q12 primitive graph.
pub fn plan(device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
    let lo = date_to_days(1994, 1, 1) as i64;
    let hi = date_to_days(1995, 1, 1) as i64; // exclusive
    let orders_table = catalog
        .table("orders")
        .map_err(adamant_core::ExecError::from)?;
    let prio = orders_table
        .column("o_orderpriority")
        .map_err(adamant_core::ExecError::from)?;
    let urgent = prio.dict_code("1-URGENT").expect("priority exists") as i64;
    let high = prio.dict_code("2-HIGH").expect("priority exists") as i64;
    let li_table = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?;
    let mode = li_table
        .column("l_shipmode")
        .map_err(adamant_core::ExecError::from)?;
    let mail = mode.dict_code("MAIL").expect("MAIL exists") as i64;
    let ship = mode.dict_code("SHIP").expect("SHIP exists") as i64;
    let n_orders = orders_table.row_count();

    let mut pb = PlanBuilder::new(device);

    // Pipeline 1: all orders into a keyed table carrying the priority.
    let mut orders = pb.scan("orders", &["o_orderkey", "o_orderpriority"]);
    let ht = orders.hash_build(&mut pb, "o_orderkey", &["o_orderpriority"], n_orders + 8)?;

    // Pipeline 2: filtered lineitems probe and count per ship mode.
    let mut li = pb.scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_shipmode",
            "l_commitdate",
            "l_receiptdate",
            "l_shipdate",
        ],
    );
    li.filter(
        &mut pb,
        Predicate::and(vec![
            Predicate::in_set("l_shipmode", &[mail, ship]),
            Predicate::cmp_cols(
                "l_commitdate",
                adamant_task::params::CmpOp::Lt,
                "l_receiptdate",
            ),
            Predicate::cmp_cols(
                "l_shipdate",
                adamant_task::params::CmpOp::Lt,
                "l_commitdate",
            ),
            Predicate::between("l_receiptdate", lo, hi - 1),
        ]),
    )?;
    li.hash_probe(&mut pb, "l_orderkey", ht, &["o_orderpriority"])?;
    // Indicator columns over the joined priority.
    li.project(
        &mut pb,
        "is_high",
        Expr::col("o_orderpriority")
            .eq_const(urgent)
            .add(Expr::col("o_orderpriority").eq_const(high)),
    )?;
    li.project(&mut pb, "is_low", Expr::lit(1).sub(Expr::col("is_high")))?;
    let ht_counts = li.hash_agg(
        &mut pb,
        "l_shipmode",
        &[],
        &[(AggFunc::Sum, "is_high"), (AggFunc::Sum, "is_low")],
        8,
    )?;

    // Post stage: export and order by ship-mode code.
    let groups = pb.group_result(ht_counts, 0, 2);
    let perm = pb.sort(&[(groups.keys, false)]);
    let mode_out = pb.take(groups.keys, perm);
    let high_out = pb.take(groups.states[0], perm);
    let low_out = pb.take(groups.states[1], perm);
    pb.output("l_shipmode", mode_out);
    pb.output("high_line_count", high_out);
    pb.output("low_line_count", low_out);
    pb.build()
}

/// Binds Q12 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into [`Q12Row`]s ordered by mode string.
pub fn decode(catalog: &Catalog, out: &QueryOutput) -> Result<Vec<Q12Row>> {
    let dict = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?
        .column("l_shipmode")
        .map_err(adamant_core::ExecError::from)?
        .dictionary()
        .expect("dict column")
        .to_vec();
    let codes = out.i64_column("l_shipmode");
    let high = out.i64_column("high_line_count");
    let low = out.i64_column("low_line_count");
    let mut rows: Vec<Q12Row> = codes
        .iter()
        .enumerate()
        .map(|(i, &c)| Q12Row {
            shipmode: dict[c as usize].clone(),
            high_line_count: high[i],
            low_line_count: low[i],
        })
        .collect();
    rows.sort_by(|a, b| a.shipmode.cmp(&b.shipmode));
    Ok(rows)
}
