//! TPC-H Q10 — returned item reporting (reduced form).
//!
//! The full Q10 joins customer and nation for display columns; the
//! co-processor-relevant core is the orders⋈lineitem revenue aggregation
//! over returned items, which is what this plan (and the reference) keeps:
//!
//! ```sql
//! SELECT o_custkey, sum(l_extendedprice * (1 - l_discount)) AS revenue
//! FROM orders JOIN lineitem ON l_orderkey = o_orderkey
//! WHERE o_orderdate >= DATE '1993-10-01'
//!   AND o_orderdate <  DATE '1994-01-01'
//!   AND l_returnflag = 'R'
//! GROUP BY o_custkey
//! ORDER BY revenue DESC LIMIT 20;
//! ```
//!
//! Two pipelines: qualifying orders build a keyed table carrying
//! `o_custkey` as payload; returned lineitems probe it and aggregate
//! revenue per customer, with a full-buffer sort/take stage for the top-20.

use adamant_core::error::Result;
use adamant_core::executor::QueryInputs;
use adamant_core::graph::PrimitiveGraph;
use adamant_core::result::QueryOutput;
use adamant_device::device::DeviceId;
use adamant_plan::prelude::*;
use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::Catalog;
use adamant_task::params::{AggFunc, CmpOp};

use crate::reference::Q10Row;

/// Columns Q10 (reduced) reads.
pub const COLUMNS: &[(&str, &str)] = &[
    ("orders", "o_orderkey"),
    ("orders", "o_custkey"),
    ("orders", "o_orderdate"),
    ("lineitem", "l_orderkey"),
    ("lineitem", "l_returnflag"),
    ("lineitem", "l_extendedprice"),
    ("lineitem", "l_discount"),
];

/// Builds the Q10 primitive graph.
pub fn plan(device: DeviceId, catalog: &Catalog) -> Result<PrimitiveGraph> {
    let lo = date_to_days(1993, 10, 1) as i64;
    let hi = date_to_days(1994, 1, 1) as i64; // exclusive
    let returned = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?
        .column("l_returnflag")
        .map_err(adamant_core::ExecError::from)?
        .dict_code("R")
        .expect("R flag exists") as i64;
    let n_orders = catalog
        .table("orders")
        .map_err(adamant_core::ExecError::from)?
        .row_count();
    let n_li = catalog
        .table("lineitem")
        .map_err(adamant_core::ExecError::from)?
        .row_count();

    let mut pb = PlanBuilder::new(device);

    // Pipeline 1: orders in the quarter, keyed by o_orderkey with the
    // customer key as join payload.
    let mut orders = pb.scan("orders", &["o_orderkey", "o_custkey", "o_orderdate"]);
    orders.filter(&mut pb, Predicate::between("o_orderdate", lo, hi - 1))?;
    let ht_orders = orders.hash_build(&mut pb, "o_orderkey", &["o_custkey"], n_orders / 4 + 8)?;

    // Pipeline 2: returned lineitems probe and aggregate per customer.
    let mut li = pb.scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_returnflag",
            "l_extendedprice",
            "l_discount",
        ],
    );
    li.filter(&mut pb, Predicate::cmp("l_returnflag", CmpOp::Eq, returned))?;
    li.project(
        &mut pb,
        "rev",
        Expr::col("l_extendedprice").mul(Expr::lit(100).sub(Expr::col("l_discount"))),
    )?;
    li.hash_probe(&mut pb, "l_orderkey", ht_orders, &["o_custkey"])?;
    let ht_rev = li.hash_agg(
        &mut pb,
        "o_custkey",
        &[],
        &[(AggFunc::Sum, "rev")],
        n_li / 16 + 8,
    )?;

    // Post stage: export, ORDER BY revenue DESC (custkey ASC on ties).
    let groups = pb.group_result(ht_rev, 0, 1);
    let perm = pb.sort(&[(groups.states[0], true), (groups.keys, false)]);
    let cust = pb.take(groups.keys, perm);
    let rev = pb.take(groups.states[0], perm);
    pb.output("o_custkey", cust);
    pb.output("revenue", rev);
    pb.build()
}

/// Binds Q10 inputs.
pub fn bind(catalog: &Catalog) -> Result<QueryInputs> {
    super::bind_columns(catalog, COLUMNS)
}

/// Decodes executor output into the top-20 [`Q10Row`]s.
pub fn decode(out: &QueryOutput) -> Vec<Q10Row> {
    let custs = out.i64_column("o_custkey");
    let revs = out.i64_column("revenue");
    let n = custs.len().min(20);
    (0..n)
        .map(|i| Q10Row {
            custkey: custs[i],
            revenue: revs[i],
        })
        .collect()
}
