//! Host-side reference implementations of the evaluated queries.
//!
//! Written as plain row-at-a-time loops — slow but obviously correct — and
//! used by the test suite to validate every execution model and driver.
//! All money values are scaled integers: `revenue` sums
//! `extendedprice_cents × (100 − discount_pct)` (divide by 100 for
//! currency), Q6's sum is `extendedprice_cents × discount_pct`.

use adamant_storage::datatype::date_to_days;
use adamant_storage::prelude::{Catalog, StorageError};
use std::collections::HashMap;

/// One Q1 result row (aggregates in scaled integers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q1Row {
    /// `l_returnflag`.
    pub returnflag: String,
    /// `l_linestatus`.
    pub linestatus: String,
    /// `sum(l_quantity)`.
    pub sum_qty: i64,
    /// `sum(l_extendedprice)` in cents.
    pub sum_base_price: i64,
    /// `sum(l_extendedprice * (100 - l_discount))` — divide by 100.
    pub sum_disc_price: i64,
    /// `sum(l_extendedprice * (100 - l_discount) * (100 + l_tax))` — /10⁴.
    pub sum_charge: i64,
    /// `sum(l_discount)` in percent points (for `avg_disc`).
    pub sum_disc: i64,
    /// `count(*)`.
    pub count: i64,
}

/// One Q3 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q3Row {
    /// `l_orderkey`.
    pub orderkey: i64,
    /// `sum(l_extendedprice * (100 - l_discount))` — divide by 100.
    pub revenue: i64,
    /// `o_orderdate` (days since epoch).
    pub orderdate: i64,
    /// `o_shippriority`.
    pub shippriority: i64,
}

/// One Q4 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q4Row {
    /// `o_orderpriority`.
    pub priority: String,
    /// `count(*)`.
    pub count: i64,
}

/// TPC-H Q1 (pricing summary report), validation parameters
/// (`DELTA = 90` ⇒ `l_shipdate <= 1998-09-02`). Rows ordered by
/// `(returnflag, linestatus)`.
pub fn q1(catalog: &Catalog) -> Result<Vec<Q1Row>, StorageError> {
    let li = catalog.table("lineitem")?;
    let cutoff = date_to_days(1998, 9, 2) as i64;
    let ship = li.column("l_shipdate")?.to_i64_vec()?;
    let qty = li.column("l_quantity")?.to_i64_vec()?;
    let price = li.column("l_extendedprice")?.to_i64_vec()?;
    let disc = li.column("l_discount")?.to_i64_vec()?;
    let tax = li.column("l_tax")?.to_i64_vec()?;
    let rf = li.column("l_returnflag")?;
    let ls = li.column("l_linestatus")?;
    let rf_codes = rf.to_i64_vec()?;
    let ls_codes = ls.to_i64_vec()?;
    let rf_dict = rf.dictionary().expect("dict column").to_vec();
    let ls_dict = ls.dictionary().expect("dict column").to_vec();

    let mut groups: HashMap<(i64, i64), Q1Row> = HashMap::new();
    for i in 0..ship.len() {
        if ship[i] > cutoff {
            continue;
        }
        let key = (rf_codes[i], ls_codes[i]);
        let row = groups.entry(key).or_insert_with(|| Q1Row {
            returnflag: rf_dict[key.0 as usize].clone(),
            linestatus: ls_dict[key.1 as usize].clone(),
            sum_qty: 0,
            sum_base_price: 0,
            sum_disc_price: 0,
            sum_charge: 0,
            sum_disc: 0,
            count: 0,
        });
        row.sum_qty += qty[i];
        row.sum_base_price += price[i];
        row.sum_disc_price += price[i] * (100 - disc[i]);
        row.sum_charge += price[i] * (100 - disc[i]) * (100 + tax[i]);
        row.sum_disc += disc[i];
        row.count += 1;
    }
    let mut rows: Vec<Q1Row> = groups.into_values().collect();
    rows.sort_by(|a, b| {
        (a.returnflag.as_str(), a.linestatus.as_str())
            .cmp(&(b.returnflag.as_str(), b.linestatus.as_str()))
    });
    Ok(rows)
}

/// TPC-H Q3 (shipping priority), validation parameters
/// (`SEGMENT = BUILDING`, `DATE = 1995-03-15`). Top-10 by
/// `(revenue desc, orderdate asc)`.
pub fn q3(catalog: &Catalog) -> Result<Vec<Q3Row>, StorageError> {
    let date = date_to_days(1995, 3, 15) as i64;
    let cust = catalog.table("customer")?;
    let seg = cust.column("c_mktsegment")?;
    let building = seg.dict_code("BUILDING").expect("segment exists") as i64;
    let seg_codes = seg.to_i64_vec()?;
    let custkeys = cust.column("c_custkey")?.to_i64_vec()?;
    let building_custs: std::collections::HashSet<i64> = custkeys
        .iter()
        .zip(&seg_codes)
        .filter(|(_, &s)| s == building)
        .map(|(&k, _)| k)
        .collect();

    let orders = catalog.table("orders")?;
    let o_key = orders.column("o_orderkey")?.to_i64_vec()?;
    let o_cust = orders.column("o_custkey")?.to_i64_vec()?;
    let o_date = orders.column("o_orderdate")?.to_i64_vec()?;
    let o_ship = orders.column("o_shippriority")?.to_i64_vec()?;
    let mut order_info: HashMap<i64, (i64, i64)> = HashMap::new();
    for i in 0..o_key.len() {
        if o_date[i] < date && building_custs.contains(&o_cust[i]) {
            order_info.insert(o_key[i], (o_date[i], o_ship[i]));
        }
    }

    let li = catalog.table("lineitem")?;
    let l_key = li.column("l_orderkey")?.to_i64_vec()?;
    let l_ship = li.column("l_shipdate")?.to_i64_vec()?;
    let l_price = li.column("l_extendedprice")?.to_i64_vec()?;
    let l_disc = li.column("l_discount")?.to_i64_vec()?;
    let mut revenue: HashMap<i64, i64> = HashMap::new();
    for i in 0..l_key.len() {
        if l_ship[i] > date && order_info.contains_key(&l_key[i]) {
            *revenue.entry(l_key[i]).or_insert(0) += l_price[i] * (100 - l_disc[i]);
        }
    }
    let mut rows: Vec<Q3Row> = revenue
        .into_iter()
        .map(|(k, rev)| {
            let (d, s) = order_info[&k];
            Q3Row {
                orderkey: k,
                revenue: rev,
                orderdate: d,
                shippriority: s,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.revenue
            .cmp(&a.revenue)
            .then(a.orderdate.cmp(&b.orderdate))
            .then(a.orderkey.cmp(&b.orderkey))
    });
    rows.truncate(10);
    Ok(rows)
}

/// TPC-H Q4 (order priority checking), validation parameters
/// (`DATE = 1993-07-01`, three months). Rows ordered by priority.
pub fn q4(catalog: &Catalog) -> Result<Vec<Q4Row>, StorageError> {
    let lo = date_to_days(1993, 7, 1) as i64;
    let hi = date_to_days(1993, 10, 1) as i64; // exclusive

    let li = catalog.table("lineitem")?;
    let l_key = li.column("l_orderkey")?.to_i64_vec()?;
    let l_commit = li.column("l_commitdate")?.to_i64_vec()?;
    let l_receipt = li.column("l_receiptdate")?.to_i64_vec()?;
    let late: std::collections::HashSet<i64> = l_key
        .iter()
        .zip(l_commit.iter().zip(&l_receipt))
        .filter(|(_, (c, r))| **c < **r)
        .map(|(&k, _)| k)
        .collect();

    let orders = catalog.table("orders")?;
    let o_key = orders.column("o_orderkey")?.to_i64_vec()?;
    let o_date = orders.column("o_orderdate")?.to_i64_vec()?;
    let prio = orders.column("o_orderpriority")?;
    let prio_codes = prio.to_i64_vec()?;
    let prio_dict = prio.dictionary().expect("dict column").to_vec();

    let mut counts: HashMap<i64, i64> = HashMap::new();
    for i in 0..o_key.len() {
        if o_date[i] >= lo && o_date[i] < hi && late.contains(&o_key[i]) {
            *counts.entry(prio_codes[i]).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<Q4Row> = counts
        .into_iter()
        .map(|(code, count)| Q4Row {
            priority: prio_dict[code as usize].clone(),
            count,
        })
        .collect();
    rows.sort_by(|a, b| a.priority.cmp(&b.priority));
    Ok(rows)
}

/// One Q12 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q12Row {
    /// `l_shipmode`.
    pub shipmode: String,
    /// Lines whose order is 1-URGENT or 2-HIGH.
    pub high_line_count: i64,
    /// All other lines.
    pub low_line_count: i64,
}

/// TPC-H Q12 (shipping modes and order priority), validation parameters
/// (`SHIPMODE IN ('MAIL','SHIP')`, `DATE = 1994-01-01`). Rows ordered by
/// ship mode.
pub fn q12(catalog: &Catalog) -> Result<Vec<Q12Row>, StorageError> {
    let lo = date_to_days(1994, 1, 1) as i64;
    let hi = date_to_days(1995, 1, 1) as i64; // exclusive

    let orders = catalog.table("orders")?;
    let o_key = orders.column("o_orderkey")?.to_i64_vec()?;
    let prio = orders.column("o_orderpriority")?;
    let prio_codes = prio.to_i64_vec()?;
    let prio_dict = prio.dictionary().expect("dict column").to_vec();
    let urgent = prio_dict.iter().position(|p| p == "1-URGENT").unwrap() as i64;
    let high = prio_dict.iter().position(|p| p == "2-HIGH").unwrap() as i64;
    let order_prio: HashMap<i64, i64> = o_key
        .iter()
        .copied()
        .zip(prio_codes.iter().copied())
        .collect();

    let li = catalog.table("lineitem")?;
    let l_key = li.column("l_orderkey")?.to_i64_vec()?;
    let mode = li.column("l_shipmode")?;
    let mode_codes = mode.to_i64_vec()?;
    let mode_dict = mode.dictionary().expect("dict column").to_vec();
    let mail = mode.dict_code("MAIL").expect("MAIL exists") as i64;
    let ship = mode.dict_code("SHIP").expect("SHIP exists") as i64;
    let commit = li.column("l_commitdate")?.to_i64_vec()?;
    let receipt = li.column("l_receiptdate")?.to_i64_vec()?;
    let shipd = li.column("l_shipdate")?.to_i64_vec()?;

    let mut counts: HashMap<i64, (i64, i64)> = HashMap::new();
    for i in 0..l_key.len() {
        if (mode_codes[i] == mail || mode_codes[i] == ship)
            && commit[i] < receipt[i]
            && shipd[i] < commit[i]
            && receipt[i] >= lo
            && receipt[i] < hi
        {
            let p = order_prio[&l_key[i]];
            let entry = counts.entry(mode_codes[i]).or_insert((0, 0));
            if p == urgent || p == high {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    let mut rows: Vec<Q12Row> = counts
        .into_iter()
        .map(|(code, (h, l))| Q12Row {
            shipmode: mode_dict[code as usize].clone(),
            high_line_count: h,
            low_line_count: l,
        })
        .collect();
    rows.sort_by(|a, b| a.shipmode.cmp(&b.shipmode));
    Ok(rows)
}

/// TPC-H Q14 (promotion effect), validation parameters
/// (`DATE = 1995-09-01`, one month). Returns
/// `(promo_revenue, total_revenue)` as scaled integers; the reported
/// percentage is `100 * promo / total`.
pub fn q14(catalog: &Catalog) -> Result<(i64, i64), StorageError> {
    let lo = date_to_days(1995, 9, 1) as i64;
    let hi = date_to_days(1995, 10, 1) as i64; // exclusive

    let part = catalog.table("part")?;
    let ptype = part.column("p_type")?;
    let type_codes = ptype.to_i64_vec()?;
    let type_dict = ptype.dictionary().expect("dict column").to_vec();
    let p_key = part.column("p_partkey")?.to_i64_vec()?;
    let promo: HashMap<i64, bool> = p_key
        .iter()
        .zip(&type_codes)
        .map(|(&k, &c)| (k, type_dict[c as usize].starts_with("PROMO")))
        .collect();

    let li = catalog.table("lineitem")?;
    let l_part = li.column("l_partkey")?.to_i64_vec()?;
    let shipd = li.column("l_shipdate")?.to_i64_vec()?;
    let price = li.column("l_extendedprice")?.to_i64_vec()?;
    let disc = li.column("l_discount")?.to_i64_vec()?;

    let mut promo_rev = 0i64;
    let mut total_rev = 0i64;
    for i in 0..l_part.len() {
        if shipd[i] >= lo && shipd[i] < hi {
            let rev = price[i] * (100 - disc[i]);
            total_rev += rev;
            if promo[&l_part[i]] {
                promo_rev += rev;
            }
        }
    }
    Ok((promo_rev, total_rev))
}

/// One Q10 (reduced) result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q10Row {
    /// `o_custkey`.
    pub custkey: i64,
    /// `sum(l_extendedprice * (100 - l_discount))` — divide by 100.
    pub revenue: i64,
}

/// TPC-H Q10 (returned item reporting, reduced to the orders⋈lineitem
/// revenue core), validation parameters (`DATE = 1993-10-01`, one
/// quarter). Top-20 customers by `(revenue desc, custkey asc)`.
pub fn q10(catalog: &Catalog) -> Result<Vec<Q10Row>, StorageError> {
    let lo = date_to_days(1993, 10, 1) as i64;
    let hi = date_to_days(1994, 1, 1) as i64; // exclusive

    let orders = catalog.table("orders")?;
    let o_key = orders.column("o_orderkey")?.to_i64_vec()?;
    let o_cust = orders.column("o_custkey")?.to_i64_vec()?;
    let o_date = orders.column("o_orderdate")?.to_i64_vec()?;
    let mut order_cust: HashMap<i64, i64> = HashMap::new();
    for i in 0..o_key.len() {
        if o_date[i] >= lo && o_date[i] < hi {
            order_cust.insert(o_key[i], o_cust[i]);
        }
    }

    let li = catalog.table("lineitem")?;
    let l_key = li.column("l_orderkey")?.to_i64_vec()?;
    let flag = li.column("l_returnflag")?;
    let flag_codes = flag.to_i64_vec()?;
    let returned = flag.dict_code("R").expect("R flag exists") as i64;
    let price = li.column("l_extendedprice")?.to_i64_vec()?;
    let disc = li.column("l_discount")?.to_i64_vec()?;

    let mut revenue: HashMap<i64, i64> = HashMap::new();
    for i in 0..l_key.len() {
        if flag_codes[i] != returned {
            continue;
        }
        if let Some(&cust) = order_cust.get(&l_key[i]) {
            *revenue.entry(cust).or_insert(0) += price[i] * (100 - disc[i]);
        }
    }
    let mut rows: Vec<Q10Row> = revenue
        .into_iter()
        .map(|(custkey, revenue)| Q10Row { custkey, revenue })
        .collect();
    rows.sort_by(|a, b| b.revenue.cmp(&a.revenue).then(a.custkey.cmp(&b.custkey)));
    rows.truncate(20);
    Ok(rows)
}

/// TPC-H Q6 (revenue forecast), validation parameters
/// (`DATE = 1994-01-01`, `DISCOUNT = 0.06 ± 0.01`, `QUANTITY = 24`).
/// Returns `sum(l_extendedprice * l_discount)` as a scaled integer
/// (cents × percent; divide by 100 for currency).
pub fn q6(catalog: &Catalog) -> Result<i64, StorageError> {
    let lo = date_to_days(1994, 1, 1) as i64;
    let hi = date_to_days(1995, 1, 1) as i64; // exclusive
    let li = catalog.table("lineitem")?;
    let ship = li.column("l_shipdate")?.to_i64_vec()?;
    let disc = li.column("l_discount")?.to_i64_vec()?;
    let qty = li.column("l_quantity")?.to_i64_vec()?;
    let price = li.column("l_extendedprice")?.to_i64_vec()?;
    let mut sum = 0i64;
    for i in 0..ship.len() {
        if ship[i] >= lo && ship[i] < hi && (5..=7).contains(&disc[i]) && qty[i] < 24 {
            sum += price[i] * disc[i];
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchGenerator;

    fn catalog() -> Catalog {
        TpchGenerator::new(0.002, 11).generate()
    }

    #[test]
    fn q1_groups_and_ordering() {
        let rows = q1(&catalog()).unwrap();
        // At most 4 (rf, ls) combinations exist: (A,F) (N,F) (N,O) (R,F).
        assert!(!rows.is_empty() && rows.len() <= 4);
        for w in rows.windows(2) {
            assert!(
                (w[0].returnflag.as_str(), w[0].linestatus.as_str())
                    < (w[1].returnflag.as_str(), w[1].linestatus.as_str())
            );
        }
        for r in &rows {
            assert!(r.count > 0);
            assert!(r.sum_disc_price <= r.sum_base_price * 100);
            assert!(r.sum_charge >= r.sum_disc_price * 100);
        }
    }

    #[test]
    fn q3_top10_ordering() {
        let rows = q3(&catalog()).unwrap();
        assert!(rows.len() <= 10);
        for w in rows.windows(2) {
            assert!(
                w[0].revenue > w[1].revenue
                    || (w[0].revenue == w[1].revenue && w[0].orderdate <= w[1].orderdate)
            );
        }
    }

    #[test]
    fn q4_counts_positive() {
        let rows = q4(&catalog()).unwrap();
        assert!(!rows.is_empty() && rows.len() <= 5);
        for r in &rows {
            assert!(r.count > 0);
        }
        for w in rows.windows(2) {
            assert!(w[0].priority < w[1].priority);
        }
    }

    #[test]
    fn q6_positive() {
        let v = q6(&catalog()).unwrap();
        assert!(v > 0);
    }

    #[test]
    fn q12_two_modes_ordered() {
        let rows = q12(&catalog()).unwrap();
        assert!(rows.len() <= 2);
        for r in &rows {
            assert!(r.shipmode == "MAIL" || r.shipmode == "SHIP");
            assert!(r.high_line_count + r.low_line_count > 0);
        }
        if rows.len() == 2 {
            assert!(rows[0].shipmode < rows[1].shipmode);
        }
    }

    #[test]
    fn q10_top20_ordering() {
        let rows = q10(&catalog()).unwrap();
        assert!(!rows.is_empty() && rows.len() <= 20);
        for r in &rows {
            assert!(r.revenue > 0);
        }
        for w in rows.windows(2) {
            assert!(
                w[0].revenue > w[1].revenue
                    || (w[0].revenue == w[1].revenue && w[0].custkey < w[1].custkey)
            );
        }
    }

    #[test]
    fn q14_promo_fraction_sane() {
        let (promo, total) = q14(&catalog()).unwrap();
        assert!(total > 0);
        assert!(promo >= 0 && promo <= total);
        // ~3 of 9 types are PROMO; fraction should be loosely around 1/3.
        let frac = promo as f64 / total as f64;
        assert!(frac > 0.1 && frac < 0.6, "promo fraction {frac}");
    }
}
