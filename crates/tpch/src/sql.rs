//! SQL texts for the evaluated TPC-H queries.
//!
//! These are the queries of [`crate::queries`] written in the engine's SQL
//! subset, in the same scaled-integer form the hand-built plans compute
//! (prices in cents, discounts/taxes in whole percent, dates compared as
//! `DATE` literals). Compiling one of these through `adamant_sql` must
//! produce reference-exact results against the corresponding hand-built
//! primitive graph — the equivalence suite in `tests/` asserts exactly
//! that, query by query.
//!
//! Differences from the official TPC-H text, matching the hand-built
//! plans and `crate::reference`:
//!
//! - all decimals are scaled integers, so `l_extendedprice * (1 -
//!   l_discount)` becomes `l_extendedprice * (100 - l_discount)` and the
//!   Q1 charge keeps the extra factor of 100 from `(100 + l_tax)`;
//! - `avg` aggregates are omitted (derivable host-side from the exported
//!   sums and counts);
//! - Q10 is the reduced orders⋈lineitem core the reference implements
//!   (no customer/nation display columns);
//! - Q14 exports the promo and total revenue sums separately; the
//!   percentage is a host-side division (`queries::q14::promo_percent`).

use crate::queries::TpchQuery;

/// Q1 — pricing summary report.
pub const Q1: &str = "\
SELECT l_returnflag, l_linestatus, \
       SUM(l_quantity) AS sum_qty, \
       SUM(l_extendedprice) AS sum_base_price, \
       SUM(l_extendedprice * (100 - l_discount)) AS sum_disc_price, \
       SUM(l_extendedprice * (100 - l_discount) * (100 + l_tax)) AS sum_charge, \
       SUM(l_discount) AS sum_disc, \
       COUNT(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= DATE '1998-09-02' \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus";

/// Q3 — shipping priority.
pub const Q3: &str = "\
SELECT l_orderkey, \
       SUM(l_extendedprice * (100 - l_discount)) AS revenue, \
       o_orderdate, o_shippriority \
FROM customer \
JOIN orders ON o_custkey = c_custkey \
JOIN lineitem ON l_orderkey = o_orderkey \
WHERE c_mktsegment = 'BUILDING' \
  AND o_orderdate < DATE '1995-03-15' \
  AND l_shipdate > DATE '1995-03-15' \
GROUP BY l_orderkey, o_orderdate, o_shippriority \
ORDER BY revenue DESC, o_orderdate \
LIMIT 10";

/// Q4 — order priority checking.
pub const Q4: &str = "\
SELECT o_orderpriority, COUNT(*) AS order_count \
FROM orders \
WHERE o_orderdate >= DATE '1993-07-01' \
  AND o_orderdate < DATE '1993-10-01' \
  AND EXISTS (SELECT l_orderkey FROM lineitem \
              WHERE l_orderkey = o_orderkey \
                AND l_commitdate < l_receiptdate) \
GROUP BY o_orderpriority \
ORDER BY o_orderpriority";

/// Q6 — revenue forecast.
pub const Q6: &str = "\
SELECT SUM(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= DATE '1994-01-01' \
  AND l_shipdate < DATE '1995-01-01' \
  AND l_discount BETWEEN 5 AND 7 \
  AND l_quantity < 24";

/// Q10 — returned item reporting (reduced form).
pub const Q10: &str = "\
SELECT o_custkey, \
       SUM(l_extendedprice * (100 - l_discount)) AS revenue \
FROM orders \
JOIN lineitem ON l_orderkey = o_orderkey \
WHERE o_orderdate >= DATE '1993-10-01' \
  AND o_orderdate < DATE '1994-01-01' \
  AND l_returnflag = 'R' \
GROUP BY o_custkey \
ORDER BY revenue DESC \
LIMIT 20";

/// Q12 — shipping modes and order priority.
pub const Q12: &str = "\
SELECT l_shipmode, \
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') \
                THEN 1 ELSE 0 END) AS high_line_count, \
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') \
                THEN 0 ELSE 1 END) AS low_line_count \
FROM orders \
JOIN lineitem ON l_orderkey = o_orderkey \
WHERE l_shipmode IN ('MAIL', 'SHIP') \
  AND l_commitdate < l_receiptdate \
  AND l_shipdate < l_commitdate \
  AND l_receiptdate >= DATE '1994-01-01' \
  AND l_receiptdate < DATE '1995-01-01' \
GROUP BY l_shipmode \
ORDER BY l_shipmode";

/// Q14 — promotion effect.
pub const Q14: &str = "\
SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' \
                THEN l_extendedprice * (100 - l_discount) \
                ELSE 0 END) AS promo_revenue, \
       SUM(l_extendedprice * (100 - l_discount)) AS total_revenue \
FROM lineitem \
JOIN part ON p_partkey = l_partkey \
WHERE l_shipdate >= DATE '1995-09-01' \
  AND l_shipdate < DATE '1995-10-01'";

/// The SQL text of one evaluated query.
pub fn text(q: TpchQuery) -> &'static str {
    match q {
        TpchQuery::Q1 => Q1,
        TpchQuery::Q3 => Q3,
        TpchQuery::Q4 => Q4,
        TpchQuery::Q6 => Q6,
        TpchQuery::Q10 => Q10,
        TpchQuery::Q12 => Q12,
        TpchQuery::Q14 => Q14,
    }
}
