//! # adamant-tpch
//!
//! TPC-H substrate for the ADAMANT reproduction: a deterministic data
//! generator (`dbgen` stand-in), primitive-graph plans for the queries the
//! paper evaluates (Q1, Q3, Q4, Q6), slow-but-obviously-correct reference
//! implementations used to validate the executor, and the per-query input
//! footprint model behind the paper's Fig. 7-left.
//!
//! The generator follows TPC-H's schema and key structure (orders↔lineitem
//! 1:1–7, dates in 1992–1998, discounts 0–10 %, five market segments and
//! order priorities) with all decimals as scaled integers (cents), matching
//! the paper's all-integer evaluation. It is *not* a bit-exact `dbgen`
//! clone — the evaluation needs realistic distributions and selectivities,
//! not the official text fields (substitution documented in DESIGN.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod footprint;
pub mod gen;
pub mod queries;
pub mod reference;
pub mod sql;

pub use gen::TpchGenerator;
pub use queries::TpchQuery;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::footprint;
    pub use crate::gen::TpchGenerator;
    pub use crate::queries::TpchQuery;
    pub use crate::reference;
}
