//! Per-query input footprints vs. device memory (paper Fig. 7-left).
//!
//! The figure compares each TPC-H query's *input* size (the columns it
//! actually reads) and the full dataset size against GPU memory capacities.
//! Footprints here are computed analytically from TPC-H row-count scaling
//! rules and our column widths, so all 22 queries can be plotted without
//! generating the data. Column lists follow the official query texts
//! (join keys, predicate columns and aggregated columns).

use crate::gen::base_rows;

/// Byte width of one value in each table's columns (this engine stores
/// numeric columns as widened `i64` on device, 8 bytes; dictionary codes
/// and dates travel as their 4-byte host width for transfer accounting —
/// the footprint model uses the *host* widths, as Fig. 7 measures inputs).
const W_KEY: u64 = 8; // keys / integers (i64)
const W_DATE: u64 = 4; // dates (i32 days)
const W_DICT: u64 = 4; // dictionary codes (u32)

fn rows(table: &str, sf: f64) -> u64 {
    let base = match table {
        "customer" => base_rows::CUSTOMER,
        "orders" => base_rows::ORDERS,
        "lineitem" => base_rows::LINEITEM,
        "part" => base_rows::PART,
        "supplier" => base_rows::SUPPLIER,
        "partsupp" => base_rows::PARTSUPP,
        "nation" => return base_rows::NATION as u64,
        "region" => return base_rows::REGION as u64,
        other => panic!("unknown table {other}"),
    };
    (base as f64 * sf) as u64
}

/// Width class of a column by name.
fn width(col: &str) -> u64 {
    if col.ends_with("date") {
        W_DATE
    } else if matches!(
        col,
        "c_mktsegment"
            | "o_orderpriority"
            | "l_returnflag"
            | "l_linestatus"
            | "l_shipmode"
            | "l_shipinstruct"
            | "p_brand"
            | "p_type"
            | "p_container"
            | "n_name"
            | "r_name"
            | "c_nationkey"
    ) {
        W_DICT
    } else {
        W_KEY
    }
}

/// The `(table, column)` input sets of all 22 TPC-H queries (columns the
/// query's predicates, joins and aggregates touch).
pub fn query_columns(q: usize) -> &'static [(&'static str, &'static str)] {
    match q {
        1 => &[
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_tax"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_linestatus"),
        ],
        2 => &[
            ("part", "p_partkey"),
            ("part", "p_size"),
            ("part", "p_type"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("supplier", "s_acctbal"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
        ],
        3 => &[
            ("customer", "c_custkey"),
            ("customer", "c_mktsegment"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_shippriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
        ],
        4 => &[
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_orderpriority"),
        ],
        5 => &[
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
        ],
        6 => &[
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
        ],
        7 => &[
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        8 => &[
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
        ],
        9 => &[
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        10 => &[
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("customer", "c_acctbal"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        11 => &[
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("partsupp", "ps_availqty"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        12 => &[
            ("orders", "o_orderkey"),
            ("orders", "o_orderpriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("lineitem", "l_shipdate"),
        ],
        13 => &[
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
        ],
        14 => &[
            ("lineitem", "l_partkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("part", "p_partkey"),
            ("part", "p_type"),
        ],
        15 => &[
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
        ],
        16 => &[
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_type"),
            ("part", "p_size"),
        ],
        17 => &[
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
        ],
        18 => &[
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_totalprice"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_quantity"),
        ],
        19 => &[
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_shipinstruct"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
            ("part", "p_size"),
        ],
        20 => &[
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_quantity"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_availqty"),
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        21 => &[
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("orders", "o_orderkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
        ],
        22 => &[
            ("customer", "c_custkey"),
            ("customer", "c_acctbal"),
            ("orders", "o_custkey"),
        ],
        other => panic!("TPC-H has queries 1..=22, asked for {other}"),
    }
}

/// Analytic input footprint of an arbitrary `(table, column)` set at scale
/// factor `sf`, in bytes.
///
/// This is the general form of the per-query footprint: any logical plan —
/// hand-built or compiled from SQL — that knows which TPC-H columns it
/// scans can be priced without generating data (e.g. a `CompiledQuery`'s
/// `input_columns`). Duplicate entries count once. Panics on tables
/// outside the TPC-H schema, for which no row-count scaling rule exists.
pub fn columns_input_bytes<'a>(
    columns: impl IntoIterator<Item = (&'a str, &'a str)>,
    sf: f64,
) -> u64 {
    let mut seen = std::collections::BTreeSet::new();
    columns
        .into_iter()
        .filter(|&(t, c)| seen.insert((t, c)))
        .map(|(t, c)| rows(t, sf) * width(c))
        .sum()
}

/// Input footprint of query `q` at scale factor `sf`, in bytes.
pub fn query_input_bytes(q: usize, sf: f64) -> u64 {
    columns_input_bytes(query_columns(q).iter().copied(), sf)
}

/// Size of the complete dataset at scale factor `sf`, in bytes (all
/// columns of all tables in this engine's physical schema, roughly the
/// ~1 GB/SF of the official dbgen output).
pub fn dataset_bytes(sf: f64) -> u64 {
    // Per-table per-row widths of our physical schema.
    let widths: [(&str, u64); 8] = [
        ("region", 12),
        ("nation", 16),
        ("supplier", 24),
        ("customer", 24),
        ("part", 24),
        ("partsupp", 32),
        ("orders", 36),
        // 10 i64 + 3 dates + dict codes ≈ 100 B/row (text fields excluded).
        ("lineitem", 100),
    ];
    widths.iter().map(|(t, w)| rows(t, sf) * w).sum()
}

/// GPU device-memory capacities the paper's Fig. 7-left compares against.
pub fn gpu_capacities() -> Vec<(&'static str, u64)> {
    const GIB: u64 = 1 << 30;
    vec![
        ("GTX 1080 Ti (11 GiB)", 11 * GIB),
        ("RTX 2080 Ti (11 GiB)", 11 * GIB),
        ("RTX 3090 (24 GiB)", 24 * GIB),
        ("A100 (40 GiB)", 40 * GIB),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_have_columns() {
        for q in 1..=22 {
            assert!(!query_columns(q).is_empty(), "Q{q}");
            assert!(query_input_bytes(q, 1.0) > 0);
        }
    }

    #[test]
    fn columns_input_bytes_matches_query_index() {
        // The per-query-index footprint must stay byte-identical to the
        // general column-set form it now delegates to, and duplicates
        // must not double-count.
        for sf in [0.01, 1.0, 30.0] {
            for q in 1..=22 {
                let cols = query_columns(q);
                let general = columns_input_bytes(cols.iter().copied(), sf);
                assert_eq!(general, query_input_bytes(q, sf), "Q{q} sf {sf}");
                let doubled = cols.iter().chain(cols.iter()).copied();
                assert_eq!(columns_input_bytes(doubled, sf), general, "Q{q} dup");
            }
        }
    }

    #[test]
    fn inputs_smaller_than_dataset() {
        for q in 1..=22 {
            assert!(
                query_input_bytes(q, 10.0) < dataset_bytes(10.0),
                "Q{q} input exceeds dataset"
            );
        }
    }

    #[test]
    fn fig7_shape_some_queries_exceed_gpu_memory() {
        // At SF 100 the full dataset exceeds every listed GPU, and at
        // least one query's *input* also exceeds the 11 GiB cards — the
        // premise of the paper's Fig. 7 argument.
        let sf = 100.0;
        let caps = gpu_capacities();
        assert!(dataset_bytes(sf) > caps.last().unwrap().1);
        let small_gpu = caps[0].1;
        let over: Vec<usize> = (1..=22)
            .filter(|&q| query_input_bytes(q, sf) > small_gpu)
            .collect();
        let under: Vec<usize> = (1..=22)
            .filter(|&q| query_input_bytes(q, sf) <= small_gpu)
            .collect();
        assert!(!over.is_empty(), "some inputs exceed 11 GiB at SF {sf}");
        assert!(!under.is_empty(), "some inputs fit in 11 GiB at SF {sf}");
    }

    #[test]
    fn q6_is_among_the_smallest() {
        let q6 = query_input_bytes(6, 1.0);
        let q9 = query_input_bytes(9, 1.0);
        assert!(q6 < q9, "Q6 reads less than the big join queries");
    }

    #[test]
    fn scaling_is_linear() {
        let a = query_input_bytes(3, 1.0);
        let b = query_input_bytes(3, 2.0);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
