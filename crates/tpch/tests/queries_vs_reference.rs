//! Executes the TPC-H query plans through the ADAMANT executor under every
//! execution model and compares exact results with the host references.

use adamant_core::executor::{Executor, ExecutorConfig};
use adamant_core::models::ExecutionModel;
use adamant_device::profiles::DeviceProfile;
use adamant_device::sdk::SdkKind;
use adamant_storage::prelude::Catalog;
use adamant_task::registry::TaskRegistry;
use adamant_tpch::gen::TpchGenerator;
use adamant_tpch::queries::{q1, q10, q12, q14, q3, q4, q6, TpchQuery};
use adamant_tpch::reference;

fn catalog() -> Catalog {
    TpchGenerator::new(0.002, 20260707).generate()
}

fn executor(profile: DeviceProfile, chunk_rows: usize) -> Executor {
    let tasks = TaskRegistry::with_defaults(&[
        SdkKind::Cuda,
        SdkKind::OpenCl,
        SdkKind::OpenMp,
        SdkKind::Host,
    ]);
    let mut exec = Executor::new(
        tasks,
        ExecutorConfig {
            chunk_rows,
            ..Default::default()
        },
    );
    exec.add_profile(&profile).unwrap();
    exec
}

#[test]
fn q6_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q6(&cat).unwrap();
    assert!(expected > 0);
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q6
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q6.bind(&cat).unwrap();
        let (out, stats) = exec.run(&graph, &inputs, model).unwrap();
        assert_eq!(q6::decode(&out), expected, "Q6 under {model}");
        assert!(stats.total_ns > 0.0);
    }
}

#[test]
fn q1_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q1(&cat).unwrap();
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q1
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q1.bind(&cat).unwrap();
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        let rows = q1::decode(&cat, &out).unwrap();
        assert_eq!(rows, expected, "Q1 under {model}");
    }
}

#[test]
fn q3_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q3(&cat).unwrap();
    assert!(!expected.is_empty(), "Q3 reference empty at this SF");
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q3
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q3.bind(&cat).unwrap();
        let (out, stats) = exec.run(&graph, &inputs, model).unwrap();
        let rows = q3::decode(&out);
        assert_eq!(rows, expected, "Q3 under {model}");
        // Q3 has 3 streaming pipelines + the post stage.
        assert!(stats.pipelines >= 4, "pipelines {}", stats.pipelines);
    }
}

#[test]
fn q4_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q4(&cat).unwrap();
    assert!(!expected.is_empty());
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q4
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q4.bind(&cat).unwrap();
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        let rows = q4::decode(&cat, &out).unwrap();
        assert_eq!(rows, expected, "Q4 under {model}");
    }
}

#[test]
fn q12_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q12(&cat).unwrap();
    assert!(!expected.is_empty());
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q12
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q12.bind(&cat).unwrap();
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        let rows = q12::decode(&cat, &out).unwrap();
        assert_eq!(rows, expected, "Q12 under {model}");
    }
}

#[test]
fn q14_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q14(&cat).unwrap();
    assert!(expected.1 > 0);
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q14
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q14.bind(&cat).unwrap();
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        assert_eq!(q14::decode(&out), expected, "Q14 under {model}");
    }
}

#[test]
fn q10_matches_reference_all_models() {
    let cat = catalog();
    let expected = reference::q10(&cat).unwrap();
    assert!(!expected.is_empty(), "Q10 reference empty at this SF");
    for model in ExecutionModel::ALL {
        let mut exec = executor(DeviceProfile::cuda_rtx2080ti(), 1000);
        let graph = TpchQuery::Q10
            .plan(adamant_device::device::DeviceId(0), &cat)
            .unwrap();
        let inputs = TpchQuery::Q10.bind(&cat).unwrap();
        let (out, _) = exec.run(&graph, &inputs, model).unwrap();
        let rows = q10::decode(&out);
        assert_eq!(rows, expected, "Q10 under {model}");
    }
}

#[test]
fn all_queries_on_all_drivers_chunked() {
    let cat = catalog();
    for profile in DeviceProfile::setup1() {
        for q in TpchQuery::ALL {
            let mut exec = executor(profile.clone(), 700);
            let graph = q.plan(adamant_device::device::DeviceId(0), &cat).unwrap();
            let inputs = q.bind(&cat).unwrap();
            let (out, _) = exec
                .run(&graph, &inputs, ExecutionModel::Chunked)
                .unwrap_or_else(|e| panic!("{q} on {}: {e}", profile.name));
            match q {
                TpchQuery::Q1 => {
                    assert_eq!(
                        q1::decode(&cat, &out).unwrap(),
                        reference::q1(&cat).unwrap()
                    )
                }
                TpchQuery::Q3 => assert_eq!(q3::decode(&out), reference::q3(&cat).unwrap()),
                TpchQuery::Q4 => {
                    assert_eq!(
                        q4::decode(&cat, &out).unwrap(),
                        reference::q4(&cat).unwrap()
                    )
                }
                TpchQuery::Q6 => assert_eq!(q6::decode(&out), reference::q6(&cat).unwrap()),
                TpchQuery::Q10 => {
                    assert_eq!(q10::decode(&out), reference::q10(&cat).unwrap())
                }
                TpchQuery::Q12 => {
                    assert_eq!(
                        q12::decode(&cat, &out).unwrap(),
                        reference::q12(&cat).unwrap()
                    )
                }
                TpchQuery::Q14 => assert_eq!(q14::decode(&out), reference::q14(&cat).unwrap()),
            }
        }
    }
}

#[test]
fn input_footprints_are_sane() {
    let cat = catalog();
    let q6 = TpchQuery::Q6.input_bytes(&cat).unwrap();
    let q3 = TpchQuery::Q3.input_bytes(&cat).unwrap();
    assert!(q6 > 0 && q3 > q6, "Q3 reads more than Q6");
}
